//! Socket-granular cache-coherence cost model.
//!
//! Every shared simulation object ([`crate::SimWord`], [`crate::SimCell`])
//! lives on a cache line. The model tracks, per line, which sockets currently
//! hold the line and in which mode, and prices each access accordingly:
//! local hits are cheap, pulling a line from another core on the same socket
//! costs more, and pulling it across the interconnect costs the most. This is
//! the mechanism that makes queue-based and NUMA-aware locks win in the
//! simulation for the same reason they win on real hardware: they reduce the
//! number of cross-socket line transfers per handoff.
//!
//! The model is deliberately socket-granular rather than a full per-core
//! MESI simulator; every lock studied by the paper is at most socket-aware,
//! so socket-level residency captures the first-order effect (see
//! `DESIGN.md` §7).

use crate::topology::SocketId;
use crate::TaskId;

/// Identifier of a simulated cache line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LineId(pub u32);

/// Latency constants, in nanoseconds of virtual time.
///
/// Defaults are calibrated to a large multi-socket x86 server: they are not
/// meant to match any specific part, only to preserve the *ordering*
/// `hit ≪ same-socket ≪ cross-socket` that drives lock scalability.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Load that hits in a cache of the requesting socket.
    pub load_hit: u64,
    /// Store/RMW on a line already held exclusively by the requesting socket.
    pub store_hit: u64,
    /// Transfer from another core on the same socket.
    pub same_socket: u64,
    /// Transfer across the socket interconnect.
    pub cross_socket: u64,
    /// Fill from memory (line not cached anywhere).
    pub memory: u64,
    /// Extra cost of a locked read-modify-write over a plain access.
    pub rmw_extra: u64,
    /// Scheduler latency from `unpark` to the woken task running.
    pub wake_latency: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            load_hit: 4,
            store_hit: 6,
            same_socket: 40,
            cross_socket: 220,
            memory: 120,
            rmw_extra: 12,
            wake_latency: 4_000,
        }
    }
}

/// Coherence state of one line, at socket granularity.
#[derive(Clone, Debug, PartialEq, Eq)]
enum LineState {
    /// Not cached anywhere (fresh, or post-eviction — we never evict).
    Invalid,
    /// Cached read-only by the sockets in the bitmask.
    Shared(u64),
    /// Held exclusively (dirty) by one socket.
    Exclusive(SocketId),
}

struct Line {
    state: LineState,
    /// Tasks to be re-scheduled when the line is written (futex analog).
    watchers: Vec<TaskId>,
}

/// Tracks residency of every simulated line and prices accesses.
pub(crate) struct CacheModel {
    lines: Vec<Line>,
    lat: LatencyModel,
    loads: u64,
    stores: u64,
    transfers: u64,
}

impl CacheModel {
    pub(crate) fn new(lat: LatencyModel) -> Self {
        CacheModel {
            lines: Vec::new(),
            lat,
            loads: 0,
            stores: 0,
            transfers: 0,
        }
    }

    pub(crate) fn latency(&self) -> &LatencyModel {
        &self.lat
    }

    pub(crate) fn alloc_line(&mut self) -> LineId {
        let id = LineId(self.lines.len() as u32);
        self.lines.push(Line {
            state: LineState::Invalid,
            watchers: Vec::new(),
        });
        id
    }

    /// Prices a load from `socket` and updates residency.
    pub(crate) fn load_cost(&mut self, line: LineId, socket: SocketId) -> u64 {
        self.loads += 1;
        let lat = self.lat;
        let l = &mut self.lines[line.0 as usize];
        let bit = 1u64 << socket.0;
        match l.state {
            LineState::Invalid => {
                l.state = LineState::Shared(bit);
                self.transfers += 1;
                lat.memory
            }
            LineState::Shared(mask) => {
                if mask & bit != 0 {
                    lat.load_hit
                } else {
                    l.state = LineState::Shared(mask | bit);
                    self.transfers += 1;
                    // Pull from the nearest sharer: same socket is impossible
                    // here (we are not in the mask), so it is a remote pull
                    // unless another core of our socket shares it, which the
                    // socket-granular mask already covers.
                    lat.cross_socket
                }
            }
            LineState::Exclusive(owner) => {
                if owner == socket {
                    lat.load_hit
                } else {
                    l.state = LineState::Shared(bit | (1u64 << owner.0));
                    self.transfers += 1;
                    lat.cross_socket
                }
            }
        }
    }

    /// Prices a store (or the write half of an RMW) from `socket` and
    /// updates residency to exclusive. Watchers are *not* taken here: the
    /// caller wakes them at operation completion via
    /// [`CacheModel::swap_watchers`], so a task that registers during the
    /// operation's latency window is still woken.
    pub(crate) fn store_cost(&mut self, line: LineId, socket: SocketId) -> u64 {
        self.stores += 1;
        let lat = self.lat;
        let l = &mut self.lines[line.0 as usize];
        let bit = 1u64 << socket.0;
        let cost = match l.state {
            LineState::Invalid => {
                self.transfers += 1;
                lat.memory
            }
            LineState::Shared(mask) => {
                self.transfers += 1;
                if mask == bit {
                    // Only we hold it: upgrade, cheap.
                    lat.store_hit + lat.same_socket / 4
                } else if mask & !bit != 0 && (mask & !bit).count_ones() > 0 {
                    // Invalidate other sockets.
                    lat.cross_socket
                } else {
                    lat.same_socket
                }
            }
            LineState::Exclusive(owner) => {
                if owner == socket {
                    lat.store_hit
                } else {
                    self.transfers += 1;
                    lat.cross_socket
                }
            }
        };
        l.state = LineState::Exclusive(socket);
        cost
    }

    /// Moves the watchers of `line` into `buf` (wake at store/RMW
    /// completion) by buffer swap, leaving the line with `buf`'s empty,
    /// capacity-retaining allocation. Steady-state wake cycles therefore
    /// allocate nothing: buffers circulate between the lines and the
    /// executor's scratch vector instead of being freed and regrown.
    pub(crate) fn swap_watchers(&mut self, line: LineId, buf: &mut Vec<TaskId>) {
        debug_assert!(buf.is_empty());
        std::mem::swap(&mut self.lines[line.0 as usize].watchers, buf);
    }

    /// Registers `task` to be woken when `line` is next written.
    pub(crate) fn watch(&mut self, line: LineId, task: TaskId) {
        let l = &mut self.lines[line.0 as usize];
        if !l.watchers.contains(&task) {
            l.watchers.push(task);
        }
    }

    /// Removes `task` from the watcher list of `line`, if present.
    pub(crate) fn unwatch(&mut self, line: LineId, task: TaskId) {
        let l = &mut self.lines[line.0 as usize];
        l.watchers.retain(|t| *t != task);
    }

    pub(crate) fn counters(&self) -> (u64, u64, u64) {
        (self.loads, self.stores, self.transfers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CacheModel {
        CacheModel::new(LatencyModel::default())
    }

    fn take_watchers(m: &mut CacheModel, l: LineId) -> Vec<TaskId> {
        let mut buf = Vec::new();
        m.swap_watchers(l, &mut buf);
        buf
    }

    #[test]
    fn first_load_is_memory_fill() {
        let mut m = model();
        let l = m.alloc_line();
        assert_eq!(m.load_cost(l, SocketId(0)), LatencyModel::default().memory);
    }

    #[test]
    fn repeated_local_load_hits() {
        let mut m = model();
        let l = m.alloc_line();
        m.load_cost(l, SocketId(0));
        assert_eq!(
            m.load_cost(l, SocketId(0)),
            LatencyModel::default().load_hit
        );
    }

    #[test]
    fn remote_load_pays_cross_socket() {
        let mut m = model();
        let l = m.alloc_line();
        m.load_cost(l, SocketId(0));
        assert_eq!(
            m.load_cost(l, SocketId(1)),
            LatencyModel::default().cross_socket
        );
        // Both now share it; both hit.
        assert_eq!(
            m.load_cost(l, SocketId(0)),
            LatencyModel::default().load_hit
        );
        assert_eq!(
            m.load_cost(l, SocketId(1)),
            LatencyModel::default().load_hit
        );
    }

    #[test]
    fn store_after_remote_share_invalidates() {
        let mut m = model();
        let l = m.alloc_line();
        m.load_cost(l, SocketId(0));
        m.load_cost(l, SocketId(1));
        let cost = m.store_cost(l, SocketId(0));
        assert_eq!(cost, LatencyModel::default().cross_socket);
        // Socket 1 must re-fetch.
        assert_eq!(
            m.load_cost(l, SocketId(1)),
            LatencyModel::default().cross_socket
        );
    }

    #[test]
    fn exclusive_store_hit_is_cheap() {
        let mut m = model();
        let l = m.alloc_line();
        m.store_cost(l, SocketId(2));
        let cost = m.store_cost(l, SocketId(2));
        assert_eq!(cost, LatencyModel::default().store_hit);
    }

    #[test]
    fn ping_pong_stores_pay_every_time() {
        let mut m = model();
        let l = m.alloc_line();
        m.store_cost(l, SocketId(0));
        for _ in 0..4 {
            let c1 = m.store_cost(l, SocketId(1));
            let c0 = m.store_cost(l, SocketId(0));
            assert_eq!(c1, LatencyModel::default().cross_socket);
            assert_eq!(c0, LatencyModel::default().cross_socket);
        }
    }

    #[test]
    fn take_watchers_drains_once() {
        let mut m = model();
        let l = m.alloc_line();
        m.watch(l, TaskId(7));
        m.watch(l, TaskId(9));
        m.watch(l, TaskId(7)); // Duplicate registration is a no-op.
        assert_eq!(take_watchers(&mut m, l), vec![TaskId(7), TaskId(9)]);
        assert!(take_watchers(&mut m, l).is_empty());
    }

    #[test]
    fn unwatch_removes_watcher() {
        let mut m = model();
        let l = m.alloc_line();
        m.watch(l, TaskId(1));
        m.unwatch(l, TaskId(1));
        assert!(take_watchers(&mut m, l).is_empty());
    }

    #[test]
    fn swapped_out_buffer_capacity_returns_to_the_line() {
        let mut m = model();
        let l = m.alloc_line();
        m.watch(l, TaskId(1));
        m.watch(l, TaskId(2));
        let mut buf = Vec::new();
        m.swap_watchers(l, &mut buf);
        assert_eq!(buf, vec![TaskId(1), TaskId(2)]);
        let cap = buf.capacity();
        buf.clear();
        // Give the drained buffer back: the line now owns its capacity.
        m.swap_watchers(l, &mut buf);
        assert!(buf.is_empty());
        m.watch(l, TaskId(3));
        m.watch(l, TaskId(4));
        let mut buf2 = Vec::new();
        m.swap_watchers(l, &mut buf2);
        assert_eq!(buf2, vec![TaskId(3), TaskId(4)]);
        assert!(buf2.capacity() >= cap);
    }
}
