//! Deterministic discrete-event simulation of a multi-socket shared-memory
//! machine.
//!
//! `ksim` is the hardware/kernel substrate used by this reproduction of
//! *Contextual Concurrency Control* (HotOS '21). The paper evaluates kernel
//! locks on an 8-socket, 80-core machine; this crate models such a machine in
//! virtual time so that lock algorithms and policies can be compared
//! deterministically on any host, including a single-CPU container.
//!
//! The model has four parts:
//!
//! * a cooperative, single-threaded **async executor** ordered by virtual
//!   time ([`Sim`]),
//! * a **topology** of sockets and cores ([`Topology`]),
//! * a **cache-line cost model** that charges loads, stores and atomic
//!   read-modify-writes with latencies that depend on where the line
//!   currently lives ([`LatencyModel`], [`SimWord`]),
//! * **task scheduling** primitives: delays, park/unpark with a wake-up
//!   latency, and futex-like `wait_while` used to model spin-waiting without
//!   simulating every spin iteration,
//! * a **lossy message transport** ([`net::SimNet`]) with a seeded fault
//!   plan (drop/delay/duplicate/reorder/partition) and deterministic
//!   capped-exponential backoff, used by the fleet control plane.
//!
//! Simulated lock algorithms (crate `simlocks`) are written as ordinary Rust
//! `async` functions against these primitives; every interaction with shared
//! memory is an `.await` that advances virtual time.
//!
//! # Determinism
//!
//! Runs are reproducible: the event heap breaks ties by a monotonically
//! increasing sequence number and all randomness flows from a seed supplied
//! to [`SimBuilder::seed`].
//!
//! # Examples
//!
//! ```
//! use ksim::{CpuId, SimBuilder, SimWord};
//! use std::rc::Rc;
//!
//! let sim = SimBuilder::new().build();
//! let counter = Rc::new(SimWord::new(&sim, 0));
//! for cpu in 0..4u32 {
//!     let c = counter.clone();
//!     sim.spawn_on(CpuId(cpu), move |t| async move {
//!         for _ in 0..100 {
//!             c.fetch_add(&t, 1).await;
//!             t.advance(50).await;
//!         }
//!     });
//! }
//! sim.run();
//! assert_eq!(counter.peek(), 400);
//! ```

mod cache;
mod cell;
mod exec;
pub mod net;
mod rng;
pub mod sched;
pub mod stats;
mod topology;

pub use cache::{LatencyModel, LineId};
pub use cell::{SimCell, SimFlag, SimWord};
pub use exec::{Sim, SimBuilder, SimStats, TaskCtx, TaskId};
pub use net::{Backoff, NetFaultPlan, NetStats, SimNet};
pub use rng::SplitMix64;
pub use sched::{
    Injection, PctStrategy, RandomDelayStrategy, ReplayStrategy, SchedAction, SchedController,
    SchedPoint, SchedSite, ScheduleStrategy, MAX_INJECT_NS,
};
pub use stats::{Histogram, OnlineStats};
pub use topology::{CpuId, SocketId, Topology};
