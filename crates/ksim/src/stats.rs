//! Measurement helpers shared by workloads, the profiler and the benches.

/// Power-of-two bucketed histogram, in the style of the kernel's `lockstat`
/// and BPF `hist` maps.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also counts 0.
///
/// # Examples
///
/// ```
/// use ksim::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(1000);
/// assert_eq!(h.count(), 3);
/// assert!(h.max() >= 1000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Reconstructs a histogram from raw parts — the snapshot of an
    /// atomic-bucket histogram (e.g. `telemetry::AtomicHistogram`), which
    /// shares this bucketing exactly. An all-zero `count` yields an empty
    /// histogram regardless of `min`.
    pub fn from_raw(buckets: [u64; 64], count: u64, sum: u64, min: u64, max: u64) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile from the bucket boundaries (`q` in `[0, 1]`).
    ///
    /// Returns the upper bound of the bucket containing the requested rank,
    /// which is exact to within a factor of two — the same fidelity as BPF
    /// log2 histograms.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0)) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen > rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty `(bucket_floor, count)` pairs, for report rendering.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (if i == 0 { 0 } else { 1u64 << i }, *c))
            .collect()
    }
}

/// Streaming mean / variance / extrema (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use ksim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(v);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-9);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.n += 1;
        let d = v - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation, or 0 if fewer than two samples.
    pub fn population_stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / mean), or 0 for an empty or
    /// zero-mean stream. Used as the fairness metric in the Table 1 bench.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.population_stddev() / m
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let nz = h.nonzero_buckets();
        assert_eq!(nz, vec![(0, 2), (2, 2), (4, 1)]);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1024u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(1.0));
        // Median of 1..=1024 is ~512; log2 bucket upper bound is 512 or 1024.
        assert!((256..=1024).contains(&h.quantile(0.5)));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn online_stats_extrema_and_cov() {
        let mut s = OnlineStats::new();
        for v in [1.0, 2.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!(s.cov() > 0.0);
        let mut uniform = OnlineStats::new();
        for _ in 0..10 {
            uniform.add(4.0);
        }
        assert_eq!(uniform.cov(), 0.0);
    }
}
