//! Lossy simulated message transport and deterministic retry backoff.
//!
//! The fleet control plane (crate `concord`, module `fleet`) distributes
//! sealed policy artifacts to many simulated lock hosts. The wire between
//! them is this module: a [`SimNet`] whose endpoints exchange messages in
//! virtual time, with every fault a real network exhibits — drop, delay,
//! duplication, reordering, partition — injected deterministically from a
//! seeded [`NetFaultPlan`]. Senders cope with the losses using a capped
//! exponential [`Backoff`] whose jitter is likewise derived from the
//! seed, so an entire distribution run replays bit-identically.
//!
//! Delivery is poll-based rather than task-based: `send` computes the
//! delivery timestamp up front (base delay + fault-plan jitter, plus a
//! reordering penalty when the plan says so) and enqueues the message on
//! the destination inbox keyed by that timestamp; the receiver drains
//! everything that has "arrived" by its current virtual time with
//! [`SimNet::recv`]. No courier tasks means the transport itself never
//! perturbs the executor's event order — determinism falls out of the
//! heap's existing tie-breaking.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Fault plan

/// Seeded fault schedule for a [`SimNet`], in the style of
/// `cbpf::fault::FaultPlan`: every per-message decision (drop? duplicate?
/// how much delay?) is a pure function of `(seed, message sequence
/// number)`, so two runs over the same plan inject byte-identical
/// schedules of misbehavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Seed for every derived decision.
    pub seed: u64,
    /// Probability of dropping a message, in permille (0..=1000).
    pub drop_permille: u16,
    /// Probability of duplicating a message, in permille.
    pub dup_permille: u16,
    /// Probability of adding a reordering penalty (an extra delay long
    /// enough that later sends overtake this one), in permille.
    pub reorder_permille: u16,
    /// Minimum one-way latency, virtual nanoseconds.
    pub min_delay_ns: u64,
    /// Maximum one-way latency (before any reordering penalty).
    pub max_delay_ns: u64,
}

impl NetFaultPlan {
    /// A perfectly reliable network with a fixed one-way latency: no
    /// drops, no duplicates, no reordering.
    pub fn reliable(seed: u64, delay_ns: u64) -> Self {
        NetFaultPlan {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            reorder_permille: 0,
            min_delay_ns: delay_ns,
            max_delay_ns: delay_ns,
        }
    }

    /// The default adversarial network the fleet gate sweeps: 10% drop,
    /// 5% duplication, 10% reordering, 10–80µs one-way latency.
    pub fn lossy(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            drop_permille: 100,
            dup_permille: 50,
            reorder_permille: 100,
            min_delay_ns: 10_000,
            max_delay_ns: 80_000,
        }
    }

    /// Deterministic derived randomness: splitmix64 finalize over
    /// `(seed, salt)` — the same construction `concord`'s chaos injector
    /// uses, so adjacent seeds never collide.
    pub fn rng(&self, salt: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Roll a permille-probability event for message `seq`, decision
    /// channel `channel` (drop/dup/reorder use distinct channels so the
    /// decisions are independent).
    fn roll(&self, seq: u64, channel: u64, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        (self.rng(seq.wrapping_mul(3).wrapping_add(channel)) % 1000) < u64::from(permille)
    }

    /// The one-way latency for message `seq`, within
    /// `[min_delay_ns, max_delay_ns]`.
    fn delay(&self, seq: u64) -> u64 {
        let span = self.max_delay_ns.saturating_sub(self.min_delay_ns);
        if span == 0 {
            return self.min_delay_ns;
        }
        self.min_delay_ns + self.rng(seq.wrapping_mul(3).wrapping_add(2)) % (span + 1)
    }
}

// ---------------------------------------------------------------------------
// Transport

/// Counters a [`SimNet`] keeps about what the fault plan did; folded into
/// the fleet gate's replay fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to `send`.
    pub sent: u64,
    /// Messages drained by `recv`.
    pub delivered: u64,
    /// Messages the fault plan dropped.
    pub dropped: u64,
    /// Extra copies the fault plan injected.
    pub duplicated: u64,
    /// Messages that took a reordering penalty.
    pub reordered: u64,
    /// Messages discarded because an endpoint was partitioned at send or
    /// delivery time.
    pub partitioned: u64,
}

struct NetInner<M> {
    plan: NetFaultPlan,
    /// Per-send sequence number: the salt for every fault decision.
    seq: u64,
    /// Tie-breaker so two messages arriving in the same nanosecond keep
    /// a stable order.
    tie: u64,
    /// One inbox per endpoint, keyed by `(deliver_at_ns, tie)`.
    inboxes: Vec<BTreeMap<(u64, u64), M>>,
    /// Endpoints currently cut off from the network.
    partitioned: BTreeSet<usize>,
    stats: NetStats,
}

/// A shared lossy network between a fixed set of endpoints. Cloning is
/// cheap (an `Rc` bump); every task in the simulation holds a clone.
///
/// The executor is single-threaded, so the interior `RefCell` is never
/// contended; borrows are confined to each method body.
pub struct SimNet<M> {
    inner: Rc<RefCell<NetInner<M>>>,
}

impl<M> Clone for SimNet<M> {
    fn clone(&self) -> Self {
        SimNet {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<M: Clone> SimNet<M> {
    /// A network of `endpoints` endpoints under `plan`.
    pub fn new(plan: NetFaultPlan, endpoints: usize) -> Self {
        SimNet {
            inner: Rc::new(RefCell::new(NetInner {
                plan,
                seq: 0,
                tie: 0,
                inboxes: (0..endpoints).map(|_| BTreeMap::new()).collect(),
                partitioned: BTreeSet::new(),
                stats: NetStats::default(),
            })),
        }
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        self.inner.borrow().inboxes.len()
    }

    /// Sends `msg` from endpoint `from` to endpoint `to` at virtual time
    /// `now`. The fault plan decides loss, duplication, reordering and
    /// latency; a partitioned sender or receiver loses the message
    /// outright (counted in [`NetStats::partitioned`]).
    pub fn send(&self, now: u64, from: usize, to: usize, msg: M) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        inner.stats.sent += 1;
        if inner.partitioned.contains(&from) || inner.partitioned.contains(&to) {
            inner.stats.partitioned += 1;
            return;
        }
        let plan = inner.plan;
        let copies = if plan.roll(seq, 1, plan.dup_permille) {
            inner.stats.duplicated += 1;
            2
        } else {
            1
        };
        for copy in 0..copies {
            if plan.roll(seq.wrapping_add(copy), 0, plan.drop_permille) {
                inner.stats.dropped += 1;
                continue;
            }
            let mut delay = plan.delay(seq.wrapping_add(copy));
            if plan.roll(seq.wrapping_add(copy), 3, plan.reorder_permille) {
                // Push the arrival past several max-latency windows so
                // later sends genuinely overtake this one.
                delay += 3 * plan.max_delay_ns.max(1);
                inner.stats.reordered += 1;
            }
            let tie = inner.tie;
            inner.tie += 1;
            inner.inboxes[to].insert((now.saturating_add(delay), tie), msg.clone());
        }
    }

    /// Drains every message that has arrived at endpoint `ep` by virtual
    /// time `now`, in arrival order. A partitioned endpoint receives
    /// nothing; messages already in flight to it are discarded (the
    /// partition ate them).
    pub fn recv(&self, now: u64, ep: usize) -> Vec<M> {
        let mut inner = self.inner.borrow_mut();
        if inner.partitioned.contains(&ep) {
            let stale: Vec<(u64, u64)> = inner.inboxes[ep]
                .range(..=(now, u64::MAX))
                .map(|(k, _)| *k)
                .collect();
            inner.stats.partitioned += stale.len() as u64;
            for k in stale {
                inner.inboxes[ep].remove(&k);
            }
            return Vec::new();
        }
        let ready: Vec<(u64, u64)> = inner.inboxes[ep]
            .range(..=(now, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::with_capacity(ready.len());
        for k in ready {
            if let Some(m) = inner.inboxes[ep].remove(&k) {
                out.push(m);
            }
        }
        inner.stats.delivered += out.len() as u64;
        out
    }

    /// Messages queued for endpoint `ep` (regardless of arrival time).
    pub fn pending(&self, ep: usize) -> usize {
        self.inner.borrow().inboxes[ep].len()
    }

    /// Cuts endpoint `ep` off: everything to or from it is lost until
    /// [`SimNet::heal`].
    pub fn partition(&self, ep: usize) {
        self.inner.borrow_mut().partitioned.insert(ep);
    }

    /// Reconnects endpoint `ep`.
    pub fn heal(&self, ep: usize) {
        self.inner.borrow_mut().partitioned.remove(&ep);
    }

    /// Reconnects every endpoint.
    pub fn heal_all(&self) {
        self.inner.borrow_mut().partitioned.clear();
    }

    /// Whether endpoint `ep` is currently partitioned.
    pub fn is_partitioned(&self, ep: usize) -> bool {
        self.inner.borrow().partitioned.contains(&ep)
    }

    /// Fault counters so far.
    pub fn stats(&self) -> NetStats {
        self.inner.borrow().stats
    }
}

// ---------------------------------------------------------------------------
// Backoff

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `n` waits `base * 2^n` plus a jitter drawn (deterministically,
/// from the seed) in `[0, base * 2^n)`, the whole thing clamped to
/// `cap`. Because the jitter never reaches the next doubling, the delay
/// sequence is monotonically non-decreasing until it pins at exactly
/// `cap` — property-checked in `crates/ksim/tests/net_faults.rs`.
#[derive(Clone, Debug)]
pub struct Backoff {
    seed: u64,
    base_ns: u64,
    cap_ns: u64,
    attempt: u32,
}

impl Backoff {
    /// A backoff starting at `base_ns` and pinning at `cap_ns`.
    /// `base_ns` is clamped up to 1 and `cap_ns` up to `base_ns`.
    pub fn new(seed: u64, base_ns: u64, cap_ns: u64) -> Self {
        let base_ns = base_ns.max(1);
        Backoff {
            seed,
            base_ns,
            cap_ns: cap_ns.max(base_ns),
            attempt: 0,
        }
    }

    /// Attempts taken since construction or the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The delay attempt `attempt` would wait, without consuming it.
    pub fn peek(&self, attempt: u32) -> u64 {
        let exp = self
            .base_ns
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        if exp >= self.cap_ns {
            return self.cap_ns;
        }
        // Jitter strictly below the current rung keeps the sequence
        // monotone: next rung's minimum (2*exp) exceeds this rung's
        // maximum (exp + exp - 1).
        let mut x = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter = (x ^ (x >> 31)) % exp;
        (exp + jitter).min(self.cap_ns)
    }

    /// Consumes and returns the next delay.
    pub fn next_delay(&mut self) -> u64 {
        let d = self.peek(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Starts the schedule over (call after a successful exchange).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_net_delivers_in_order() {
        let net: SimNet<u32> = SimNet::new(NetFaultPlan::reliable(1, 100), 2);
        for i in 0..4 {
            net.send(0, 0, 1, i);
        }
        assert_eq!(net.recv(99, 1), Vec::<u32>::new());
        assert_eq!(net.recv(100, 1), vec![0, 1, 2, 3]);
        let s = net.stats();
        assert_eq!((s.sent, s.delivered, s.dropped), (4, 4, 0));
    }

    #[test]
    fn partition_eats_messages_both_ways() {
        let net: SimNet<u32> = SimNet::new(NetFaultPlan::reliable(1, 10), 2);
        net.partition(1);
        net.send(0, 0, 1, 7); // lost at send
        net.heal(1);
        net.send(10, 0, 1, 8);
        net.partition(1);
        assert_eq!(net.recv(1000, 1), Vec::<u32>::new()); // lost at delivery
        net.heal(1);
        assert_eq!(net.recv(2000, 1), Vec::<u32>::new());
        assert_eq!(net.stats().partitioned, 2);
    }

    #[test]
    fn backoff_caps_and_replays() {
        let mut a = Backoff::new(9, 1000, 50_000);
        let mut b = Backoff::new(9, 1000, 50_000);
        let mut last = 0;
        for _ in 0..24 {
            let d = a.next_delay();
            assert_eq!(d, b.next_delay());
            assert!(d >= last, "backoff went backwards: {last} -> {d}");
            assert!(d <= 50_000);
            last = d;
        }
        assert_eq!(a.peek(63), 50_000); // shift overflow pins at cap
    }
}
