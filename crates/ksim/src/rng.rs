//! Minimal deterministic PRNG used inside the simulator.
//!
//! The simulator needs a tiny, allocation-free generator whose sequence is a
//! pure function of the seed; SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators") fits and is also the generator used to
//! seed larger PRNGs elsewhere in the workspace.

/// SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use ksim::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the simulator's purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut r = SplitMix64::new(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(3), seq(4));
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn reasonable_uniformity() {
        let mut r = SplitMix64::new(123);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b} skewed");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
