//! Property tests for the simulator substrate.

use std::cell::Cell;
use std::rc::Rc;

use ksim::{CpuId, SimBuilder, SimWord, Topology};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Topology math: every CPU maps to exactly one socket, and the
    /// socket's CPU list contains it.
    #[test]
    fn topology_partition(sockets in 1u32..16, cores in 1u32..16) {
        let t = Topology::new(sockets, cores);
        prop_assert_eq!(t.num_cpus(), sockets * cores);
        for cpu in t.all_cpus() {
            let s = t.socket_of(cpu);
            prop_assert!(s.0 < sockets);
            prop_assert!(t.cpus_of(s).any(|c| c == cpu));
        }
    }

    /// Placements stay within the topology and have the advertised shape.
    #[test]
    fn placements_in_bounds(sockets in 1u32..8, cores in 1u32..8, n in 1usize..64) {
        let t = Topology::new(sockets, cores);
        for cpu in t.compact_placement(n) {
            prop_assert!(cpu.0 < t.num_cpus());
        }
        let scatter = t.scatter_placement(n);
        for cpu in &scatter {
            prop_assert!(cpu.0 < t.num_cpus());
        }
        // Scatter: consecutive tasks land on consecutive sockets.
        for (i, cpu) in scatter.iter().enumerate() {
            prop_assert_eq!(t.socket_of(*cpu).0, i as u32 % sockets);
        }
    }

    /// Concurrent charged RMWs from arbitrary placements never lose
    /// updates, and virtual time only moves forward.
    #[test]
    fn rmw_linearizability(
        tasks in 1usize..24,
        iters in 1u64..60,
        seed in any::<u64>(),
        cpus in proptest::collection::vec(0u32..80, 24),
    ) {
        let sim = SimBuilder::new().seed(seed).build();
        let w = Rc::new(SimWord::new(&sim, 0));
        for &cpu in cpus.iter().take(tasks) {
            let w = Rc::clone(&w);
            sim.spawn_on(CpuId(cpu), move |t| async move {
                for _ in 0..iters {
                    w.fetch_add(&t, 1).await;
                    t.advance(t.rng_u64() % 100).await;
                }
            });
        }
        let stats = sim.run();
        prop_assert_eq!(w.peek(), tasks as u64 * iters);
        prop_assert!(stats.stuck_tasks.is_empty());
    }

    /// wait_while never loses a wakeup: a waiter per word, stores arriving
    /// at arbitrary (seeded) times, everything must finish.
    #[test]
    fn no_lost_wakeups(
        pairs in 1usize..12,
        seed in any::<u64>(),
    ) {
        let sim = SimBuilder::new().seed(seed).build();
        let done = Rc::new(Cell::new(0usize));
        for i in 0..pairs {
            let w = Rc::new(SimWord::new(&sim, 0));
            let (w1, d) = (Rc::clone(&w), Rc::clone(&done));
            sim.spawn_on(CpuId((i as u32 * 3) % 80), move |t| async move {
                w1.wait_while(&t, |v| v == 0).await;
                d.set(d.get() + 1);
            });
            sim.spawn_on(CpuId((i as u32 * 7 + 1) % 80), move |t| async move {
                t.advance(t.rng_u64() % 5_000).await;
                w.store(&t, 1).await;
            });
        }
        let stats = sim.run();
        prop_assert_eq!(done.get(), pairs);
        prop_assert!(stats.stuck_tasks.is_empty());
    }

    /// Determinism as a property: any workload shape produces the same
    /// stats twice.
    #[test]
    fn determinism(
        tasks in 1usize..16,
        seed in any::<u64>(),
    ) {
        let run = || {
            let sim = SimBuilder::new().seed(seed).build();
            let w = Rc::new(SimWord::new(&sim, 0));
            for i in 0..tasks {
                let w = Rc::clone(&w);
                sim.spawn_on(CpuId((i as u32 * 11) % 80), move |t| async move {
                    for _ in 0..20 {
                        let v = w.fetch_add(&t, 1).await;
                        t.advance(v % 37 + t.rng_u64() % 91).await;
                    }
                });
            }
            sim.run()
        };
        prop_assert_eq!(run(), run());
    }
}
