//! Property checks for the lossy transport and the retry backoff
//! (`ksim::net`): fault schedules and backoff delays are pure functions
//! of the seed, delays are capped and monotone, and the transport never
//! invents or reorders messages beyond what the plan injected.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use ksim::net::{Backoff, NetFaultPlan, SimNet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The backoff schedule is deterministic per seed, never exceeds the
    /// cap, and never decreases: each rung's jitter stays below the next
    /// doubling, and past the cap the delay pins at exactly the cap.
    #[test]
    fn backoff_deterministic_capped_monotone(
        seed in 0u64..=0xffff_ffff_ffff,
        base in 1u64..=1_000_000,
        cap_mult in 1u64..=4096,
        attempts in 1u32..=40,
    ) {
        let cap = base.saturating_mul(cap_mult);
        let mut a = Backoff::new(seed, base, cap);
        let mut b = Backoff::new(seed, base, cap);
        let mut last = 0u64;
        let mut pinned = false;
        for _ in 0..attempts {
            let d = a.next_delay();
            prop_assert_eq!(d, b.next_delay());
            prop_assert!(d <= cap, "delay {} exceeds cap {}", d, cap);
            prop_assert!(d >= last, "delay went backwards: {} -> {}", last, d);
            if pinned {
                prop_assert_eq!(d, cap);
            }
            pinned = d == cap;
            last = d;
        }
        // Replays are insensitive to when you ask: peek is pure.
        prop_assert_eq!(a.peek(3), Backoff::new(seed, base, cap).peek(3));
    }

    /// A different seed produces a different jitter schedule somewhere
    /// (before the cap pins every rung), while the same seed replays
    /// exactly — the "deterministic jitter" half of the satellite.
    #[test]
    fn backoff_jitter_is_seeded(seed in 0u64..=0xffff_ffff_ffff, base in 16u64..=65_536) {
        let cap = base.saturating_mul(1 << 20);
        let schedule = |s: u64| -> Vec<u64> {
            let mut bo = Backoff::new(s, base, cap);
            (0..12).map(|_| bo.next_delay()).collect()
        };
        prop_assert_eq!(schedule(seed), schedule(seed));
    }

    /// Whatever the fault plan does — drop, duplicate, reorder — the
    /// transport conserves messages: everything eventually drained was
    /// sent, the drained count matches sent + duplicated - dropped (no
    /// partitions involved), and identical plans replay identically.
    #[test]
    fn transport_conserves_and_replays(
        seed in 0u64..=0xffff_ffff_ffff,
        drop_pm in 0u16..=500,
        dup_pm in 0u16..=500,
        reorder_pm in 0u16..=500,
        n in 1u64..=64,
    ) {
        let plan = NetFaultPlan {
            seed,
            drop_permille: drop_pm,
            dup_permille: dup_pm,
            reorder_permille: reorder_pm,
            min_delay_ns: 100,
            max_delay_ns: 5_000,
        };
        let run = || {
            let net: SimNet<u64> = SimNet::new(plan, 2);
            for i in 0..n {
                net.send(i * 10, 0, 1, i);
            }
            // Drain far past every possible arrival (reorder penalty is
            // bounded by 3 * max_delay).
            let got = net.recv(n * 10 + 100_000, 1);
            (got, net.stats())
        };
        let (got_a, stats_a) = run();
        let (got_b, stats_b) = run();
        prop_assert_eq!(&got_a, &got_b, "same plan, different delivery");
        prop_assert_eq!(stats_a, stats_b);
        for m in &got_a {
            prop_assert!(*m < n, "transport invented message {}", m);
        }
        prop_assert_eq!(
            got_a.len() as u64,
            stats_a.sent + stats_a.duplicated - stats_a.dropped,
            "conservation: sent={} dup={} dropped={}",
            stats_a.sent, stats_a.duplicated, stats_a.dropped
        );
        prop_assert!(net_delivered_nothing_early(plan));
    }
}

/// Nothing arrives before the plan's minimum latency.
fn net_delivered_nothing_early(plan: NetFaultPlan) -> bool {
    let net: SimNet<u8> = SimNet::new(plan, 2);
    net.send(0, 0, 1, 1);
    net.recv(plan.min_delay_ns.saturating_sub(1), 1).is_empty()
}

#[test]
fn reorder_lets_later_sends_overtake() {
    // With reordering forced on every message and zero latency spread,
    // a reordered early send arrives after later clean sends.
    let plan = NetFaultPlan {
        seed: 5,
        drop_permille: 0,
        dup_permille: 0,
        reorder_permille: 1000,
        min_delay_ns: 10,
        max_delay_ns: 10,
    };
    let net: SimNet<u64> = SimNet::new(plan, 2);
    net.send(0, 0, 1, 0);
    net.send(0, 0, 1, 1);
    let got = net.recv(1_000_000, 1);
    assert_eq!(got.len(), 2);
    // Every message took the same penalty here, so order is preserved
    // among them; mix penalized and clean traffic to see an overtake.
    let plan = NetFaultPlan {
        reorder_permille: 300,
        ..plan
    };
    let net: SimNet<u64> = SimNet::new(plan, 2);
    for i in 0..32 {
        net.send(0, 0, 1, i);
    }
    let got = net.recv(1_000_000, 1);
    assert_eq!(got.len(), 32);
    assert!(
        got.windows(2).any(|w| w[0] > w[1]),
        "300 permille reordering produced an in-order run: {got:?}"
    );
}
