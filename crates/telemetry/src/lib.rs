//! The Concord telemetry plane.
//!
//! Everything the framework can *observe* flows through this crate as a
//! single ordered stream of compact binary [`TraceEvent`] records, modeled
//! on the kernel's bpf ringbuf / ftrace pipe:
//!
//! * **lock slow-path transitions** — acquire / contended / acquired /
//!   release, plus the shuffler's per-node decisions, emitted from the
//!   `locks` hook sites;
//! * **hook-dispatch spans** — one per policy invocation, carrying the
//!   prepared program's executed instruction count and remaining budget;
//! * **control-plane transitions** — livepatch apply/revert, breaker
//!   trips, watchdog verdicts, quarantines;
//! * **policy-emitted events** — user bytecode calls the `trace_emit`
//!   cbpf helper and its bounded payload lands in the same stream.
//!
//! Events go into per-CPU, lock-free, fixed-capacity [`ring::Ring`]s
//! (overwrite-oldest, drops counted) and come out merged in timestamp
//! order. Timestamps come from one [`clock`] abstraction that resolves to
//! real monotonic nanoseconds in the `locks`/`concord` domain and to DES
//! virtual time in `ksim`/`simlocks`, so a simulated trace replays
//! bit-identically for a fixed seed.
//!
//! The whole plane is **disarmed by default**: every emit site guards on
//! [`armed`], a single relaxed atomic load, so the cost of compiled-in
//! telemetry is one predictable branch per site.

pub mod analyze;
pub mod clock;
pub mod event;
pub mod export;
pub mod metrics;
pub mod ring;

pub use analyze::{AnalyzeConfig, Analyzer, EventFilter, Report};
pub use event::{EventKind, TraceEvent, EVENT_BYTES, MAX_PAYLOAD};
pub use metrics::{AtomicHistogram, Counter, Gauge, MetricsRegistry};
pub use ring::{Plane, Ring};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ARMED: AtomicBool = AtomicBool::new(false);
static PLANE: OnceLock<Plane> = OnceLock::new();
static METRICS: OnceLock<MetricsRegistry> = OnceLock::new();

/// Is the global trace plane armed? One relaxed load — this is the only
/// cost telemetry adds to a lock's slow path while tracing is off.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm or disarm the global trace plane.
pub fn set_armed(on: bool) {
    ARMED.store(on, Ordering::SeqCst);
}

/// Arm the plane if the `C3_TRACE` environment variable is set to a
/// truthy value (`1`, `on`, `true`). Returns the resulting armed state.
pub fn arm_from_env() -> bool {
    if let Ok(v) = std::env::var("C3_TRACE") {
        if matches!(v.as_str(), "1" | "on" | "true" | "yes") {
            set_armed(true);
        }
    }
    armed()
}

/// The global trace plane (per-CPU rings), created on first touch.
pub fn plane() -> &'static Plane {
    PLANE.get_or_init(Plane::new)
}

/// The global metrics registry, created on first touch.
pub fn metrics() -> &'static MetricsRegistry {
    METRICS.get_or_init(MetricsRegistry::new)
}

/// Emit a payload-free event into the global plane, if armed.
///
/// The meaning of `a..d` depends on `kind`; see the schema table in
/// DESIGN.md §4.6. `ts_ns` is caller-supplied so that simulation emit
/// sites can pass DES virtual time and real sites can pass
/// `clock::now_ns()` — the plane itself never reads a clock.
#[inline]
pub fn emit(kind: EventKind, ts_ns: u64, cpu: u16, a: u64, b: u64, c: u64, d: u64) {
    if !armed() {
        return;
    }
    plane().emit(TraceEvent::new(kind, ts_ns, cpu, a, b, c, d));
}

/// Emit an event carrying up to [`MAX_PAYLOAD`] opaque payload bytes
/// (longer payloads are truncated), if armed.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the TraceEvent word layout
pub fn emit_payload(
    kind: EventKind,
    ts_ns: u64,
    cpu: u16,
    a: u64,
    b: u64,
    c: u64,
    d: u64,
    payload: &[u8],
) {
    if !armed() {
        return;
    }
    let mut ev = TraceEvent::new(kind, ts_ns, cpu, a, b, c, d);
    ev.set_payload(payload);
    plane().emit(ev);
}

/// Drain the global plane: consume every completed event, merged across
/// CPU rings in `(ts_ns, cpu, seq)` order.
pub fn drain() -> Vec<TraceEvent> {
    plane().drain()
}

/// Flight-recorder view: the last `n` events still resident in the rings,
/// in `(ts_ns, cpu, seq)` order, *without* consuming them.
pub fn snapshot_last(n: usize) -> Vec<TraceEvent> {
    plane().snapshot_last(n)
}

/// Total events lost to overwrite-oldest wraparound since process start.
pub fn dropped() -> u64 {
    plane().dropped()
}

/// Mirror the plane's drop total into the `c3_trace_dropped_total`
/// counter in the global metrics registry. The plane's count is the
/// source of truth; the counter is a monotonic mirror
/// ([`Counter::raise_to`]), so calling this from several control-plane
/// paths is safe.
pub fn sync_dropped_counter() {
    metrics().counter("c3_trace_dropped_total").raise_to(dropped());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_emit_is_a_noop() {
        set_armed(false);
        emit(EventKind::LockAcquire, 1, 0, 42, 0, 0, 0);
        assert!(drain().iter().all(|e| e.a != 42 || e.kind != EventKind::LockAcquire));
    }
}
