//! The compact binary trace record.
//!
//! A [`TraceEvent`] is exactly [`EVENT_BYTES`] (72) bytes — nine 64-bit
//! words — so a ring slot can publish it with plain word-sized atomic
//! stores and a seqlock-style completion word, the same trick the kernel
//! ringbuf plays with its record header:
//!
//! ```text
//! word 0   seq       per-CPU sequence number (assigned by the ring)
//! word 1   ts_ns     timestamp, real or DES-virtual nanoseconds
//! word 2-5 a b c d   kind-specific arguments (schema: DESIGN.md §4.6)
//! word 6   kind:u16 | cpu:u16 | len:u8 | pad:u24
//! word 7-8 payload   up to MAX_PAYLOAD (16) opaque bytes
//! ```

/// Encoded size of one trace record, in bytes.
pub const EVENT_BYTES: usize = 72;

/// Number of 64-bit words in one record.
pub const EVENT_WORDS: usize = 9;

/// Maximum opaque payload bytes one record can carry. This is also the
/// upper bound the cbpf verifier enforces on `trace_emit` lengths.
pub const MAX_PAYLOAD: usize = 16;

/// What happened. The discriminants are the wire encoding — they must
/// never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A thread entered `acquire()`. `a`=lock id, `b`=tid, `c`=socket.
    LockAcquire = 1,
    /// The fast path failed; the thread is queueing. Args as above.
    LockContended = 2,
    /// The lock was taken. Args as above.
    LockAcquired = 3,
    /// The lock was released. Args as above.
    LockRelease = 4,
    /// Shuffler `cmp_node` decision. `a`=lock id, `b`=shuffler tid,
    /// `c`=scanned tid, `d`=verdict (1 = group).
    CmpNode = 5,
    /// Shuffler `skip_shuffle` decision. `a`=lock id, `b`=shuffler tid,
    /// `d`=verdict (1 = skip).
    SkipShuffle = 6,
    /// `schedule_waiter` decision. `a`=lock id, `b`=waiter tid,
    /// `d`=verdict (1 = run now).
    ScheduleWaiter = 7,
    /// One policy invocation. `a`=lock id, `b`=hook bit, `c`=instructions
    /// executed by the prepared program, `d`=budget remaining.
    HookSpan = 8,
    /// Livepatch applied. `a`=fnv64 of the patch label; label prefix in
    /// the payload.
    PatchApply = 9,
    /// Livepatch reverted. Args as [`EventKind::PatchApply`].
    PatchRevert = 10,
    /// A breaker opened. `a`=lock id, `b`=hook bit, `c`=consecutive
    /// faults, `d`=fault-kind discriminant.
    BreakerTrip = 11,
    /// Watchdog verdict on a profiling window. `a`=lock id, `b`=hazard
    /// count, `d`=1 if the window tripped revert.
    WatchdogVerdict = 12,
    /// A policy was quarantined. `a`=lock id, `b`=hook bit; policy-name
    /// prefix in the payload.
    Quarantine = 13,
    /// User bytecode called the `trace_emit` helper. `a`=lock id (0 if
    /// unknown), `b`=pid; the helper's bytes are the payload.
    PolicyEmit = 14,
    /// A rollout intent-log record was appended. `a`=rollout generation,
    /// `b`=wave index (or `u64::MAX` for plan-level records), `c`=intent
    /// discriminant, `d`=records in the log after the append.
    RolloutStep = 15,
    /// A rollout wave health verdict. `a`=rollout generation, `b`=wave
    /// index, `d`=1 when red (abort) — reason prefix in the payload.
    RolloutHealth = 16,
    /// A fleet store publish committed. `a`=new head version,
    /// `b`=bindings in the delta, `c`=artifacts in the delta, `d`=CAS
    /// conflicts the store has absorbed so far.
    FleetPublish = 17,
    /// A host applied (or deduplicated) a delivered snapshot. `a`=host
    /// id, `b`=snapshot version, `d`=1 when the delivery was a duplicate
    /// and was dropped without re-applying.
    FleetDeliver = 18,
    /// A host lease transition. `a`=host id, `b`=the version the host
    /// last acknowledged, `d`=1 when the lease expired (host degraded),
    /// 0 when it was renewed (host active again).
    FleetLease = 19,
    /// An anti-entropy reconciliation pushed a behind host forward.
    /// `a`=host id, `b`=the version the host was at, `c`=the head it was
    /// sent.
    FleetReconcile = 20,
}

impl EventKind {
    /// Decode a wire discriminant.
    pub fn from_u16(v: u16) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            1 => LockAcquire,
            2 => LockContended,
            3 => LockAcquired,
            4 => LockRelease,
            5 => CmpNode,
            6 => SkipShuffle,
            7 => ScheduleWaiter,
            8 => HookSpan,
            9 => PatchApply,
            10 => PatchRevert,
            11 => BreakerTrip,
            12 => WatchdogVerdict,
            13 => Quarantine,
            14 => PolicyEmit,
            15 => RolloutStep,
            16 => RolloutHealth,
            17 => FleetPublish,
            18 => FleetDeliver,
            19 => FleetLease,
            20 => FleetReconcile,
            _ => return None,
        })
    }

    /// Inverse of [`EventKind::name`], for CLI filters
    /// (`c3ctl trace tail --event <name>`).
    pub fn from_name(s: &str) -> Option<EventKind> {
        (1..=20).filter_map(EventKind::from_u16).find(|k| k.name() == s)
    }

    /// Stable lowercase name, used by exporters and `c3ctl trace`.
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            LockAcquire => "lock_acquire",
            LockContended => "lock_contended",
            LockAcquired => "lock_acquired",
            LockRelease => "lock_release",
            CmpNode => "cmp_node",
            SkipShuffle => "skip_shuffle",
            ScheduleWaiter => "schedule_waiter",
            HookSpan => "hook_span",
            PatchApply => "patch_apply",
            PatchRevert => "patch_revert",
            BreakerTrip => "breaker_trip",
            WatchdogVerdict => "watchdog_verdict",
            Quarantine => "quarantine",
            PolicyEmit => "policy_emit",
            RolloutStep => "rollout_step",
            RolloutHealth => "rollout_health",
            FleetPublish => "fleet_publish",
            FleetDeliver => "fleet_deliver",
            FleetLease => "fleet_lease",
            FleetReconcile => "fleet_reconcile",
        }
    }
}

/// One decoded trace record. See the module docs for the wire layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-CPU sequence number, assigned by the ring at emit time.
    pub seq: u64,
    /// Nanoseconds — real or DES-virtual depending on the emitting domain.
    pub ts_ns: u64,
    pub kind: EventKind,
    /// Virtual CPU of the emitting thread (or simulated task).
    pub cpu: u16,
    pub a: u64,
    pub b: u64,
    pub c: u64,
    pub d: u64,
    /// Number of meaningful bytes in `payload`.
    pub len: u8,
    pub payload: [u8; MAX_PAYLOAD],
}

impl TraceEvent {
    /// A payload-free record; `seq` is filled in by the ring.
    pub fn new(kind: EventKind, ts_ns: u64, cpu: u16, a: u64, b: u64, c: u64, d: u64) -> Self {
        TraceEvent {
            seq: 0,
            ts_ns,
            kind,
            cpu,
            a,
            b,
            c,
            d,
            len: 0,
            payload: [0; MAX_PAYLOAD],
        }
    }

    /// Attach up to [`MAX_PAYLOAD`] bytes (silently truncating).
    pub fn set_payload(&mut self, bytes: &[u8]) {
        let n = bytes.len().min(MAX_PAYLOAD);
        self.payload[..n].copy_from_slice(&bytes[..n]);
        self.payload[n..].fill(0);
        self.len = n as u8;
    }

    /// The meaningful payload bytes.
    pub fn payload_bytes(&self) -> &[u8] {
        &self.payload[..usize::from(self.len).min(MAX_PAYLOAD)]
    }

    /// Encode to the nine-word wire form the ring slots store.
    pub fn to_words(&self) -> [u64; EVENT_WORDS] {
        let meta = u64::from(self.kind as u16)
            | (u64::from(self.cpu) << 16)
            | (u64::from(self.len) << 32);
        [
            self.seq,
            self.ts_ns,
            self.a,
            self.b,
            self.c,
            self.d,
            meta,
            u64::from_le_bytes(self.payload[..8].try_into().unwrap()),
            u64::from_le_bytes(self.payload[8..].try_into().unwrap()),
        ]
    }

    /// Decode the nine-word wire form. Returns `None` on an unknown kind
    /// discriminant (a torn or foreign record).
    pub fn from_words(w: &[u64; EVENT_WORDS]) -> Option<TraceEvent> {
        let kind = EventKind::from_u16((w[6] & 0xffff) as u16)?;
        let cpu = ((w[6] >> 16) & 0xffff) as u16;
        let len = ((w[6] >> 32) & 0xff) as u8;
        if usize::from(len) > MAX_PAYLOAD {
            return None;
        }
        let mut payload = [0u8; MAX_PAYLOAD];
        payload[..8].copy_from_slice(&w[7].to_le_bytes());
        payload[8..].copy_from_slice(&w[8].to_le_bytes());
        Some(TraceEvent {
            seq: w[0],
            ts_ns: w[1],
            kind,
            cpu,
            a: w[2],
            b: w[3],
            c: w[4],
            d: w[5],
            len,
            payload,
        })
    }

    /// Encode to the flat little-endian byte form (`EVENT_BYTES` long).
    pub fn to_bytes(&self) -> [u8; EVENT_BYTES] {
        let mut out = [0u8; EVENT_BYTES];
        for (i, w) in self.to_words().iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decode the flat byte form.
    pub fn from_bytes(bytes: &[u8; EVENT_BYTES]) -> Option<TraceEvent> {
        let mut w = [0u64; EVENT_WORDS];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        TraceEvent::from_words(&w)
    }

    /// Human-readable one-liner, the `c3ctl trace tail` format.
    pub fn render(&self) -> String {
        let mut s = format!(
            "[{:>12}ns] cpu{:<3} #{:<6} {:<16} a={} b={} c={} d={}",
            self.ts_ns,
            self.cpu,
            self.seq,
            self.kind.name(),
            self.a,
            self.b,
            self.c,
            self.d
        );
        if self.len > 0 {
            s.push_str(" payload=");
            for b in self.payload_bytes() {
                s.push_str(&format!("{b:02x}"));
            }
        }
        s
    }
}

/// FNV-1a hash of a label, the 64-bit name stand-in used when a record
/// has no room for a string (patch labels, policy names).
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words_and_bytes() {
        let mut ev = TraceEvent::new(EventKind::HookSpan, 12345, 7, 1, 2, 3, 4);
        ev.seq = 99;
        ev.set_payload(b"hello");
        assert_eq!(TraceEvent::from_words(&ev.to_words()), Some(ev));
        assert_eq!(TraceEvent::from_bytes(&ev.to_bytes()), Some(ev));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut w = TraceEvent::new(EventKind::LockAcquire, 0, 0, 0, 0, 0, 0).to_words();
        w[6] = 0xbeef; // not a valid EventKind discriminant
        assert_eq!(TraceEvent::from_words(&w), None);
    }

    #[test]
    fn payload_truncates_at_max() {
        let mut ev = TraceEvent::new(EventKind::PolicyEmit, 0, 0, 0, 0, 0, 0);
        ev.set_payload(&[0xab; 64]);
        assert_eq!(ev.len as usize, MAX_PAYLOAD);
        assert_eq!(ev.payload_bytes(), &[0xab; MAX_PAYLOAD]);
    }

    #[test]
    fn kind_discriminants_are_stable() {
        for (k, v) in [
            (EventKind::LockAcquire, 1u16),
            (EventKind::HookSpan, 8),
            (EventKind::PolicyEmit, 14),
            (EventKind::RolloutStep, 15),
            (EventKind::RolloutHealth, 16),
            (EventKind::FleetPublish, 17),
            (EventKind::FleetDeliver, 18),
            (EventKind::FleetLease, 19),
            (EventKind::FleetReconcile, 20),
        ] {
            assert_eq!(k as u16, v);
            assert_eq!(EventKind::from_u16(v), Some(k));
        }
    }
}
