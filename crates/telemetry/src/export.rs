//! Trace exporters.
//!
//! [`to_chrome_json`] renders a drained event stream in the
//! chrome://tracing / Perfetto "Trace Event Format" (JSON array form):
//! hook-dispatch spans become complete (`"ph":"X"`) events with a
//! duration derived from the executed instruction count, everything else
//! becomes an instant (`"ph":"i"`) event. Timestamps are microseconds as
//! the format requires, kept fractional so nanosecond ordering survives.
//!
//! [`to_flamegraph`] and [`to_contention_csv`] render an analysis
//! [`Report`] (see [`crate::analyze`]): the former as collapsed stacks
//! (`frame;frame;... weight`, the `flamegraph.pl` / inferno input format,
//! weighted in nanoseconds of blocked time), the latter as a per-lock CSV
//! of contention and attribution figures.

use crate::analyze::{Report, HANDOFF_TENANT};
use crate::event::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Virtual nanoseconds one prepared-program instruction represents when
/// rendering a hook span's duration (mirrors the DES cost model).
const SPAN_NS_PER_INSN: u64 = 2;

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_payload_hex(out: &mut String, ev: &TraceEvent) {
    for b in ev.payload_bytes() {
        let _ = write!(out, "{b:02x}");
    }
}

/// Render a `(ts, cpu, seq)`-ordered event slice as a chrome://tracing
/// JSON array. Load the result in chrome://tracing or ui.perfetto.dev.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts_us = ev.ts_ns as f64 / 1000.0;
        out.push_str("  {\"name\":\"");
        push_escaped(&mut out, ev.kind.name());
        let _ = write!(out, "\",\"cat\":\"c3\",\"pid\":1,\"tid\":{}", ev.cpu);
        match ev.kind {
            EventKind::HookSpan => {
                let dur_us = (ev.c * SPAN_NS_PER_INSN) as f64 / 1000.0;
                let _ = write!(out, ",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us}");
            }
            _ => {
                let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us}");
            }
        }
        let _ = write!(
            out,
            ",\"args\":{{\"seq\":{},\"a\":{},\"b\":{},\"c\":{},\"d\":{}",
            ev.seq, ev.a, ev.b, ev.c, ev.d
        );
        if ev.len > 0 {
            out.push_str(",\"payload\":\"");
            push_payload_hex(&mut out, ev);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Render a report's blocking chains as flamegraph collapsed stacks —
/// one `frame;frame;... <ns>` line per chain, weight = nanoseconds of
/// blocked time attributed to that chain. Feed the output straight to
/// `flamegraph.pl` or `inferno-flamegraph`; the resulting graph's total
/// width is the total measured wait across all locks. Lines are sorted
/// (the map is ordered), so the bytes are stable for a fixed report.
pub fn to_flamegraph(report: &Report) -> String {
    let mut out = String::new();
    for (stack, ns) in &report.chains {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// Render a report as a per-lock contention CSV: one row per
/// `(lock, tenant, policy)` attribution cell, caused and suffered side
/// by side, preceded by a header. Integer nanoseconds only — stable
/// bytes for a fixed report.
pub fn to_contention_csv(report: &Report) -> String {
    let mut out =
        String::from("lock,lock_id,tenant,policy,caused_ns,suffered_ns,wait_ns,completed_waits\n");
    for (id, l) in &report.locks {
        // Union of tenant/policy keys across both sides, ordered.
        let mut keys: Vec<&(u64, String)> = l.caused.keys().chain(l.suffered.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let (tenant, policy) = key;
            let caused = l.caused.get(key).copied().unwrap_or(0);
            let suffered = l.suffered.get(key).copied().unwrap_or(0);
            let tenant_s = if *tenant == HANDOFF_TENANT {
                "handoff".to_string()
            } else {
                tenant.to_string()
            };
            let _ = writeln!(
                out,
                "{},{id},{tenant_s},{policy},{caused},{suffered},{},{}",
                l.name, l.wait_ns, l.completed_waits
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalyzeConfig};

    fn contended_stream() -> Vec<TraceEvent> {
        let mut evs = vec![
            TraceEvent::new(EventKind::LockAcquired, 10, 0, 7, 1, 0, 1),
            TraceEvent::new(EventKind::LockContended, 20, 0, 7, 2, 3, 1),
            TraceEvent::new(EventKind::LockRelease, 50, 0, 7, 1, 0, 1),
            TraceEvent::new(EventKind::LockAcquired, 50, 0, 7, 2, 3, 2),
            TraceEvent::new(EventKind::LockRelease, 60, 0, 7, 2, 3, 2),
        ];
        for (i, e) in evs.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        evs
    }

    #[test]
    fn flamegraph_collapsed_stacks() {
        let r = analyze(&contended_stream(), AnalyzeConfig::default());
        let fg = to_flamegraph(&r);
        assert_eq!(fg, "lock7@tid1 30\n");
        // Total flame width == total wait.
        let total: u64 = fg
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, r.total_wait_ns());
    }

    #[test]
    fn contention_csv_shape() {
        let r = analyze(&contended_stream(), AnalyzeConfig::default());
        let csv = to_contention_csv(&r);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "lock,lock_id,tenant,policy,caused_ns,suffered_ns,wait_ns,completed_waits"
        );
        let rows: Vec<&str> = lines.collect();
        // Tenant 0 caused 30ns; tenant 3 suffered 30ns.
        assert!(rows.contains(&"lock7,7,0,(unpatched),30,0,30,1"), "{csv}");
        assert!(rows.contains(&"lock7,7,3,(unpatched),0,30,30,1"), "{csv}");
    }

    #[test]
    fn chrome_json_shape() {
        let mut span = TraceEvent::new(EventKind::HookSpan, 2000, 3, 7, 1, 10, 100);
        span.seq = 1;
        let mut inst = TraceEvent::new(EventKind::LockAcquired, 1000, 0, 7, 42, 0, 0);
        inst.set_payload(&[0xde, 0xad]);
        let json = to_chrome_json(&[inst, span]);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"lock_acquired\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"payload\":\"dead\""));
        assert!(json.contains("\"name\":\"hook_span\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":0.02"));
        // Two objects, comma-separated.
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }
}
