//! Trace exporters.
//!
//! [`to_chrome_json`] renders a drained event stream in the
//! chrome://tracing / Perfetto "Trace Event Format" (JSON array form):
//! hook-dispatch spans become complete (`"ph":"X"`) events with a
//! duration derived from the executed instruction count, everything else
//! becomes an instant (`"ph":"i"`) event. Timestamps are microseconds as
//! the format requires, kept fractional so nanosecond ordering survives.

use crate::event::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Virtual nanoseconds one prepared-program instruction represents when
/// rendering a hook span's duration (mirrors the DES cost model).
const SPAN_NS_PER_INSN: u64 = 2;

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_payload_hex(out: &mut String, ev: &TraceEvent) {
    for b in ev.payload_bytes() {
        let _ = write!(out, "{b:02x}");
    }
}

/// Render a `(ts, cpu, seq)`-ordered event slice as a chrome://tracing
/// JSON array. Load the result in chrome://tracing or ui.perfetto.dev.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts_us = ev.ts_ns as f64 / 1000.0;
        out.push_str("  {\"name\":\"");
        push_escaped(&mut out, ev.kind.name());
        let _ = write!(out, "\",\"cat\":\"c3\",\"pid\":1,\"tid\":{}", ev.cpu);
        match ev.kind {
            EventKind::HookSpan => {
                let dur_us = (ev.c * SPAN_NS_PER_INSN) as f64 / 1000.0;
                let _ = write!(out, ",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us}");
            }
            _ => {
                let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us}");
            }
        }
        let _ = write!(
            out,
            ",\"args\":{{\"seq\":{},\"a\":{},\"b\":{},\"c\":{},\"d\":{}",
            ev.seq, ev.a, ev.b, ev.c, ev.d
        );
        if ev.len > 0 {
            out.push_str(",\"payload\":\"");
            push_payload_hex(&mut out, ev);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape() {
        let mut span = TraceEvent::new(EventKind::HookSpan, 2000, 3, 7, 1, 10, 100);
        span.seq = 1;
        let mut inst = TraceEvent::new(EventKind::LockAcquired, 1000, 0, 7, 42, 0, 0);
        inst.set_payload(&[0xde, 0xad]);
        let json = to_chrome_json(&[inst, span]);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"lock_acquired\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"payload\":\"dead\""));
        assert!(json.contains("\"name\":\"hook_span\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":0.02"));
        // Two objects, comma-separated.
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }
}
