//! Per-CPU, lock-free, fixed-capacity trace rings.
//!
//! Modeled on the kernel's bpf ringbuf / ftrace per-CPU buffers: writers
//! never block each other across CPUs (each virtual CPU hashes to its own
//! ring), and within a ring publication is wait-free in the common case —
//! a `fetch_add` claims a position, word-sized relaxed stores fill the
//! slot, and one release store publishes it. Readers validate each slot
//! with a seqlock protocol, so a record is either observed whole or not
//! at all (no torn reads), and overwrite-oldest drops are *counted*, not
//! silent.
//!
//! Slot state encoding, ftrace-style: a slot last claimed for ring
//! position `p` holds `2p+1` while the writer is mid-copy and `2p+2` once
//! the record is complete. States only ever increase, so a reader that
//! saw `2p+2` before and after its copy knows the copy is position `p`'s
//! record, untorn.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{TraceEvent, EVENT_WORDS};

/// Events per ring. Must be a power of two.
pub const RING_CAPACITY: usize = 512;

/// Number of rings in a [`Plane`]; virtual CPUs hash onto these.
pub const NR_RINGS: usize = 32;

struct Slot {
    /// `0` = never written; `2p+1` = writer for position `p` mid-copy;
    /// `2p+2` = position `p`'s record complete.
    state: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            state: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; EVENT_WORDS],
        }
    }
}

/// One single-CPU trace ring. Multi-producer (any thread may emit into
/// any ring), single-logical-consumer (the drain cursor is mutex-guarded).
pub struct Ring {
    slots: Box<[Slot]>,
    /// Next position to claim; also the per-ring sequence number source.
    head: AtomicU64,
    /// Next position the consumer will read.
    cursor: Mutex<u64>,
    /// Records lost: overwritten before the consumer got to them, or
    /// skipped because a writer lapped the reader mid-copy.
    dropped: AtomicU64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring::new()
    }
}

impl Ring {
    pub fn new() -> Ring {
        Ring::with_capacity(RING_CAPACITY)
    }

    /// A ring holding `capacity` (rounded up to a power of two, min 2)
    /// records.
    pub fn with_capacity(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(2);
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, Slot::new);
        Ring {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            cursor: Mutex::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        self.slots.len() as u64 - 1
    }

    /// Publish one record. `ev.seq` is overwritten with the claimed
    /// position — the strictly increasing per-ring sequence number.
    ///
    /// Lock-free: the only loop is the claim CAS, which can retry only
    /// while a writer `RING_CAPACITY` positions behind is still mid-copy
    /// on the same slot (a full lap of lag).
    pub fn emit(&self, mut ev: TraceEvent) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        ev.seq = pos;
        let slot = &self.slots[(pos & self.mask()) as usize];
        let writing = 2 * pos + 1;
        loop {
            let s = slot.state.load(Ordering::Relaxed);
            if s >= writing {
                // A writer a full lap ahead already claimed this slot: our
                // record is stale before it was ever stored. The consumer
                // accounts the loss when its cursor passes this position,
                // so every position is counted exactly once.
                return;
            }
            if s % 2 == 1 {
                // The previous lap's writer is still copying. Rare (it
                // requires a writer asleep for a whole lap); wait it out.
                std::hint::spin_loop();
                continue;
            }
            // Acquire on the claim RMW orders it before our word stores.
            if slot
                .state
                .compare_exchange_weak(s, writing, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        for (w, v) in slot.words.iter().zip(ev.to_words()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.state.store(writing + 1, Ordering::Release);
    }

    /// Seqlock read of the slot holding position `pos`. `Some(event)` if
    /// the slot still holds exactly that position's completed record.
    fn read_pos(&self, pos: u64) -> Option<TraceEvent> {
        let slot = &self.slots[(pos & self.mask()) as usize];
        let want = 2 * pos + 2;
        if slot.state.load(Ordering::Acquire) != want {
            return None;
        }
        let mut words = [0u64; EVENT_WORDS];
        for (out, w) in words.iter_mut().zip(slot.words.iter()) {
            *out = w.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.state.load(Ordering::Relaxed) != want {
            return None;
        }
        TraceEvent::from_words(&words)
    }

    /// Consume every completed record between the cursor and the head, in
    /// position order. Records the consumer lost to wraparound are added
    /// to [`Ring::dropped_count`]. Stops early at a still-in-flight
    /// writer so the sequence stays gapless in front of it.
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let mut cursor = self.cursor.lock().unwrap();
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        if head.saturating_sub(*cursor) > cap {
            // Overwrite-oldest already ate everything below head - cap.
            self.dropped
                .fetch_add(head - cap - *cursor, Ordering::Relaxed);
            *cursor = head - cap;
        }
        while *cursor < head {
            let pos = *cursor;
            let state = self.slots[(pos & self.mask()) as usize]
                .state
                .load(Ordering::Acquire);
            if state < 2 * pos + 2 {
                // Claimed but not yet complete (or the claiming store is
                // still in flight): stop, we'll pick it up next drain.
                break;
            }
            match self.read_pos(pos) {
                Some(ev) => out.push(ev),
                // Lapped between the state check and the copy.
                None => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            *cursor += 1;
        }
    }

    /// Non-consuming flight-recorder read: the last up-to-`n` completed
    /// records still resident, oldest first. The drain cursor is not
    /// moved, so a later [`Ring::drain_into`] still sees these.
    pub fn snapshot_last_into(&self, n: usize, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let span = (n as u64).min(self.slots.len() as u64).min(head);
        let mut got = Vec::with_capacity(span as usize);
        for pos in (head - span)..head {
            if let Some(ev) = self.read_pos(pos) {
                got.push(ev);
            }
        }
        out.extend(got);
    }

    /// Records lost to overwrite-oldest so far — including positions the
    /// consumer has not caught up to yet, so a status read between drains
    /// reports losses the moment the overwrite happens, not only once a
    /// drain passes them.
    pub fn dropped_count(&self) -> u64 {
        let cursor = *self.cursor.lock().unwrap();
        let head = self.head.load(Ordering::Acquire);
        let pending = head
            .saturating_sub(self.slots.len() as u64)
            .saturating_sub(cursor);
        self.dropped.load(Ordering::Relaxed) + pending
    }

    /// Total records ever claimed (published + dropped).
    pub fn emitted_count(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }
}

/// The full plane: [`NR_RINGS`] rings, one per virtual-CPU hash bucket.
pub struct Plane {
    rings: Vec<Ring>,
}

impl Default for Plane {
    fn default() -> Self {
        Plane::new()
    }
}

impl Plane {
    pub fn new() -> Plane {
        Plane::with_capacity(RING_CAPACITY)
    }

    /// A plane whose rings each hold `capacity` records.
    pub fn with_capacity(capacity: usize) -> Plane {
        Plane {
            rings: (0..NR_RINGS)
                .map(|_| Ring::with_capacity(capacity))
                .collect(),
        }
    }

    /// The ring a virtual CPU's events land in.
    #[inline]
    pub fn ring(&self, cpu: u16) -> &Ring {
        &self.rings[usize::from(cpu) % self.rings.len()]
    }

    /// Publish one record into the emitting CPU's ring.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        self.ring(ev.cpu).emit(ev);
    }

    /// Consume all completed records, merged in `(ts_ns, cpu, seq)` order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for r in &self.rings {
            r.drain_into(&mut out);
        }
        out.sort_by_key(|e| (e.ts_ns, e.cpu, e.seq));
        out
    }

    /// Flight-recorder view: last `n` resident records across all rings,
    /// `(ts_ns, cpu, seq)`-ordered, without consuming anything.
    pub fn snapshot_last(&self, n: usize) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for r in &self.rings {
            r.snapshot_last_into(n, &mut out);
        }
        out.sort_by_key(|e| (e.ts_ns, e.cpu, e.seq));
        if out.len() > n {
            out.drain(..out.len() - n);
        }
        out
    }

    /// Total records lost across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(Ring::dropped_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64, cpu: u16, a: u64) -> TraceEvent {
        TraceEvent::new(EventKind::LockAcquired, ts, cpu, a, 0, 0, 0)
    }

    #[test]
    fn fifo_within_one_ring() {
        let r = Ring::with_capacity(8);
        for i in 0..5 {
            r.emit(ev(i, 0, i));
        }
        let mut got = Vec::new();
        r.drain_into(&mut got);
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.a, i as u64);
        }
        assert_eq!(r.dropped_count(), 0);
    }

    #[test]
    fn overwrite_oldest_counts_drops() {
        let r = Ring::with_capacity(4);
        for i in 0..10 {
            r.emit(ev(i, 0, i));
        }
        let mut got = Vec::new();
        r.drain_into(&mut got);
        // Capacity 4: only the newest 4 survive; 6 were overwritten.
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].a, 6);
        assert_eq!(r.dropped_count(), 6);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let r = Ring::with_capacity(8);
        for i in 0..6 {
            r.emit(ev(i, 0, i));
        }
        let mut snap = Vec::new();
        r.snapshot_last_into(3, &mut snap);
        assert_eq!(snap.iter().map(|e| e.a).collect::<Vec<_>>(), [3, 4, 5]);
        let mut got = Vec::new();
        r.drain_into(&mut got);
        assert_eq!(got.len(), 6, "snapshot must not move the drain cursor");
    }

    #[test]
    fn plane_merges_in_timestamp_order() {
        let p = Plane::with_capacity(16);
        p.emit(ev(30, 1, 1));
        p.emit(ev(10, 0, 2));
        p.emit(ev(20, 2, 3));
        let ts: Vec<u64> = p.drain().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, [10, 20, 30]);
    }
}
