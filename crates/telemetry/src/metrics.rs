//! Atomic metrics: counters, gauges, log2 histograms, and a registry
//! that renders them in the Prometheus text exposition format.
//!
//! [`AtomicHistogram`] uses the same power-of-two bucketing as
//! `ksim::Histogram` (bucket `k` holds values whose highest set bit is
//! `k`, with `v <= 1` in bucket 0), but records with a handful of relaxed
//! atomic RMWs instead of a mutex — this is what lets the profiler's
//! hook-path histogram updates run lock-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets; covers the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise the counter to `v` if it is currently lower (monotonic sync
    /// from an external absolute count, e.g. the plane's drop total).
    pub fn raise_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// A signed instantaneous value.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log2 histogram. Bucketing matches `ksim::Histogram`
/// exactly so a snapshot converts losslessly via
/// `ksim::Histogram::from_raw`.
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    pub const fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: the position of its highest set bit
    /// (`v <= 1` lands in bucket 0) — identical to `ksim::Histogram`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample. A handful of relaxed RMWs; no locking.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Raw parts `(buckets, count, sum, min, max)` — the argument list of
    /// `ksim::Histogram::from_raw`. Not an atomic snapshot: concurrent
    /// recorders may leave the parts one sample apart, which log2
    /// profiling tolerates by design.
    pub fn raw_parts(&self) -> ([u64; HIST_BUCKETS], u64, u64, u64, u64) {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        (buckets, self.count(), self.sum(), self.min(), self.max())
    }

    /// Reset every cell to the empty state.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A named collection of metrics rendered in the Prometheus text
/// exposition format. Handles are `Arc`s, so hot paths keep a clone and
/// never touch the registry maps again.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Get or create the log2 histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Render every metric in the Prometheus text exposition format.
    /// Histograms render cumulative `_bucket{le="..."}` series with
    /// power-of-two upper bounds, plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let (buckets, count, sum, _, _) = h.raw_parts();
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            let top = buckets
                .iter()
                .rposition(|&b| b != 0)
                .map_or(0, |i| i + 1)
                .min(HIST_BUCKETS - 1);
            for (k, b) in buckets.iter().enumerate().take(top + 1) {
                cumulative += b;
                // Bucket k holds values in [2^k, 2^(k+1)): upper bound
                // 2^(k+1)-1, except bucket 0 which also holds 0 and 1.
                let le = (1u128 << (k + 1)) - 1;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
            let _ = writeln!(out, "{name}_sum {sum}");
            let _ = writeln!(out, "{name}_count {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let r = MetricsRegistry::new();
        r.counter("c3_events_total").add(3);
        r.counter("c3_events_total").inc();
        r.gauge("c3_patches_live").set(2);
        r.gauge("c3_patches_live").add(-1);
        assert_eq!(r.counter("c3_events_total").get(), 4);
        assert_eq!(r.gauge("c3_patches_live").get(), 1);
    }

    #[test]
    fn histogram_bucketing_matches_log2() {
        let h = AtomicHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let (buckets, ..) = h.raw_parts();
        assert_eq!(buckets[0], 2); // 0, 1
        assert_eq!(buckets[1], 2); // 2, 3
        assert_eq!(buckets[2], 2); // 4, 7
        assert_eq!(buckets[3], 1); // 8
        assert_eq!(buckets[10], 1); // 1024
        assert_eq!(buckets[63], 1); // u64::MAX
    }

    #[test]
    fn prometheus_rendering() {
        let r = MetricsRegistry::new();
        r.counter("a_total").add(7);
        r.gauge("b_now").set(-2);
        let h = r.histogram("c_ns");
        h.record(1);
        h.record(5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 7\n"));
        assert!(text.contains("# TYPE b_now gauge\nb_now -2\n"));
        assert!(text.contains("c_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("c_ns_bucket{le=\"7\"} 2"));
        assert!(text.contains("c_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("c_ns_sum 6"));
        assert!(text.contains("c_ns_count 2"));
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let h = AtomicHistogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
