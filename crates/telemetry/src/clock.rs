//! The telemetry clock abstraction.
//!
//! Every trace timestamp in the system resolves through one of two
//! domains:
//!
//! * **Real** — monotonic nanoseconds since process start (the default).
//!   `locks::now_ns()` delegates here so lock hold/wait profiling and
//!   trace timestamps share one epoch.
//! * **Manual** — an externally driven value, used by the DES harness so
//!   control-plane events (livepatch apply, breaker trips) emitted while
//!   a simulation runs carry *virtual* time and the whole trace replays
//!   bit-identically for a fixed seed.
//!
//! Data-plane emit sites (lock transitions, hook spans) never read this
//! clock implicitly: the real sites pass `now_ns()` and the simulation
//! sites pass `Sim::now()` explicitly. The mode switch exists for the
//! handful of control-plane sites that have no simulation context in
//! scope.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static MANUAL_MODE: AtomicBool = AtomicBool::new(false);
static MANUAL_NS: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds in the current clock domain.
pub fn now_ns() -> u64 {
    if MANUAL_MODE.load(Ordering::Relaxed) {
        MANUAL_NS.load(Ordering::Relaxed)
    } else {
        real_now_ns()
    }
}

/// Real monotonic nanoseconds since process start, ignoring any manual
/// override. This is the epoch `locks::now_ns()` re-exports.
pub fn real_now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Switch the clock into the manual (virtual-time) domain at `ns`.
pub fn set_manual(ns: u64) {
    MANUAL_NS.store(ns, Ordering::Relaxed);
    MANUAL_MODE.store(true, Ordering::SeqCst);
}

/// Advance the manual clock (no-op on the real domain's epoch).
pub fn set_manual_now(ns: u64) {
    MANUAL_NS.store(ns, Ordering::Relaxed);
}

/// Return to the real clock domain.
pub fn clear_manual() {
    MANUAL_MODE.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let a = real_now_ns();
        let b = real_now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_overrides_and_restores() {
        set_manual(123);
        assert_eq!(now_ns(), 123);
        set_manual_now(456);
        assert_eq!(now_ns(), 456);
        clear_manual();
        // Back on the real domain: the clock advances on its own again.
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(now_ns() > a);
    }
}
