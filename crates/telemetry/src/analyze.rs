//! Contention analysis over the trace stream.
//!
//! The trace plane (PR 4) records *what happened*; this module answers
//! *who is costing whom wait time*. From a `(ts, cpu, seq)`-ordered event
//! stream the [`Analyzer`] reconstructs, per lock:
//!
//! * the **acquisition timeline** — holder segments
//!   `[lock_acquired, lock_release)` and completed waiter intervals
//!   `[lock_contended, lock_acquired)`;
//! * the **wait-for graph** — holder→waiter blocking edges with
//!   durations, chained transitively into blocking chains ("A waits on L
//!   held by B, while B waits on M held by C") and exported as
//!   flamegraph collapsed stacks;
//! * **blame attribution** — per `(lock, tenant, policy)` nanoseconds of
//!   wait *caused* (holder side) and *suffered* (waiter side). Each
//!   completed wait interval is partitioned over the lock's holder
//!   segments; time not covered by any known holder goes to a synthetic
//!   `handoff` tenant, so the conservation law
//!   `sum(caused) == total wait == sum(suffered)` holds *by construction*
//!   ([`Report::conservation_holds`]). Under ksim virtual time the
//!   timeline itself is exact, so the attribution is too;
//! * **hook-cost rollup** — per-policy dispatch calls / instructions /
//!   budget from hook-span records, so policy overhead is first-class
//!   alongside lock wait.
//!
//! **Fidelity**: the rings overwrite oldest on overrun. Per-ring sequence
//! numbers are strictly increasing, so a gap in the seq stream of one
//! ring proves records were lost; the analyzer counts gaps (plus timeline
//! anomalies and capacity truncation) and reports attribution as *exact*
//! or *lower bound* accordingly ([`Report::exact`]). The conservation law
//! still holds for the events that were seen — what degrades is coverage,
//! never consistency.
//!
//! **Clock domains**: timestamps are opaque nanoseconds. Real traces
//! carry monotonic time, sim traces carry DES virtual time; the analyzer
//! never reads a clock, so analyzing a fixed-seed sim trace is
//! byte-identical run-to-run ([`Report::stable_hash`]).
//!
//! **Tenants**: blame wants a principal coarser than a tid. The default
//! rule — the only one wired up — is `tenant == socket`, taken from the
//! `c` argument of transition records (NUMA domains are the natural
//! contention principals for a shuffle lock; `concord`'s tenant manager
//! assigns sockets to tenants the same way).
//!
//! Two modes: **offline** ([`analyze`] over a drained or saved trace) and
//! **continuous** — a bounded-memory windowed aggregator armed by one
//! atomic ([`set_continuous_armed`], same pattern as trace arming) that
//! feeds top-K contended-lock gauges into the global metrics registry on
//! every [`Continuous::step`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::{fnv64, EventKind, TraceEvent, EVENT_BYTES};
use crate::ring::NR_RINGS;

/// Synthetic tenant id charged for wait time not covered by any observed
/// holder segment (the lock was in handoff, or the holder's records were
/// outside the trace). Rendered as `handoff`.
pub const HANDOFF_TENANT: u64 = u64::MAX;

/// Fixed dispatch cost of one hook invocation when estimating hook-span
/// nanoseconds (mirrors the DES cost model in `concord::policy`).
pub const HOOK_CALL_NS: u64 = 15;

/// Estimated nanoseconds per executed policy instruction (mirrors the DES
/// cost model and the chrome-trace exporter).
pub const NS_PER_INSN: u64 = 2;

/// Maximum blocking-chain depth followed before a chain is cut off.
pub const MAX_CHAIN_DEPTH: u32 = 16;

/// Minimum simultaneous waiters for a convoy window to open.
pub const CONVOY_MIN_WAITERS: usize = 3;

/// Policy label used when no live patch matches a lock.
const UNPATCHED: &str = "(unpatched)";

/// Analysis knobs. The defaults suit offline analysis of a full trace;
/// [`Continuous`] shrinks the caps for bounded-memory windowed use.
#[derive(Clone)]
pub struct AnalyzeConfig {
    /// Lock id → human name (from a registry); unknown ids render as
    /// `lock<id>`.
    pub lock_names: BTreeMap<u64, String>,
    /// How many top contended locks the continuous mode exports as gauges.
    pub top_k: usize,
    /// Most locks tracked at once; events for further locks are dropped
    /// (counted as truncation → lower-bound attribution).
    pub max_locks: usize,
    /// Most completed wait intervals / holder segments kept per lock.
    pub max_intervals: usize,
    /// Most in-flight (pending) waits or holds tracked per lock.
    pub max_pending: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            lock_names: BTreeMap::new(),
            top_k: 5,
            max_locks: 1024,
            max_intervals: 1 << 16,
            max_pending: 4096,
        }
    }
}

impl AnalyzeConfig {
    fn lock_name(&self, id: u64) -> String {
        match self.lock_names.get(&id) {
            Some(n) => n.clone(),
            None => format!("lock{id}"),
        }
    }
}

/// Stream filter shared by the analyzer's decoding path and
/// `c3ctl trace tail --since/--lock/--event`.
#[derive(Clone, Copy, Default)]
pub struct EventFilter {
    /// Keep records with `ts_ns >= since_ns`.
    pub since_ns: Option<u64>,
    /// Keep records whose `a` argument (the lock id for lock-scoped
    /// kinds) equals this.
    pub lock: Option<u64>,
    /// Keep records of exactly this kind.
    pub kind: Option<EventKind>,
}

impl EventFilter {
    /// Does `ev` pass every set predicate?
    pub fn admits(&self, ev: &TraceEvent) -> bool {
        if let Some(s) = self.since_ns {
            if ev.ts_ns < s {
                return false;
            }
        }
        if let Some(l) = self.lock {
            if ev.a != l {
                return false;
            }
        }
        if let Some(k) = self.kind {
            if ev.kind != k {
                return false;
            }
        }
        true
    }
}

/// A saved trace failed to parse.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// The byte length is not a multiple of the record size: the file was
    /// truncated (or is not a trace).
    Truncated {
        /// Total length of the rejected input.
        len: usize,
    },
    /// A record failed to decode (unknown kind discriminant — torn write
    /// or foreign data).
    BadRecord {
        /// Zero-based record index.
        index: usize,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Truncated { len } => write!(
                f,
                "trace truncated: {len} bytes is not a multiple of the {EVENT_BYTES}-byte record"
            ),
            TraceParseError::BadRecord { index } => {
                write!(f, "trace record {index} failed to decode")
            }
        }
    }
}

/// Decode a saved trace (concatenated [`TraceEvent::to_bytes`] records,
/// the `c3ctl trace save` format).
///
/// # Errors
///
/// Rejects inputs whose length is not a whole number of records, and any
/// record with an unknown kind discriminant.
pub fn read_trace(bytes: &[u8]) -> Result<Vec<TraceEvent>, TraceParseError> {
    if !bytes.len().is_multiple_of(EVENT_BYTES) {
        return Err(TraceParseError::Truncated { len: bytes.len() });
    }
    let mut out = Vec::with_capacity(bytes.len() / EVENT_BYTES);
    for (index, chunk) in bytes.chunks_exact(EVENT_BYTES).enumerate() {
        let arr: &[u8; EVENT_BYTES] = chunk.try_into().expect("chunks_exact yields exact chunks");
        match TraceEvent::from_bytes(arr) {
            Some(ev) => out.push(ev),
            None => return Err(TraceParseError::BadRecord { index }),
        }
    }
    Ok(out)
}

/// Name of a hook-span `b` argument (the hook's activity-mask bit).
/// Mirrors `locks::hooks::HookKind::bit` — kept here because `telemetry`
/// sits below `locks` in the crate graph.
fn hook_bit_name(bit: u64) -> &'static str {
    match bit {
        1 => "cmp_node",
        2 => "skip_shuffle",
        4 => "schedule_waiter",
        8 => "lock_acquire",
        16 => "lock_contended",
        32 => "lock_acquired",
        64 => "lock_release",
        _ => "hook?",
    }
}

/// A completed waiter interval `[start_ns, end_ns)` on one lock.
#[derive(Clone, Copy)]
struct WaitInterval {
    start_ns: u64,
    end_ns: u64,
    tid: u64,
    /// Waiter's socket (the default tenant).
    socket: u64,
    /// Policy label live on the lock when the wait completed.
    policy: u32, // index into Analyzer::policy_pool
}

/// A completed holder segment `[start_ns, end_ns)` on one lock.
#[derive(Clone, Copy)]
struct HoldSegment {
    start_ns: u64,
    end_ns: u64,
    tid: u64,
    socket: u64,
}

#[derive(Clone, Copy)]
struct PendingWait {
    start_ns: u64,
    socket: u64,
}

#[derive(Clone, Copy)]
struct PendingHold {
    start_ns: u64,
    socket: u64,
}

/// Shuffler / scheduler decision counters for one lock.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// `cmp_node` evaluations.
    pub cmp_calls: u64,
    /// `cmp_node` "group" verdicts — each one moves a waiter ahead of
    /// FIFO order, i.e. one shuffle inversion.
    pub inversions: u64,
    /// `skip_shuffle` evaluations.
    pub skip_calls: u64,
    /// `skip_shuffle` "skip" verdicts.
    pub skips: u64,
    /// `schedule_waiter` evaluations.
    pub sched_calls: u64,
    /// `schedule_waiter` "may park" verdicts.
    pub parks: u64,
}

#[derive(Default)]
struct LockState {
    acquires: u64,
    contended: u64,
    acquired: u64,
    releases: u64,
    pending_wait: BTreeMap<u64, PendingWait>,
    pending_hold: BTreeMap<u64, PendingHold>,
    waits: Vec<WaitInterval>,
    holds: Vec<HoldSegment>,
    shuffle: ShuffleStats,
}

/// Aggregated dispatch cost of one `(lock, hook, policy)` cell.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct HookCost {
    /// Policy invocations.
    pub calls: u64,
    /// Executed instructions, summed.
    pub insns: u64,
    /// Estimated dispatch nanoseconds
    /// (`calls * HOOK_CALL_NS + insns * NS_PER_INSN`).
    pub est_ns: u64,
    /// Smallest remaining budget seen (how close the policy came to its
    /// instruction ceiling).
    pub min_budget: u64,
}

/// Per-lock analysis results.
#[derive(Clone, Default)]
pub struct LockReport {
    /// Human name (config-provided or `lock<id>`).
    pub name: String,
    /// `lock_acquire` transitions.
    pub acquires: u64,
    /// `lock_contended` transitions.
    pub contended: u64,
    /// `lock_acquired` transitions.
    pub acquired: u64,
    /// `lock_release` transitions.
    pub releases: u64,
    /// Completed wait intervals.
    pub completed_waits: u64,
    /// Total measured wait over completed intervals.
    pub wait_ns: u64,
    /// Total measured hold over completed segments.
    pub hold_ns: u64,
    /// Longest single completed wait.
    pub max_wait_ns: u64,
    /// Wait ns *caused*, per `(tenant, policy)`; the [`HANDOFF_TENANT`]
    /// row absorbs time with no observed holder.
    pub caused: BTreeMap<(u64, String), u64>,
    /// Wait ns *suffered*, per `(waiter tenant, policy)`.
    pub suffered: BTreeMap<(u64, String), u64>,
    /// Convoy windows (≥ [`CONVOY_MIN_WAITERS`] simultaneous waiters).
    pub convoy_windows: u64,
    /// Total ns spent inside convoy windows.
    pub convoy_ns: u64,
    /// Peak simultaneous waiters.
    pub peak_waiters: u64,
    /// Shuffler decision counters.
    pub shuffle: ShuffleStats,
}

/// The result of an analysis pass. Every collection is ordered
/// (`BTreeMap`s and sorted `Vec`s), so [`Report::render`] — and therefore
/// [`Report::stable_hash`] — is byte-identical for identical inputs.
#[derive(Clone, Default)]
pub struct Report {
    /// Per-lock results, keyed by lock id.
    pub locks: BTreeMap<u64, LockReport>,
    /// Blocking chains as flamegraph collapsed stacks: frame strings
    /// joined by `;`, weighted by nanoseconds. Total weight per lock
    /// equals that lock's `wait_ns`.
    pub chains: BTreeMap<String, u64>,
    /// Deepest blocking chain observed (1 = plain holder→waiter).
    pub max_chain_depth: u32,
    /// Dispatch-cost rollup keyed by `(lock id, hook bit, policy)`.
    pub hook_costs: BTreeMap<(u64, u64, String), HookCost>,
    /// Records analyzed.
    pub events: u64,
    /// Per-ring sequence gaps (proven ring-overwrite drops).
    pub seq_gaps: u64,
    /// Timeline anomalies (releases without holds, double transitions).
    pub anomalies: u64,
    /// Records or intervals discarded by the analyzer's own memory caps.
    pub truncated: u64,
    /// Waits still open when the stream ended (excluded from blame).
    pub open_waits: u64,
    /// Holds still open when the stream ended (excluded from blame).
    pub open_holds: u64,
}

impl Report {
    /// Is the attribution exact (no proven drops, anomalies or
    /// truncation)? When false, every figure is a lower bound.
    pub fn exact(&self) -> bool {
        self.seq_gaps == 0 && self.anomalies == 0 && self.truncated == 0
    }

    /// The conservation law: for every lock,
    /// `sum(caused) == wait_ns == sum(suffered)`. Holds by construction;
    /// exposed so gates and proptests can assert it end to end.
    pub fn conservation_holds(&self) -> bool {
        self.locks.values().all(|l| {
            let caused: u64 = l.caused.values().sum();
            let suffered: u64 = l.suffered.values().sum();
            caused == l.wait_ns && suffered == l.wait_ns
        })
    }

    /// Total measured wait across all locks.
    pub fn total_wait_ns(&self) -> u64 {
        self.locks.values().map(|l| l.wait_ns).sum()
    }

    /// FNV-1a hash of the rendered report — the seed-stability pin for
    /// sim traces.
    pub fn stable_hash(&self) -> u64 {
        fnv64(&self.render())
    }

    /// Stable human-readable rendering (integer-only: no floats, so the
    /// bytes are reproducible).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let fidelity = if self.exact() { "exact" } else { "lower-bound" };
        let _ = writeln!(
            out,
            "contention analysis: {} events, {} locks, attribution={fidelity} \
             (seq_gaps={} anomalies={} truncated={} open_waits={} open_holds={})",
            self.events,
            self.locks.len(),
            self.seq_gaps,
            self.anomalies,
            self.truncated,
            self.open_waits,
            self.open_holds,
        );
        let _ = writeln!(
            out,
            "conservation: {}",
            if self.conservation_holds() {
                "holds"
            } else {
                "VIOLATED"
            }
        );
        for (id, l) in &self.locks {
            let _ = writeln!(
                out,
                "lock {} id={id}: acquires={} contended={} acquired={} releases={} \
                 completed_waits={}",
                l.name, l.acquires, l.contended, l.acquired, l.releases, l.completed_waits
            );
            let _ = writeln!(
                out,
                "  wait={}ns hold={}ns max_wait={}ns",
                l.wait_ns, l.hold_ns, l.max_wait_ns
            );
            let _ = writeln!(
                out,
                "  convoy: windows={} peak_waiters={} ns={}",
                l.convoy_windows, l.peak_waiters, l.convoy_ns
            );
            let s = &l.shuffle;
            let _ = writeln!(
                out,
                "  shuffle: cmp={} inversions={} skips={}/{} parks={}/{}",
                s.cmp_calls, s.inversions, s.skips, s.skip_calls, s.parks, s.sched_calls
            );
            let permille =
                |v: u64| v.saturating_mul(1000).checked_div(l.wait_ns).unwrap_or(0);
            let tenant_name = |t: u64| {
                if t == HANDOFF_TENANT {
                    "handoff".to_string()
                } else {
                    t.to_string()
                }
            };
            for ((tenant, policy), ns) in &l.caused {
                let _ = writeln!(
                    out,
                    "  caused  : tenant={} policy={policy} {ns}ns ({}‰)",
                    tenant_name(*tenant),
                    permille(*ns)
                );
            }
            for ((tenant, policy), ns) in &l.suffered {
                let _ = writeln!(
                    out,
                    "  suffered: tenant={} policy={policy} {ns}ns ({}‰)",
                    tenant_name(*tenant),
                    permille(*ns)
                );
            }
        }
        if !self.hook_costs.is_empty() {
            let _ = writeln!(out, "hook costs:");
            for ((lock, bit, policy), c) in &self.hook_costs {
                let _ = writeln!(
                    out,
                    "  lock={lock} hook={} policy={policy} calls={} insns={} est_ns={} \
                     min_budget={}",
                    hook_bit_name(*bit),
                    c.calls,
                    c.insns,
                    c.est_ns,
                    c.min_budget
                );
            }
        }
        if !self.chains.is_empty() {
            let _ = writeln!(out, "blocking chains: max_depth={}", self.max_chain_depth);
            let mut rows: Vec<(&String, &u64)> = self.chains.iter().collect();
            rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (stack, ns) in rows.into_iter().take(20) {
                let _ = writeln!(out, "  {stack} {ns}ns");
            }
        }
        out
    }

    /// Top `k` locks by completed wait, `(id, name, wait_ns)`,
    /// deterministically ordered (wait desc, id asc).
    pub fn top_waits(&self, k: usize) -> Vec<(u64, String, u64)> {
        let mut rows: Vec<(u64, String, u64)> = self
            .locks
            .iter()
            .map(|(id, l)| (*id, l.name.clone(), l.wait_ns))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }
}

/// A live patch observed in the stream.
#[derive(Clone)]
struct LivePatch {
    label: String,
    since_ns: u64,
}

/// The streaming analysis engine. Feed it `(ts, cpu, seq)`-ordered
/// events ([`Analyzer::observe_all`]), then [`Analyzer::finish`] to
/// partition timelines into a [`Report`].
pub struct Analyzer {
    cfg: AnalyzeConfig,
    locks: BTreeMap<u64, LockState>,
    /// Last sequence number seen per ring bucket; gaps prove drops.
    ring_seq: [Option<u64>; NR_RINGS],
    /// Live patches keyed by label hash (from patch_apply payloads).
    live_patches: BTreeMap<u64, LivePatch>,
    /// Interned policy labels (`WaitInterval` stores an index).
    policy_pool: Vec<String>,
    hook_costs: BTreeMap<(u64, u64, String), HookCost>,
    events: u64,
    seq_gaps: u64,
    anomalies: u64,
    truncated: u64,
}

impl Analyzer {
    pub fn new(cfg: AnalyzeConfig) -> Analyzer {
        Analyzer {
            cfg,
            locks: BTreeMap::new(),
            ring_seq: [None; NR_RINGS],
            live_patches: BTreeMap::new(),
            policy_pool: vec![UNPATCHED.to_string()],
            hook_costs: BTreeMap::new(),
            events: 0,
            seq_gaps: 0,
            anomalies: 0,
            truncated: 0,
        }
    }

    fn intern_policy(&mut self, label: &str) -> u32 {
        if let Some(i) = self.policy_pool.iter().position(|p| p == label) {
            return i as u32;
        }
        self.policy_pool.push(label.to_string());
        (self.policy_pool.len() - 1) as u32
    }

    /// The policy label currently live on `lock_id`, resolved by matching
    /// live patch-label prefixes against the lock's registered name.
    /// Patch records carry only a 16-byte label prefix, so the match is
    /// prefix-tolerant in both directions; ties go to the most recent
    /// apply (then the larger hash, for determinism).
    fn policy_label(&self, lock_id: u64) -> String {
        let Some(name) = self.cfg.lock_names.get(&lock_id) else {
            return UNPATCHED.to_string();
        };
        let tag = format!("{name}/");
        let mut best: Option<(&LivePatch, u64)> = None;
        for (hash, p) in &self.live_patches {
            let matches = p.label.starts_with(&tag)
                || tag.starts_with(&p.label)
                || p.label.contains(&tag);
            if !matches {
                continue;
            }
            let better = match best {
                None => true,
                Some((b, bh)) => (p.since_ns, *hash) > (b.since_ns, bh),
            };
            if better {
                best = Some((p, *hash));
            }
        }
        match best {
            Some((p, _)) => p.label.clone(),
            None => UNPATCHED.to_string(),
        }
    }

    fn lock_state(&mut self, id: u64) -> Option<&mut LockState> {
        if !self.locks.contains_key(&id) && self.locks.len() >= self.cfg.max_locks {
            self.truncated += 1;
            return None;
        }
        Some(self.locks.entry(id).or_default())
    }

    /// Feed one record. Events must arrive in the plane's merged
    /// `(ts_ns, cpu, seq)` order for timeline reconstruction to be exact.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;

        // Per-ring drop detection: within one ring bucket the sequence is
        // gapless unless overwrite-oldest ate records.
        let bucket = usize::from(ev.cpu) % NR_RINGS;
        if let Some(last) = self.ring_seq[bucket] {
            if ev.seq > last + 1 {
                self.seq_gaps += ev.seq - last - 1;
            }
        }
        if self.ring_seq[bucket].is_none_or(|last| ev.seq > last) {
            self.ring_seq[bucket] = Some(ev.seq);
        }

        match ev.kind {
            EventKind::LockAcquire => {
                if let Some(l) = self.lock_state(ev.a) {
                    l.acquires += 1;
                }
            }
            EventKind::LockContended => {
                let cap = self.cfg.max_pending;
                let mut anomalies = 0;
                let mut truncated = 0;
                if let Some(l) = self.lock_state(ev.a) {
                    l.contended += 1;
                    if l.pending_wait.contains_key(&ev.b) {
                        // A second contended without an acquired between:
                        // the acquired record was lost.
                        anomalies += 1;
                    }
                    if l.pending_wait.len() < cap || l.pending_wait.contains_key(&ev.b) {
                        l.pending_wait.insert(
                            ev.b,
                            PendingWait {
                                start_ns: ev.ts_ns,
                                socket: ev.c,
                            },
                        );
                    } else {
                        truncated += 1;
                    }
                }
                self.anomalies += anomalies;
                self.truncated += truncated;
            }
            EventKind::LockAcquired => {
                let policy = {
                    let label = self.policy_label(ev.a);
                    self.intern_policy(&label)
                };
                let (cap_pending, cap_intervals) =
                    (self.cfg.max_pending, self.cfg.max_intervals);
                let mut anomalies = 0;
                let mut truncated = 0;
                if let Some(l) = self.lock_state(ev.a) {
                    l.acquired += 1;
                    // Close the waiter interval, if this acquisition went
                    // through the slow path.
                    if let Some(w) = l.pending_wait.remove(&ev.b) {
                        if l.waits.len() < cap_intervals {
                            l.waits.push(WaitInterval {
                                start_ns: w.start_ns,
                                end_ns: ev.ts_ns.max(w.start_ns),
                                tid: ev.b,
                                socket: w.socket,
                                policy,
                            });
                        } else {
                            truncated += 1;
                        }
                    }
                    // Open the holder segment.
                    if l.pending_hold.contains_key(&ev.b) {
                        // Double acquire without a release: the release
                        // record was lost.
                        anomalies += 1;
                    }
                    if l.pending_hold.len() < cap_pending || l.pending_hold.contains_key(&ev.b) {
                        l.pending_hold.insert(
                            ev.b,
                            PendingHold {
                                start_ns: ev.ts_ns,
                                socket: ev.c,
                            },
                        );
                    } else {
                        truncated += 1;
                    }
                }
                self.anomalies += anomalies;
                self.truncated += truncated;
            }
            EventKind::LockRelease => {
                let cap_intervals = self.cfg.max_intervals;
                let mut anomalies = 0;
                let mut truncated = 0;
                if let Some(l) = self.lock_state(ev.a) {
                    l.releases += 1;
                    match l.pending_hold.remove(&ev.b) {
                        Some(h) => {
                            if l.holds.len() < cap_intervals {
                                l.holds.push(HoldSegment {
                                    start_ns: h.start_ns,
                                    end_ns: ev.ts_ns.max(h.start_ns),
                                    tid: ev.b,
                                    socket: h.socket,
                                });
                            } else {
                                truncated += 1;
                            }
                        }
                        // Release without an observed acquire: the stream
                        // started mid-hold or the record was lost.
                        None => anomalies += 1,
                    }
                }
                self.anomalies += anomalies;
                self.truncated += truncated;
            }
            EventKind::CmpNode => {
                if let Some(l) = self.lock_state(ev.a) {
                    l.shuffle.cmp_calls += 1;
                    l.shuffle.inversions += u64::from(ev.d == 1);
                }
            }
            EventKind::SkipShuffle => {
                if let Some(l) = self.lock_state(ev.a) {
                    l.shuffle.skip_calls += 1;
                    l.shuffle.skips += u64::from(ev.d == 1);
                }
            }
            EventKind::ScheduleWaiter => {
                if let Some(l) = self.lock_state(ev.a) {
                    l.shuffle.sched_calls += 1;
                    l.shuffle.parks += u64::from(ev.d == 1);
                }
            }
            EventKind::HookSpan => {
                let policy = self.policy_label(ev.a);
                let cell = self.hook_costs.entry((ev.a, ev.b, policy)).or_default();
                cell.calls += 1;
                cell.insns += ev.c;
                cell.est_ns += HOOK_CALL_NS + ev.c * NS_PER_INSN;
                cell.min_budget = if cell.calls == 1 {
                    ev.d
                } else {
                    cell.min_budget.min(ev.d)
                };
            }
            EventKind::PatchApply => {
                let label = String::from_utf8_lossy(ev.payload_bytes()).into_owned();
                self.live_patches.insert(
                    ev.a,
                    LivePatch {
                        label,
                        since_ns: ev.ts_ns,
                    },
                );
            }
            EventKind::PatchRevert => {
                self.live_patches.remove(&ev.a);
            }
            // Control-plane records carry no timeline information.
            _ => {}
        }
    }

    /// Feed a `(ts, cpu, seq)`-ordered slice.
    pub fn observe_all(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Partition the reconstructed timelines into a [`Report`].
    pub fn finish(self) -> Report {
        let Analyzer {
            cfg,
            locks,
            hook_costs,
            events,
            seq_gaps,
            anomalies,
            truncated,
            policy_pool,
            ..
        } = self;

        let mut report = Report {
            hook_costs,
            events,
            seq_gaps,
            anomalies,
            truncated,
            ..Report::default()
        };

        // Indexes for chain reconstruction: every hold per lock, every
        // wait per tid (across locks), both time-sorted.
        let mut holds_by_lock: BTreeMap<u64, Vec<HoldSegment>> = BTreeMap::new();
        let mut waits_by_tid: BTreeMap<u64, Vec<(u64, u64, u64)>> = BTreeMap::new();
        for (id, l) in &locks {
            let mut holds = l.holds.clone();
            holds.sort_by_key(|h| (h.start_ns, h.end_ns, h.tid));
            holds_by_lock.insert(*id, holds);
            for w in &l.waits {
                waits_by_tid
                    .entry(w.tid)
                    .or_default()
                    .push((*id, w.start_ns, w.end_ns));
            }
        }
        for waits in waits_by_tid.values_mut() {
            waits.sort_unstable();
        }

        for (id, l) in locks {
            let mut lr = LockReport {
                name: cfg.lock_name(id),
                acquires: l.acquires,
                contended: l.contended,
                acquired: l.acquired,
                releases: l.releases,
                completed_waits: l.waits.len() as u64,
                shuffle: l.shuffle,
                ..LockReport::default()
            };
            report.open_waits += l.pending_wait.len() as u64;
            report.open_holds += l.pending_hold.len() as u64;

            let holds = &holds_by_lock[&id];
            lr.hold_ns = holds.iter().map(|h| h.end_ns - h.start_ns).sum();

            // Blame: partition each completed wait over the holder
            // timeline; the uncovered remainder goes to the handoff
            // tenant. covered + handoff == wait by construction.
            for w in &l.waits {
                let dur = w.end_ns - w.start_ns;
                let policy = policy_pool[w.policy as usize].clone();
                lr.wait_ns += dur;
                lr.max_wait_ns = lr.max_wait_ns.max(dur);
                *lr.suffered.entry((w.socket, policy.clone())).or_default() += dur;
                let mut cur = w.start_ns;
                for h in holds {
                    if h.end_ns <= cur {
                        continue;
                    }
                    if h.start_ns >= w.end_ns {
                        break;
                    }
                    let os = h.start_ns.max(cur);
                    let oe = h.end_ns.min(w.end_ns);
                    if oe > os {
                        if os > cur {
                            // Gap before this hold (the lock was in
                            // handoff between two holders).
                            *lr
                                .caused
                                .entry((HANDOFF_TENANT, policy.clone()))
                                .or_default() += os - cur;
                        }
                        *lr.caused.entry((h.socket, policy.clone())).or_default() += oe - os;
                        cur = oe;
                    }
                }
                if cur < w.end_ns {
                    *lr
                        .caused
                        .entry((HANDOFF_TENANT, policy.clone()))
                        .or_default() += w.end_ns - cur;
                }
            }

            // Convoy sweep: +1 at each wait start, -1 at each end; a
            // window opens when the depth crosses CONVOY_MIN_WAITERS.
            let mut edges: Vec<(u64, i64)> = Vec::with_capacity(l.waits.len() * 2);
            for w in &l.waits {
                edges.push((w.start_ns, 1));
                edges.push((w.end_ns, -1));
            }
            edges.sort_unstable();
            let mut depth: i64 = 0;
            let mut opened_at: Option<u64> = None;
            for (ts, delta) in edges {
                depth += delta;
                lr.peak_waiters = lr.peak_waiters.max(depth.max(0) as u64);
                match opened_at {
                    None if depth >= CONVOY_MIN_WAITERS as i64 => {
                        lr.convoy_windows += 1;
                        opened_at = Some(ts);
                    }
                    Some(start) if depth < CONVOY_MIN_WAITERS as i64 => {
                        lr.convoy_ns += ts - start;
                        opened_at = None;
                    }
                    _ => {}
                }
            }

            // Chains: every completed wait becomes a collapsed stack of
            // (lock@holder) frames, recursing while the holder itself
            // waits elsewhere.
            for w in &l.waits {
                let mut stack = Vec::new();
                chain_cover(
                    id,
                    w.start_ns,
                    w.end_ns,
                    0,
                    &mut stack,
                    &holds_by_lock,
                    &waits_by_tid,
                    &cfg,
                    &mut report.chains,
                    &mut report.max_chain_depth,
                );
            }

            report.locks.insert(id, lr);
        }
        report
    }
}

/// Attribute the window `[s, e)` of a wait on `lock` to blocking-chain
/// stacks, recursing into the holder's own waits. Every nanosecond of the
/// window lands in exactly one stack.
#[allow(clippy::too_many_arguments)] // internal recursion, not API
fn chain_cover(
    lock: u64,
    s: u64,
    e: u64,
    depth: u32,
    stack: &mut Vec<String>,
    holds_by_lock: &BTreeMap<u64, Vec<HoldSegment>>,
    waits_by_tid: &BTreeMap<u64, Vec<(u64, u64, u64)>>,
    cfg: &AnalyzeConfig,
    out: &mut BTreeMap<String, u64>,
    max_depth: &mut u32,
) {
    let add = |out: &mut BTreeMap<String, u64>, stack: &[String], ns: u64| {
        if ns > 0 {
            *out.entry(stack.join(";")).or_default() += ns;
        }
    };
    let name = cfg.lock_name(lock);
    let empty = Vec::new();
    let holds = holds_by_lock.get(&lock).unwrap_or(&empty);
    let mut cur = s;
    for h in holds {
        if h.end_ns <= cur {
            continue;
        }
        if h.start_ns >= e {
            break;
        }
        let os = h.start_ns.max(cur);
        let oe = h.end_ns.min(e);
        if oe <= os {
            continue;
        }
        if os > cur {
            // No observed holder for [cur, os): a handoff frame.
            stack.push(format!("{name}@handoff"));
            add(out, stack, os - cur);
            stack.pop();
        }
        stack.push(format!("{name}@tid{}", h.tid));
        *max_depth = (*max_depth).max(depth + 1);
        let mut covered_deeper = false;
        if depth + 1 < MAX_CHAIN_DEPTH {
            if let Some(wlist) = waits_by_tid.get(&h.tid) {
                let mut c2 = os;
                for (wlock, ws, we) in wlist {
                    if *wlock == lock || *we <= c2 || *ws >= oe {
                        continue;
                    }
                    let is = (*ws).max(c2);
                    let ie = (*we).min(oe);
                    if ie <= is {
                        continue;
                    }
                    add(out, stack, is - c2);
                    chain_cover(
                        *wlock,
                        is,
                        ie,
                        depth + 1,
                        stack,
                        holds_by_lock,
                        waits_by_tid,
                        cfg,
                        out,
                        max_depth,
                    );
                    c2 = ie;
                    covered_deeper = true;
                }
                if covered_deeper {
                    add(out, stack, oe - c2);
                }
            }
        }
        if !covered_deeper {
            add(out, stack, oe - os);
        }
        stack.pop();
        cur = oe;
    }
    if cur < e {
        stack.push(format!("{name}@handoff"));
        add(out, stack, e - cur);
        stack.pop();
    }
}

/// One-shot offline analysis of a `(ts, cpu, seq)`-ordered event stream.
pub fn analyze(events: &[TraceEvent], cfg: AnalyzeConfig) -> Report {
    let mut a = Analyzer::new(cfg);
    a.observe_all(events);
    a.finish()
}

// ---------------------------------------------------------------------------
// Continuous mode

static CONTINUOUS_ARMED: AtomicBool = AtomicBool::new(false);

/// Is the continuous analyzer armed? One relaxed load, same contract as
/// [`crate::armed`].
#[inline]
pub fn continuous_armed() -> bool {
    CONTINUOUS_ARMED.load(Ordering::Relaxed)
}

/// Arm or disarm the continuous analyzer. Arming alone costs nothing on
/// lock paths; windows only advance when [`Continuous::step`] is called
/// (from a control-plane thread, never from a lock path).
pub fn set_continuous_armed(on: bool) {
    CONTINUOUS_ARMED.store(on, Ordering::SeqCst);
}

/// The bounded-memory windowed aggregator behind continuous mode. Each
/// [`Continuous::step`] drains the global plane, analyzes the batch as
/// one window, publishes top-K contended-lock gauges into the global
/// metrics registry, and resets — memory use is bounded by the window's
/// caps regardless of uptime.
pub struct Continuous {
    inner: Mutex<ContinuousInner>,
}

struct ContinuousInner {
    cfg: AnalyzeConfig,
    windows: u64,
}

impl Continuous {
    fn new() -> Continuous {
        Continuous {
            inner: Mutex::new(ContinuousInner {
                cfg: AnalyzeConfig {
                    // Windowed use wants tight caps, not full-trace fidelity.
                    max_locks: 256,
                    max_intervals: 4096,
                    max_pending: 1024,
                    ..AnalyzeConfig::default()
                },
                windows: 0,
            }),
        }
    }

    /// Replace the window configuration (lock names, top-K, caps).
    pub fn configure(&self, cfg: AnalyzeConfig) {
        self.inner.lock().unwrap().cfg = cfg;
    }

    /// Advance one window if armed: drain the plane, analyze, publish
    /// gauges. Returns the window's report, or `None` when disarmed.
    pub fn step(&self) -> Option<Report> {
        if !continuous_armed() {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        let events = crate::drain();
        let report = analyze(&events, inner.cfg.clone());
        inner.windows += 1;

        let m = crate::metrics();
        m.counter("c3_analyze_windows_total").inc();
        m.counter("c3_analyze_events_total").add(report.events);
        m.gauge("c3_analyze_window_wait_ns")
            .set(report.total_wait_ns().min(i64::MAX as u64) as i64);
        m.gauge("c3_analyze_exact")
            .set(i64::from(report.exact()));
        crate::sync_dropped_counter();
        let top = report.top_waits(inner.cfg.top_k);
        for rank in 0..inner.cfg.top_k {
            let (id, wait) = top
                .get(rank)
                .map(|(id, _, w)| (*id, *w))
                .unwrap_or((0, 0));
            m.gauge(&format!("c3_analyze_top{rank}_lock_id"))
                .set(id.min(i64::MAX as u64) as i64);
            m.gauge(&format!("c3_analyze_top{rank}_wait_ns"))
                .set(wait.min(i64::MAX as u64) as i64);
        }
        Some(report)
    }

    /// Windows analyzed since process start.
    pub fn windows(&self) -> u64 {
        self.inner.lock().unwrap().windows
    }
}

/// The global continuous analyzer, created on first touch.
pub fn continuous() -> &'static Continuous {
    static C: OnceLock<Continuous> = OnceLock::new();
    C.get_or_init(Continuous::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, ts: u64, seq: u64, a: u64, b: u64, c: u64, d: u64) -> TraceEvent {
        let mut e = TraceEvent::new(kind, ts, 0, a, b, c, d);
        e.seq = seq;
        e
    }

    /// One holder (tid 1) holds [10, 50); waiter tid 2 waits [20, 50).
    fn simple_stream() -> Vec<TraceEvent> {
        vec![
            ev(EventKind::LockAcquire, 10, 0, 7, 1, 0, 0),
            ev(EventKind::LockAcquired, 10, 1, 7, 1, 0, 1),
            ev(EventKind::LockAcquire, 20, 2, 7, 2, 3, 1),
            ev(EventKind::LockContended, 20, 3, 7, 2, 3, 1),
            ev(EventKind::LockRelease, 50, 4, 7, 1, 0, 1),
            ev(EventKind::LockAcquired, 50, 5, 7, 2, 3, 2),
            ev(EventKind::LockRelease, 60, 6, 7, 2, 3, 2),
        ]
    }

    #[test]
    fn blame_conservation_simple() {
        let r = analyze(&simple_stream(), AnalyzeConfig::default());
        assert!(r.exact(), "clean stream must analyze exactly");
        assert!(r.conservation_holds());
        let l = &r.locks[&7];
        assert_eq!(l.wait_ns, 30);
        assert_eq!(l.completed_waits, 1);
        assert_eq!(l.hold_ns, 40 + 10);
        // All 30ns of wait were caused by tid 1's hold (socket/tenant 0).
        assert_eq!(l.caused[&(0, UNPATCHED.to_string())], 30);
        assert_eq!(l.suffered[&(3, UNPATCHED.to_string())], 30);
    }

    #[test]
    fn uncovered_wait_goes_to_handoff() {
        // Waiter waits [20, 60) but the holder releases at 40: 20ns of
        // the wait have no observed holder.
        let stream = vec![
            ev(EventKind::LockAcquired, 10, 0, 7, 1, 0, 1),
            ev(EventKind::LockContended, 20, 1, 7, 2, 1, 1),
            ev(EventKind::LockRelease, 40, 2, 7, 1, 0, 1),
            ev(EventKind::LockAcquired, 60, 3, 7, 2, 1, 2),
            ev(EventKind::LockRelease, 70, 4, 7, 2, 1, 2),
        ];
        let r = analyze(&stream, AnalyzeConfig::default());
        assert!(r.conservation_holds());
        let l = &r.locks[&7];
        assert_eq!(l.wait_ns, 40);
        assert_eq!(l.caused[&(0, UNPATCHED.to_string())], 20);
        assert_eq!(l.caused[&(HANDOFF_TENANT, UNPATCHED.to_string())], 20);
    }

    #[test]
    fn gap_between_two_holders_goes_to_handoff() {
        // tid2 waits [5, 60); holder tid1 covers [0, 20), tid3 covers
        // [30, 50) — the gaps [20, 30) and [50, 60) are handoff time.
        let stream = vec![
            ev(EventKind::LockAcquired, 0, 0, 7, 1, 0, 1),
            ev(EventKind::LockContended, 5, 1, 7, 2, 1, 1),
            ev(EventKind::LockRelease, 20, 2, 7, 1, 0, 1),
            ev(EventKind::LockAcquired, 30, 3, 7, 3, 2, 3),
            ev(EventKind::LockRelease, 50, 4, 7, 3, 2, 3),
            ev(EventKind::LockAcquired, 60, 5, 7, 2, 1, 2),
            ev(EventKind::LockRelease, 65, 6, 7, 2, 1, 2),
        ];
        let r = analyze(&stream, AnalyzeConfig::default());
        assert!(r.conservation_holds());
        let l = &r.locks[&7];
        assert_eq!(l.wait_ns, 55);
        assert_eq!(l.caused[&(0, UNPATCHED.to_string())], 15); // [5, 20)
        assert_eq!(l.caused[&(2, UNPATCHED.to_string())], 20); // [30, 50)
        assert_eq!(l.caused[&(HANDOFF_TENANT, UNPATCHED.to_string())], 20);
    }

    #[test]
    fn seq_gap_flags_lower_bound() {
        let mut stream = simple_stream();
        stream[3].seq = 9; // A gap of 6 records on ring 0.
        for e in &mut stream[4..] {
            e.seq += 6;
        }
        let r = analyze(&stream, AnalyzeConfig::default());
        assert_eq!(r.seq_gaps, 6);
        assert!(!r.exact());
        assert!(r.conservation_holds(), "law must survive drops");
    }

    #[test]
    fn release_without_hold_is_an_anomaly_not_a_panic() {
        let stream = vec![ev(EventKind::LockRelease, 5, 0, 7, 1, 0, 0)];
        let r = analyze(&stream, AnalyzeConfig::default());
        assert_eq!(r.anomalies, 1);
        assert!(!r.exact());
    }

    #[test]
    fn chains_cover_total_wait() {
        // tid3 waits on lock 8 held by tid2, while tid2 waits on lock 7
        // held by tid1 — a depth-2 chain.
        let stream = vec![
            ev(EventKind::LockAcquired, 0, 0, 7, 1, 0, 1),
            ev(EventKind::LockAcquired, 0, 1, 8, 2, 0, 2),
            ev(EventKind::LockContended, 10, 2, 7, 2, 0, 1),
            ev(EventKind::LockContended, 10, 3, 8, 3, 0, 2),
            ev(EventKind::LockRelease, 40, 4, 7, 1, 0, 1),
            ev(EventKind::LockAcquired, 40, 5, 7, 2, 0, 2),
            ev(EventKind::LockRelease, 50, 6, 8, 2, 0, 2),
            ev(EventKind::LockAcquired, 50, 7, 8, 3, 0, 3),
            ev(EventKind::LockRelease, 55, 8, 7, 2, 0, 2),
            ev(EventKind::LockRelease, 60, 9, 8, 3, 0, 3),
        ];
        let r = analyze(&stream, AnalyzeConfig::default());
        assert!(r.conservation_holds());
        assert_eq!(r.max_chain_depth, 2);
        // Chain weights partition the total wait exactly.
        let chain_ns: u64 = r.chains.values().sum();
        assert_eq!(chain_ns, r.total_wait_ns());
        assert!(
            r.chains.keys().any(|k| k == "lock8@tid2;lock7@tid1"),
            "expected transitive chain, got {:?}",
            r.chains.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn convoy_detection() {
        // Three waiters overlap on [30, 40).
        let mut stream = vec![ev(EventKind::LockAcquired, 0, 0, 7, 1, 0, 1)];
        for (i, start) in [(2u64, 10u64), (3, 20), (4, 30)] {
            stream.push(ev(EventKind::LockContended, start, i, 7, i, 0, 1));
        }
        stream.push(ev(EventKind::LockRelease, 40, 5, 7, 1, 0, 1));
        for (i, (tid, ts)) in [(2u64, 40u64), (3, 45), (4, 50)].iter().enumerate() {
            stream.push(ev(EventKind::LockAcquired, *ts, 6 + i as u64 * 2, 7, *tid, 0, 0));
            stream.push(ev(
                EventKind::LockRelease,
                *ts + 2,
                7 + i as u64 * 2,
                7,
                *tid,
                0,
                0,
            ));
        }
        let r = analyze(&stream, AnalyzeConfig::default());
        let l = &r.locks[&7];
        assert_eq!(l.peak_waiters, 3);
        assert_eq!(l.convoy_windows, 1);
        assert_eq!(l.convoy_ns, 10); // [30, 40)
    }

    #[test]
    fn hook_cost_rollup() {
        let stream = vec![
            ev(EventKind::HookSpan, 10, 0, 7, 1, 10, 100),
            ev(EventKind::HookSpan, 20, 1, 7, 1, 20, 80),
        ];
        let r = analyze(&stream, AnalyzeConfig::default());
        let c = &r.hook_costs[&(7, 1, UNPATCHED.to_string())];
        assert_eq!(c.calls, 2);
        assert_eq!(c.insns, 30);
        assert_eq!(c.est_ns, 2 * HOOK_CALL_NS + 30 * NS_PER_INSN);
        assert_eq!(c.min_budget, 80);
    }

    #[test]
    fn policy_attribution_from_patch_events() {
        let mut cfg = AnalyzeConfig::default();
        cfg.lock_names.insert(7, "mmap_sem".to_string());
        let mut apply = ev(EventKind::PatchApply, 5, 0, fnv64("mmap_sem/cmp_node"), 1, 1, 0);
        apply.set_payload(b"mmap_sem/cmp_node");
        let mut stream = vec![apply];
        stream.extend(simple_stream().into_iter().map(|mut e| {
            e.seq += 1;
            e
        }));
        let r = analyze(&stream, cfg);
        let l = &r.locks[&7];
        let key = l.caused.keys().next().unwrap();
        assert!(
            key.1.starts_with("mmap_sem/"),
            "blame should carry the live patch label, got {:?}",
            key.1
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let stream = simple_stream();
        let a = analyze(&stream, AnalyzeConfig::default());
        let b = analyze(&stream, AnalyzeConfig::default());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn caps_truncate_instead_of_growing() {
        let cfg = AnalyzeConfig {
            max_locks: 1,
            ..AnalyzeConfig::default()
        };
        let stream = vec![
            ev(EventKind::LockAcquire, 1, 0, 7, 1, 0, 0),
            ev(EventKind::LockAcquire, 2, 1, 8, 1, 0, 0),
        ];
        let r = analyze(&stream, cfg);
        assert_eq!(r.locks.len(), 1);
        assert!(r.truncated > 0);
        assert!(!r.exact());
    }

    #[test]
    fn filter_predicates() {
        let e = ev(EventKind::LockAcquired, 100, 0, 7, 1, 0, 0);
        assert!(EventFilter::default().admits(&e));
        assert!(!EventFilter {
            since_ns: Some(101),
            ..Default::default()
        }
        .admits(&e));
        assert!(!EventFilter {
            lock: Some(8),
            ..Default::default()
        }
        .admits(&e));
        assert!(EventFilter {
            kind: Some(EventKind::LockAcquired),
            ..Default::default()
        }
        .admits(&e));
    }

    #[test]
    fn read_trace_roundtrip_and_truncation() {
        let stream = simple_stream();
        let mut bytes = Vec::new();
        for e in &stream {
            bytes.extend_from_slice(&e.to_bytes());
        }
        assert_eq!(read_trace(&bytes).unwrap(), stream);
        assert_eq!(
            read_trace(&bytes[..bytes.len() - 1]),
            Err(TraceParseError::Truncated {
                len: bytes.len() - 1
            })
        );
        bytes[6 * 8] = 0xff; // Corrupt record 0's kind word.
        assert_eq!(
            read_trace(&bytes),
            Err(TraceParseError::BadRecord { index: 0 })
        );
    }
}
