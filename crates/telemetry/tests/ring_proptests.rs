//! Property tests for the telemetry plane's per-CPU rings and the
//! record wire format:
//!
//! * concurrent multi-producer emit racing a concurrent drainer yields
//!   no torn records — every drained record satisfies an internal
//!   checksum tying all of its words together;
//! * sequence numbers come out strictly increasing per ring;
//! * overwrite-oldest losses are *counted*: after quiescence,
//!   `drained + dropped == emitted`, exactly;
//! * `TraceEvent -> binary -> decode -> chrome JSON` round-trips.

use proptest::prelude::*;
use proptest::collection::vec;
use proptest::test_runner::ProptestConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use telemetry::event::{EventKind, TraceEvent, MAX_PAYLOAD};
use telemetry::export::to_chrome_json;
use telemetry::ring::{Plane, Ring};

/// Build a record whose words are all derived from one seed value, so a
/// torn read (words from two different records) is detectable.
fn sealed_event(x: u64, ts: u64, cpu: u16) -> TraceEvent {
    let mut ev = TraceEvent::new(
        EventKind::PolicyEmit,
        ts,
        cpu,
        x,
        x.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        !x,
        x ^ ts,
    );
    ev.set_payload(&x.to_le_bytes());
    ev
}

/// Does a drained record satisfy `sealed_event`'s invariant?
fn sealed_ok(ev: &TraceEvent) -> bool {
    ev.b == ev.a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        && ev.c == !ev.a
        && ev.d == ev.a ^ ev.ts_ns
        && ev.payload_bytes() == &ev.a.to_le_bytes()[..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Multi-producer emit racing a live drainer: no torn records, per-
    /// ring sequence strictly increasing, and exact drop accounting once
    /// quiescent.
    #[test]
    fn concurrent_emit_vs_drain_is_untorn_and_accounted(
        producers in 2usize..=4,
        per_thread in 1u64..=300,
        cap in prop_oneof![Just(4usize), Just(16), Just(64), Just(512)],
    ) {
        let ring = Arc::new(Ring::with_capacity(cap));
        let stop = Arc::new(AtomicBool::new(false));
        let mut drained: Vec<TraceEvent> = Vec::new();

        // A drainer racing the producers.
        let drainer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    ring.drain_into(&mut got);
                    std::hint::spin_loop();
                }
                got
            })
        };

        let workers: Vec<_> = (0..producers)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let x = ((t as u64) << 32) | i;
                        ring.emit(sealed_event(x, i, t as u16));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        drained.extend(drainer.join().unwrap());
        // Producers are quiescent: one final drain empties the ring.
        ring.drain_into(&mut drained);

        for ev in &drained {
            prop_assert!(sealed_ok(ev), "torn record: {ev:?}");
        }
        let mut seqs: Vec<u64> = drained.iter().map(|e| e.seq).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        prop_assert_eq!(&seqs, &sorted, "drain must preserve ring order");
        seqs.dedup();
        prop_assert_eq!(seqs.len(), drained.len(), "duplicate sequence numbers");

        let emitted = producers as u64 * per_thread;
        prop_assert_eq!(ring.emitted_count(), emitted);
        prop_assert_eq!(
            drained.len() as u64 + ring.dropped_count(),
            emitted,
            "every emitted record must be drained or counted dropped"
        );
    }

    /// Single-threaded overwrite-oldest: the survivors are exactly the
    /// newest `capacity` records and the drop count is exact.
    #[test]
    fn overwrite_oldest_keeps_newest(
        cap in prop_oneof![Just(4usize), Just(8), Just(32)],
        extra in 0u64..200,
    ) {
        let ring = Ring::with_capacity(cap);
        let total = cap as u64 + extra;
        for i in 0..total {
            ring.emit(sealed_event(i, i, 0));
        }
        let mut got = Vec::new();
        ring.drain_into(&mut got);
        prop_assert_eq!(got.len() as u64, cap as u64);
        prop_assert_eq!(ring.dropped_count(), extra);
        for (k, ev) in got.iter().enumerate() {
            prop_assert_eq!(ev.a, extra + k as u64, "must keep the newest records");
        }
    }

    /// Wire-format and exporter round-trip: words, bytes, and the chrome
    /// JSON exporter all agree with the original record.
    #[test]
    fn event_roundtrips_to_bytes_and_chrome_json(
        kind_ix in 1u16..=16,
        seq in any::<u64>(),
        ts in 0u64..=(u64::MAX / 2),
        cpu in any::<u16>(),
        words in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        payload in vec(any::<u8>(), 0..=MAX_PAYLOAD),
    ) {
        let kind = EventKind::from_u16(kind_ix).unwrap();
        let mut ev = TraceEvent::new(kind, ts, cpu, words.0, words.1, words.2, words.3);
        ev.seq = seq;
        ev.set_payload(&payload);

        prop_assert_eq!(TraceEvent::from_words(&ev.to_words()), Some(ev));
        prop_assert_eq!(TraceEvent::from_bytes(&ev.to_bytes()), Some(ev));

        let json = to_chrome_json(&[ev]);
        let name_frag = format!("\"name\":\"{}\"", kind.name());
        let seq_frag = format!("\"seq\":{}", seq);
        let tid_frag = format!("\"tid\":{}", cpu);
        prop_assert!(json.contains(&name_frag), "missing kind name");
        prop_assert!(json.contains(&seq_frag), "missing seq");
        prop_assert!(json.contains(&tid_frag), "missing tid");
        if !payload.is_empty() {
            let hex: String = payload.iter().map(|b| format!("{b:02x}")).collect();
            prop_assert!(json.contains(&hex), "missing payload hex");
        }
    }

    /// Plane-level merge: a drain is sorted by `(ts, cpu, seq)` and per-
    /// CPU sequences stay strictly increasing.
    #[test]
    fn plane_drain_is_ordered(
        events in vec((0u64..1000, 0u16..8, any::<u64>()), 1..200),
    ) {
        let plane = Plane::with_capacity(512);
        for (ts, cpu, x) in &events {
            plane.emit(sealed_event(*x, *ts, *cpu));
        }
        let got = plane.drain();
        prop_assert_eq!(got.len(), events.len());
        for w in got.windows(2) {
            let ka = (w[0].ts_ns, w[0].cpu, w[0].seq);
            let kb = (w[1].ts_ns, w[1].cpu, w[1].seq);
            prop_assert!(ka <= kb, "drain out of order: {ka:?} > {kb:?}");
        }
        for ev in &got {
            prop_assert!(sealed_ok(ev));
        }
    }
}
