//! Property tests for the contention analyzer:
//!
//! * the **blame conservation law** holds on randomized (but physically
//!   consistent) lock timelines: per lock, caused == measured wait ==
//!   suffered, and a lossless stream analyzes as *exact*;
//! * **drop tolerance**: deleting arbitrary records never panics, never
//!   breaks conservation over the surviving events, and the per-ring
//!   seq-gap count equals exactly the number of interior records lost;
//! * **determinism**: analyzing the same stream twice renders
//!   byte-identical reports with equal stable hashes.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use telemetry::analyze::{analyze, AnalyzeConfig};
use telemetry::{EventKind, TraceEvent};

/// One generated acquisition on one lock.
#[derive(Debug, Clone)]
struct GenOp {
    tid_idx: u8,
    /// How long before the current holder's release this waiter arrives
    /// (0 = uncontended fast path).
    arrive_early: u64,
    hold_ns: u64,
    gap_ns: u64,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    (0u8..6, 0u64..80, 1u64..100, 0u64..40).prop_map(|(tid_idx, arrive_early, hold_ns, gap_ns)| {
        GenOp {
            tid_idx,
            arrive_early,
            hold_ns,
            gap_ns,
        }
    })
}

/// Expand per-lock op lists into a physically consistent event stream:
/// serialized critical sections per lock, waiters arriving during the
/// previous hold, per-CPU ring sequence numbers assigned in merged
/// `(ts, cpu)` order exactly as the plane would produce them.
fn build_stream(locks: &[(u64, Vec<GenOp>)]) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    let mut op_no = 0u64;
    for (lock, ops) in locks {
        let mut t = 1u64;
        for op in ops {
            // A waiter with a large `arrive_early` can overlap not just the
            // previous hold but earlier waits too; globally unique tids keep
            // every pending wait distinct (the tid_idx still steers socket
            // and cpu variety below).
            let tid = op_no * 8 + u64::from(op.tid_idx) + 1;
            op_no += 1;
            let socket = tid % 2;
            let cpu = (tid % 4) as u16;
            let arrival = t.saturating_sub(op.arrive_early).max(1);
            events.push(TraceEvent::new(
                EventKind::LockAcquire,
                arrival,
                cpu,
                *lock,
                tid,
                socket,
                0,
            ));
            if arrival < t {
                events.push(TraceEvent::new(
                    EventKind::LockContended,
                    arrival,
                    cpu,
                    *lock,
                    tid,
                    socket,
                    0,
                ));
            }
            events.push(TraceEvent::new(
                EventKind::LockAcquired,
                t,
                cpu,
                *lock,
                tid,
                socket,
                tid,
            ));
            let release = t + op.hold_ns;
            events.push(TraceEvent::new(
                EventKind::LockRelease,
                release,
                cpu,
                *lock,
                tid,
                socket,
                tid,
            ));
            // +1 keeps consecutive critical sections off the same instant.
            t = release + op.gap_ns + 1;
        }
    }
    // The plane drains in (ts, cpu, seq) order with per-ring gapless
    // sequence numbers; reproduce that exactly.
    events.sort_by_key(|e| (e.ts_ns, e.cpu));
    let mut next_seq: BTreeMap<u16, u64> = BTreeMap::new();
    for e in &mut events {
        let seq = next_seq.entry(e.cpu).or_insert(0);
        e.seq = *seq;
        *seq += 1;
    }
    events
}

fn locks_strategy() -> impl Strategy<Value = Vec<(u64, Vec<GenOp>)>> {
    vec((1u64..4, vec(op_strategy(), 1..40)), 1..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation on lossless randomized timelines, and exactness.
    #[test]
    fn conservation_holds_and_lossless_is_exact(locks in locks_strategy()) {
        let stream = build_stream(&locks);
        let r = analyze(&stream, AnalyzeConfig::default());
        prop_assert!(r.conservation_holds(), "law violated:\n{}", r.render());
        prop_assert!(r.exact(), "lossless stream not exact:\n{}", r.render());
        // Chain stacks partition the same total the blame does.
        let chain_ns: u64 = r.chains.values().sum();
        prop_assert_eq!(chain_ns, r.total_wait_ns());
    }

    /// Deleting arbitrary records: no panic, conservation still holds on
    /// what survives, and the seq-gap count is exactly the number of
    /// interior (non-prefix, non-suffix) records lost per ring.
    #[test]
    fn drop_tolerance(
        locks in locks_strategy(),
        drop_mask in vec(any::<bool>(), 0..512),
    ) {
        let full = build_stream(&locks);
        let survivors: Vec<TraceEvent> = full
            .iter()
            .enumerate()
            .filter(|(i, _)| !drop_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, e)| *e)
            .collect();
        let r = analyze(&survivors, AnalyzeConfig::default());
        prop_assert!(
            r.conservation_holds(),
            "law must survive drops:\n{}",
            r.render()
        );
        // Expected gaps: per ring, sum of (seq deltas - 1) between
        // surviving neighbors. Prefix loss is invisible by design.
        let mut expected = 0u64;
        let mut last: BTreeMap<u16, u64> = BTreeMap::new();
        for e in &survivors {
            if let Some(prev) = last.get(&e.cpu) {
                expected += e.seq - prev - 1;
            }
            last.insert(e.cpu, e.seq);
        }
        prop_assert_eq!(r.seq_gaps, expected);
        if expected > 0 {
            prop_assert!(!r.exact(), "gaps must flag lower-bound attribution");
        }
    }

    /// Same stream, same bytes: render and stable hash are deterministic.
    #[test]
    fn analysis_is_deterministic(locks in locks_strategy()) {
        let stream = build_stream(&locks);
        let a = analyze(&stream, AnalyzeConfig::default());
        let b = analyze(&stream, AnalyzeConfig::default());
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(a.stable_hash(), b.stable_hash());
    }
}
