//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5), plus the §3 use-case ablations.
//!
//! Each figure binary sweeps thread counts on the simulated 8-socket,
//! 80-core machine and emits a markdown table plus a CSV under `results/`.
//! See `EXPERIMENTS.md` for the index and the paper-vs-measured record.
//!
//! | Binary               | Paper artifact |
//! |----------------------|----------------|
//! | `fig2a_page_fault2`  | Fig. 2(a): Stock vs BRAVO vs Concord-BRAVO |
//! | `fig2b_lock2`        | Fig. 2(b): Stock vs ShflLock vs Concord-ShflLock |
//! | `fig2c_hashtable`    | Fig. 2(c): normalized Concord-ShflLock overhead |
//! | `table1_api_hazards` | Table 1: per-hook cost + hazard demonstration |
//! | `usecases`           | §3 use cases: inheritance, priority, SCL, AMP, parking, profiling |

pub mod hashtable;
pub mod report;
pub mod sweep;
pub mod workloads;

/// Thread counts swept by the figures, matching the paper's x-axis.
pub const SWEEP: &[u32] = &[1, 2, 4, 8, 10, 20, 30, 40, 50, 60, 70, 80];

/// Thread counts to actually sweep: `C3_BENCH_THREADS` (comma-separated)
/// overrides the paper's x-axis, e.g. `C3_BENCH_THREADS=8` for a smoke
/// run regenerating one point per figure (`scripts/smoke.sh`).
pub fn sweep_threads() -> Vec<u32> {
    match std::env::var("C3_BENCH_THREADS") {
        Ok(s) => {
            let v: Vec<u32> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            assert!(!v.is_empty(), "C3_BENCH_THREADS has no valid thread counts");
            v
        }
        Err(_) => SWEEP.to_vec(),
    }
}

/// Virtual milliseconds each configuration runs for.
///
/// `C3_BENCH_WINDOW_MS` pins the window directly (smoke mode);
/// otherwise `C3_BENCH_MODE=full` lengthens runs for smoother curves and
/// the default keeps a full figure under a few minutes on a small host.
pub fn run_window_ms() -> u64 {
    if let Ok(ms) = std::env::var("C3_BENCH_WINDOW_MS") {
        if let Ok(v) = ms.parse::<u64>() {
            return v.max(1);
        }
    }
    match std::env::var("C3_BENCH_MODE").as_deref() {
        Ok("full") => 8,
        _ => 3,
    }
}
