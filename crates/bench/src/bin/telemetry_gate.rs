//! Telemetry-overhead regression gate, run by `scripts/ci.sh`.
//!
//! The trace plane's contract has two halves:
//!
//! * **disarmed** it costs one relaxed atomic load per emit site, so the
//!   Fig. 2(c) no-op worst case must stay within the 5% budget of the
//!   committed figure;
//! * **armed** it records on the *host* and charges zero simulated
//!   nanoseconds, so arming cannot move a figure at all — the committed
//!   CSVs are byte-identical whichever way the plane is switched.
//!
//! This gate re-runs the Fig. 2(c) worst case (Concord no-op policy, the
//! paper's overhead scenario) disarmed and armed on the same seeds and
//! fails if the virtual throughput diverges by more than the budget; the
//! DES being deterministic, any divergence at all means an emit site
//! started charging virtual time. Host-side cost of arming is printed
//! for the record.
//!
//! Skip with `C3_BENCH_GATE=0` (the knob shared with `bench_gate`).

use std::time::Instant;

use c3_bench::workloads::{run_hashtable, HtSeries};

/// The committed figures' window (`run_window_ms()` default × 1e6).
const WINDOW_NS: u64 = 3_000_000;
const THREADS: u32 = 8;
/// The figure binaries' seed-averaging set.
const SEEDS: [u64; 3] = [42, 43, 44];
/// Minimum disarmed/armed normalized throughput. Virtual time should be
/// bit-identical; the floor is the ISSUE budget and exists so the gate
/// message documents it.
const FLOOR: f64 = 0.95;

/// Seed-averaged virtual throughput (ops/ms) plus host wall-clock (ns).
fn run_noop_worst_case() -> (f64, f64) {
    let start = Instant::now();
    let mut total = 0.0;
    for sd in SEEDS {
        total += run_hashtable(THREADS, HtSeries::ConcordNoop, WINDOW_NS, sd);
    }
    (
        total / SEEDS.len() as f64,
        start.elapsed().as_nanos() as f64,
    )
}

fn main() {
    if std::env::var("C3_BENCH_GATE").as_deref() == Ok("0") {
        println!("telemetry_gate: skipped (C3_BENCH_GATE=0)");
        return;
    }

    telemetry::set_armed(false);
    let (tp_off, host_off) = run_noop_worst_case();
    telemetry::set_armed(true);
    let (tp_on, host_on) = run_noop_worst_case();
    telemetry::set_armed(false);
    let captured = telemetry::drain().len();
    let dropped = telemetry::dropped();

    let norm = tp_off / tp_on.max(f64::MIN_POSITIVE);
    println!(
        "telemetry_gate: fig2c no-op worst case ({THREADS} threads) — disarmed {tp_off:.4} \
         ops/ms, armed {tp_on:.4} ops/ms, normalized {norm:.4} (floor {FLOOR}); \
         armed host cost {:.2}x, {captured} events captured, {dropped} dropped",
        host_on / host_off.max(f64::MIN_POSITIVE)
    );
    if tp_off != tp_on {
        eprintln!(
            "telemetry_gate: FAIL — arming the trace plane moved virtual throughput \
             ({tp_off:.4} vs {tp_on:.4}); an emit site is charging simulated time and \
             the committed figure CSVs are no longer byte-identical when disarmed"
        );
        std::process::exit(1);
    }
    if norm < FLOOR {
        eprintln!("telemetry_gate: FAIL — normalized throughput {norm:.4} below floor {FLOOR}");
        std::process::exit(1);
    }
    println!("telemetry_gate: OK");
}
