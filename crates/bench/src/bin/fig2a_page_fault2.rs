//! Regenerates Fig. 2(a): will-it-scale `page_fault2` — Stock vs BRAVO vs
//! Concord-BRAVO, ops/msec over the thread sweep.

use c3_bench::sweep::sweep_rows;
use c3_bench::workloads::{run_page_fault2, RwSeries};
use c3_bench::{report::Report, run_window_ms, sweep_threads};

fn main() {
    let window = run_window_ms() * 1_000_000;
    let mut report = Report::new(
        "Fig. 2(a) page_fault2",
        "ops/msec",
        &["Stock", "BRAVO", "Concord-BRAVO"],
    );
    let series = [RwSeries::Stock, RwSeries::Bravo, RwSeries::ConcordBravo];
    // Average over seeds: single runs of a deterministic simulator can sit
    // on sharp transition points. Every (threads, series, seed) run is an
    // independent simulation, fanned out across the worker pool.
    let rows = sweep_rows(&sweep_threads(), series.len(), &[42, 43, 44], |n, s, sd| {
        run_page_fault2(n, series[s], window, sd)
    });
    for (n, row) in rows {
        eprintln!(
            "threads={n:<3} stock={:>10.1} bravo={:>10.1} concord-bravo={:>10.1}",
            row[0], row[1], row[2]
        );
        report.push(n, row);
    }
    println!("{}", report.to_markdown());
    match report.save_csv("fig2a_page_fault2") {
        Ok(p) => eprintln!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
