//! Regenerates Fig. 2(a): will-it-scale `page_fault2` — Stock vs BRAVO vs
//! Concord-BRAVO, ops/msec over the thread sweep.

use c3_bench::workloads::{run_page_fault2, RwSeries};
use c3_bench::{report::Report, run_window_ms, SWEEP};

fn main() {
    let window = run_window_ms() * 1_000_000;
    let mut report = Report::new(
        "Fig. 2(a) page_fault2",
        "ops/msec",
        &["Stock", "BRAVO", "Concord-BRAVO"],
    );
    for &n in SWEEP {
        let row = [RwSeries::Stock, RwSeries::Bravo, RwSeries::ConcordBravo].map(|s| {
            // Average over seeds: single runs of a deterministic simulator
            // can sit on sharp transition points.
            let seeds = [42u64, 43, 44];
            seeds
                .iter()
                .map(|&sd| run_page_fault2(n, s, window, sd))
                .sum::<f64>()
                / seeds.len() as f64
        });
        eprintln!(
            "threads={n:<3} stock={:>10.1} bravo={:>10.1} concord-bravo={:>10.1}",
            row[0], row[1], row[2]
        );
        report.push(n, row.to_vec());
    }
    println!("{}", report.to_markdown());
    match report.save_csv("fig2a_page_fault2") {
        Ok(p) => eprintln!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
