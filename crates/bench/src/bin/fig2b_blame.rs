//! Fig. 2(b) companion: contention *attribution* for the `lock2`
//! workload, printed as the blame-concentration table in
//! EXPERIMENTS.md.
//!
//! Runs the ShflLock series (compiled-in NUMA policy, then the same
//! policy as verified bytecode through Concord) with the trace plane
//! armed, analyzes the drained virtual-time trace, and reports where
//! the waiting nanoseconds came from: per-socket caused shares, the
//! handoff share, convoy pressure, and — for the Concord series —
//! the attributed hook-dispatch cost. The stock MCS series emits no
//! trace events (only the ShflLock slow path is instrumented), which
//! is itself the point: attribution needs the instrumented lock.
//!
//! The window is sized so the whole trace fits the rings losslessly
//! (the bin fails if the drop counter moves), so attribution is exact.

use c3_bench::workloads::{run_lock2, SpinSeries};
use telemetry::analyze::{analyze, HANDOFF_TENANT};
use telemetry::AnalyzeConfig;

const THREADS: u32 = 40;
const WINDOW_NS: u64 = 100_000;
const SEED: u64 = 42;

fn main() {
    for (name, series) in [
        ("ShflLock (native NUMA)", SpinSeries::ShflNuma),
        ("Concord-ShflLock (bytecode NUMA)", SpinSeries::ConcordShflNuma),
    ] {
        telemetry::drain();
        let dropped_before = telemetry::dropped();
        telemetry::set_armed(true);
        let tp = run_lock2(THREADS, series, WINDOW_NS, SEED);
        telemetry::set_armed(false);
        let events = telemetry::drain();
        assert_eq!(
            telemetry::dropped() - dropped_before,
            0,
            "fig2b_blame overflowed the rings; shrink WINDOW_NS"
        );
        let r = analyze(&events, AnalyzeConfig::default());
        assert!(r.conservation_holds(), "conservation violated");

        println!(
            "{name}: {tp:.0} ops/ms, {} events, attribution={}",
            r.events,
            if r.exact() { "exact" } else { "lower-bound" }
        );
        for (id, l) in &r.locks {
            if l.wait_ns == 0 {
                continue;
            }
            println!(
                "  lock{id}: wait={}ns over {} completed waits, convoys={} peak_waiters={}",
                l.wait_ns, l.completed_waits, l.convoy_windows, l.peak_waiters
            );
            let mut caused: Vec<_> = l.caused.iter().collect();
            caused.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            for ((tenant, policy), ns) in caused {
                let share = ns.saturating_mul(1000).checked_div(l.wait_ns).unwrap_or(0);
                let who = if *tenant == HANDOFF_TENANT {
                    "handoff ".to_string()
                } else {
                    format!("socket {tenant}")
                };
                println!("    caused by {who} policy={policy}: {ns}ns ({share}‰)");
            }
        }
        for ((lock, bit, policy), c) in &r.hook_costs {
            println!(
                "  hook cost lock{lock} bit={bit} policy={policy}: {} calls, {} insns, est {}ns",
                c.calls, c.insns, c.est_ns
            );
        }
    }
}
