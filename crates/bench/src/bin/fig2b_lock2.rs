//! Regenerates Fig. 2(b): will-it-scale `lock2` — Stock (MCS) vs ShflLock
//! (compiled-in NUMA policy) vs Concord-ShflLock (verified bytecode NUMA
//! policy), ops/msec over the thread sweep.

use c3_bench::workloads::{run_lock2, SpinSeries};
use c3_bench::{report::Report, run_window_ms, SWEEP};

fn main() {
    let window = run_window_ms() * 1_000_000;
    let mut report = Report::new(
        "Fig. 2(b) lock2",
        "ops/msec",
        &["Stock", "ShflLock", "Concord-ShflLock"],
    );
    for &n in SWEEP {
        let row = [
            SpinSeries::StockMcs,
            SpinSeries::ShflNuma,
            SpinSeries::ConcordShflNuma,
        ]
        .map(|s| {
            // Average over seeds: single runs of a deterministic simulator
            // can sit on sharp transition points.
            let seeds = [42u64, 43, 44];
            seeds
                .iter()
                .map(|&sd| run_lock2(n, s, window, sd))
                .sum::<f64>()
                / seeds.len() as f64
        });
        eprintln!(
            "threads={n:<3} stock={:>10.1} shfl={:>10.1} concord-shfl={:>10.1}",
            row[0], row[1], row[2]
        );
        report.push(n, row.to_vec());
    }
    println!("{}", report.to_markdown());
    match report.save_csv("fig2b_lock2") {
        Ok(p) => eprintln!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
