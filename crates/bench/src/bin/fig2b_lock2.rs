//! Regenerates Fig. 2(b): will-it-scale `lock2` — Stock (MCS) vs ShflLock
//! (compiled-in NUMA policy) vs Concord-ShflLock (verified bytecode NUMA
//! policy), ops/msec over the thread sweep.

use c3_bench::sweep::sweep_rows;
use c3_bench::workloads::{run_lock2, SpinSeries};
use c3_bench::{report::Report, run_window_ms, sweep_threads};

fn main() {
    let window = run_window_ms() * 1_000_000;
    let mut report = Report::new(
        "Fig. 2(b) lock2",
        "ops/msec",
        &["Stock", "ShflLock", "Concord-ShflLock"],
    );
    let series = [
        SpinSeries::StockMcs,
        SpinSeries::ShflNuma,
        SpinSeries::ConcordShflNuma,
    ];
    // Average over seeds: single runs of a deterministic simulator can sit
    // on sharp transition points. Every (threads, series, seed) run is an
    // independent simulation, fanned out across the worker pool.
    let rows = sweep_rows(&sweep_threads(), series.len(), &[42, 43, 44], |n, s, sd| {
        run_lock2(n, series[s], window, sd)
    });
    for (n, row) in rows {
        eprintln!(
            "threads={n:<3} stock={:>10.1} shfl={:>10.1} concord-shfl={:>10.1}",
            row[0], row[1], row[2]
        );
        report.push(n, row);
    }
    println!("{}", report.to_markdown());
    match report.save_csv("fig2b_lock2") {
        Ok(p) => eprintln!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
