//! Fleet control-plane gate, run by `scripts/ci.sh`.
//!
//! For every seed in `C3_FLEET_SEEDS` (comma-separated, default
//! `3,7,42`), crash-sweeps the simulated fleet world: the control-plane
//! daemon is killed at every protocol step boundary (publish broadcast,
//! lease expiry, reconcile) while the network drops, duplicates,
//! reorders and partitions, and every run must still converge all hosts
//! to the store head with zero torn applies. Each seed's sweep then
//! runs a second time and the two reports must be bit-identical,
//! pinning the deterministic-replay contract at the CI gate. The inert
//! run must additionally exercise the degraded-mode path: a partitioned
//! host keeps serving its last-known-good snapshot.
//!
//! With `--bench`, regenerates the EXPERIMENTS.md propagation table
//! instead: p50/p99 propagation latency (virtual time, commit →
//! host-applied) over the gate seeds, plus control-plane store
//! throughput at 100 k and 1 M tenants through the sharded
//! `cbpf::map`-backed tenant index.
//!
//! Skip with `C3_FLEET_GATE=0`.

use std::sync::Arc;
use std::time::Instant;

use concord::fleet::{
    fleet_sweep, run_fleet, seal_demo_artifact, Delta, FleetConfig, PolicyStore,
};
use concord::rollout::chaos::SweepReport;
use concord::rollout::ChaosPlan;

const DEFAULT_SEEDS: &[u64] = &[3, 7, 42];

fn seeds_from_env() -> Vec<u64> {
    match std::env::var("C3_FLEET_SEEDS") {
        Ok(raw) if raw.trim().is_empty() => DEFAULT_SEEDS.to_vec(),
        Ok(raw) => raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| panic!("C3_FLEET_SEEDS: bad seed {s:?}"))
            })
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn print_report(r: &SweepReport) {
    println!(
        "fleet_gate: seed {} — {} crash points, {} converged run(s), \
         baseline fingerprint {:#018x}",
        r.seed, r.crash_points, r.applied_runs, r.baseline_fingerprint
    );
}

/// One seed's gate: the inert run must converge torn-free while
/// exercising the whole failure surface, the crash sweep must converge
/// at every step, and the sweep must replay bit-identically.
fn gate_seed(seed: u64) -> bool {
    let cfg = FleetConfig::small(seed, seal_demo_artifact());

    let inert = run_fleet(&cfg, ChaosPlan::inert(seed));
    if !inert.converged || inert.torn > 0 {
        eprintln!(
            "fleet_gate: FAIL — seed {seed} inert run: converged={} torn={} \
             (head {} vs hosts {:?})",
            inert.converged, inert.torn, inert.head, inert.host_versions
        );
        return false;
    }
    if inert.degraded_serves == 0 {
        eprintln!(
            "fleet_gate: FAIL — seed {seed} inert run never served degraded \
             (partition window did not bite)"
        );
        return false;
    }

    let first = match fleet_sweep(seed, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet_gate: FAIL — seed {seed}: {e}");
            return false;
        }
    };
    print_report(&first);
    if first.applied_runs != first.crash_points + 1 {
        eprintln!(
            "fleet_gate: FAIL — seed {seed}: {} of {} runs converged",
            first.applied_runs,
            first.crash_points + 1
        );
        return false;
    }
    match fleet_sweep(seed, &cfg) {
        Ok(second) if second == first => true,
        Ok(second) => {
            eprintln!("fleet_gate: FAIL — seed {seed} replay diverged: {first:?} vs {second:?}");
            false
        }
        Err(e) => {
            eprintln!("fleet_gate: FAIL — seed {seed} replay: {e}");
            false
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Store throughput at `tenants` scale: one bulk publish binding every
/// tenant (the initial fleet bring-up), a burst of incremental
/// publishes on top (each pays the snapshot copy — the price of
/// immutable versions), and a resolve sweep through the sharded index.
fn bench_store(tenants: usize) {
    let artifact = seal_demo_artifact();
    let store = PolicyStore::new(tenants);
    let all: Vec<u64> = (0..tenants as u64).collect();

    let t = Instant::now();
    store
        .publish(&Delta::bind_all(&all, 1000, Arc::clone(&artifact)))
        .expect("bulk publish");
    let bulk = t.elapsed();

    const INCREMENTAL: usize = 8;
    let t = Instant::now();
    for i in 0..INCREMENTAL as u64 {
        store
            .publish(&Delta::bind_all(
                &[i * 17 % tenants as u64],
                2000 + i,
                Arc::clone(&artifact),
            ))
            .expect("incremental publish");
    }
    let incr = t.elapsed();

    const RESOLVES: usize = 1_000_000;
    let t = Instant::now();
    let mut hits = 0usize;
    for i in 0..RESOLVES as u64 {
        // Splitmix-striped probes so the sweep touches every shard.
        let tenant = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % tenants as u64;
        hits += usize::from(store.index().lookup(tenant).is_some());
    }
    let resolve = t.elapsed();
    assert_eq!(hits, RESOLVES, "resolve sweep missed bound tenants");

    println!(
        "| {tenants} | {} | {:.1} | {:.2} | {:.1} |",
        store.index().shard_count(),
        tenants as f64 / bulk.as_secs_f64() / 1e6,
        incr.as_secs_f64() * 1e3 / INCREMENTAL as f64,
        RESOLVES as f64 / resolve.as_secs_f64() / 1e6,
    );
}

/// `--bench`: the EXPERIMENTS.md propagation + store-throughput tables.
fn bench(seeds: &[u64]) {
    let mut samples: Vec<u64> = Vec::new();
    let mut retries = 0u64;
    let mut dedups = 0u64;
    for &seed in seeds {
        let cfg = FleetConfig::small(seed, seal_demo_artifact());
        let r = run_fleet(&cfg, ChaosPlan::inert(seed));
        assert!(r.converged, "seed {seed} did not converge");
        samples.extend_from_slice(&r.propagation_ns);
        retries += r.retries;
        dedups += r.dedup_drops;
    }
    samples.sort_unstable();
    println!(
        "propagation (lossy net, {} samples over seeds {seeds:?}): \
         p50 {:.1} µs, p99 {:.1} µs, {} retransmits, {} dedup drops",
        samples.len(),
        percentile(&samples, 0.50) as f64 / 1e3,
        percentile(&samples, 0.99) as f64 / 1e3,
        retries,
        dedups,
    );
    println!();
    println!("| tenants | shards | bulk bind (M/s) | incr publish (ms) | resolve (M/s) |");
    println!("|---|---|---|---|---|");
    bench_store(100_000);
    bench_store(1_000_000);
}

fn main() {
    if std::env::var("C3_FLEET_GATE").as_deref() == Ok("0") {
        println!("fleet_gate: skipped (C3_FLEET_GATE=0)");
        return;
    }
    let seeds = seeds_from_env();
    if std::env::args().any(|a| a == "--bench") {
        bench(&seeds);
        return;
    }
    println!("fleet_gate: sweeping seeds {seeds:?}");
    let mut failed = false;
    for &seed in &seeds {
        if !gate_seed(seed) {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("fleet_gate: OK");
}
