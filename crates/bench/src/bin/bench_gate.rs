//! Fast data-plane regression gate, run by `scripts/ci.sh`.
//!
//! Two tripwires, both on the `interp_micro` workloads:
//!
//! * `map_mix` (map lookup + null check + read-modify-write — the
//!   helper-bound case the prepared fast path exists for): the prepared
//!   interpreter must stay ≥ [`PREPARED_FLOOR`]× over the legacy
//!   interpreter.
//! * the compiled ([`cbpf::jit`]) tier must stay ≥ [`JIT_FLOOR`]× over
//!   the prepared interpreter on both `alu_chain` (dispatch-bound) and
//!   `map_mix` (helper-bound).
//!
//! Tiers are pinned with [`cbpf::ExecTier`] so the automatic hot-count
//! crossover can't silently move a row onto the wrong engine. The full
//! statistics live in the criterion benches; this is a coarse gate so
//! the wins can't silently regress.
//!
//! Skip with `C3_BENCH_GATE=0` (e.g. on loaded shared builders where
//! wall-clock ratios are noise).

use std::sync::Arc;
use std::time::Instant;

use cbpf::ctx::CtxLayout;
use cbpf::helpers::{FixedEnv, HelperId};
use cbpf::insn::{AluOp, JmpOp, MemSize, Reg};
use cbpf::interp::{run_with_budget, DEFAULT_BUDGET};
use cbpf::map::{Map, MapDef, MapKind};
use cbpf::program::{Program, ProgramBuilder};
use cbpf::ExecTier;

/// Minimum prepared-vs-legacy speedup on `map_mix`. The measured ratio
/// is ~1.5-2x; 1.3x leaves headroom for builder noise while still
/// catching a real regression (the pre-fast-path ratio was 1.04x).
const PREPARED_FLOOR: f64 = 1.3;
/// Minimum compiled-tier speedup over the prepared interpreter, per the
/// JIT tier's acceptance bar.
const JIT_FLOOR: f64 = 2.0;
const ROUNDS: usize = 9;
const ITERS: u32 = 40_000;

fn map_mix_program() -> Program {
    let map = Arc::new(Map::new(MapDef {
        name: "counters".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: 8,
    }));
    map.update(&1u32.to_le_bytes(), &0u64.to_le_bytes(), 0)
        .unwrap();
    let mut b = ProgramBuilder::new("map_mix");
    let mid = b.register_map(map);
    b.ldmap(Reg::R1, mid);
    b.store_imm(MemSize::W, Reg::R10, -4, 1);
    b.mov(Reg::R2, Reg::R10);
    b.alu_imm(AluOp::Add, Reg::R2, -4);
    b.call(HelperId::MapLookup);
    b.jmp_imm(JmpOp::Eq, Reg::R0, 0, "miss");
    b.load(MemSize::Dw, Reg::R1, Reg::R0, 0);
    b.alu_imm(AluOp::Add, Reg::R1, 1);
    b.store(MemSize::Dw, Reg::R0, 0, Reg::R1);
    b.mov_imm(Reg::R0, 1);
    b.exit();
    b.label("miss");
    b.mov_imm(Reg::R0, 0);
    b.exit();
    b.build().unwrap()
}

fn alu_chain_program() -> Program {
    let mut b = ProgramBuilder::new("alu_chain");
    b.mov_imm(Reg::R0, 1);
    b.ld_imm64(Reg::R1, 0x9e37_79b9_7f4a_7c15);
    for i in 0..20 {
        b.alu(AluOp::Add, Reg::R0, Reg::R1);
        b.alu_imm(AluOp::Xor, Reg::R0, 0x5f5f + i);
        b.alu_imm(AluOp::Lsh, Reg::R0, 7);
        b.alu32_imm(AluOp::Mul, Reg::R0, 31);
    }
    b.store(MemSize::Dw, Reg::R10, -8, Reg::R0);
    b.load(MemSize::Dw, Reg::R0, Reg::R10, -8);
    b.exit();
    b.build().unwrap()
}

/// Minimum of `ROUNDS` timings of `ITERS` back-to-back runs, in ns/run.
/// Min, not median: the gate compares both engines in their quiet
/// state, and on a shared builder preemption noise is strictly additive
/// — the minimum is the stable estimator of the undisturbed cost.
fn measure(mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..ITERS {
            run();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

/// (prepared-interpreter ns, compiled-tier ns) for one program, tiers
/// pinned.
fn tier_pair(prog: &Program, layout: &CtxLayout, env: &FixedEnv) -> (f64, f64) {
    let prepared = prog.prepare(layout);
    for _ in 0..10_000 {
        prepared
            .run_tier(ExecTier::Interp, &mut [], env, DEFAULT_BUDGET)
            .unwrap();
        prepared
            .run_tier(ExecTier::Jit, &mut [], env, DEFAULT_BUDGET)
            .unwrap();
    }
    let interp = measure(|| {
        let _ = prepared
            .run_tier(ExecTier::Interp, &mut [], env, DEFAULT_BUDGET)
            .unwrap();
    });
    let jit = measure(|| {
        let _ = prepared
            .run_tier(ExecTier::Jit, &mut [], env, DEFAULT_BUDGET)
            .unwrap();
    });
    (interp, jit)
}

fn main() {
    if std::env::var("C3_BENCH_GATE").as_deref() == Ok("0") {
        println!("bench_gate: skipped (C3_BENCH_GATE=0)");
        return;
    }

    let layout = CtxLayout::empty();
    let env = FixedEnv::new().cpu(12).numa(1);
    let mut failed = false;

    // Gate 1: prepared interpreter vs legacy on map_mix.
    let prog = map_mix_program();
    let prepared = prog.prepare(&layout);
    for _ in 0..10_000 {
        run_with_budget(&prog, &mut [], &layout, &env, DEFAULT_BUDGET).unwrap();
        prepared
            .run_tier(ExecTier::Interp, &mut [], &env, DEFAULT_BUDGET)
            .unwrap();
    }
    let legacy = measure(|| {
        let _ = run_with_budget(&prog, &mut [], &layout, &env, DEFAULT_BUDGET).unwrap();
    });
    let fast = measure(|| {
        let _ = prepared
            .run_tier(ExecTier::Interp, &mut [], &env, DEFAULT_BUDGET)
            .unwrap();
    });
    let ratio = legacy / fast;
    println!(
        "bench_gate: map_mix legacy {legacy:.1} ns/run, prepared {fast:.1} ns/run, \
         speedup {ratio:.2}x (floor {PREPARED_FLOOR}x)"
    );
    if ratio < PREPARED_FLOOR {
        eprintln!(
            "bench_gate: FAIL — prepared map_mix speedup {ratio:.2}x is below the \
             {PREPARED_FLOOR}x floor"
        );
        failed = true;
    }

    // Gate 2: compiled tier vs prepared interpreter, both workloads.
    for (name, prog) in [
        ("alu_chain", alu_chain_program()),
        ("map_mix", map_mix_program()),
    ] {
        let (interp, jit) = tier_pair(&prog, &layout, &env);
        let ratio = interp / jit;
        println!(
            "bench_gate: {name} prepared {interp:.1} ns/run, jit {jit:.1} ns/run, \
             speedup {ratio:.2}x (floor {JIT_FLOOR}x)"
        );
        if ratio < JIT_FLOOR {
            eprintln!(
                "bench_gate: FAIL — jit {name} speedup {ratio:.2}x is below the {JIT_FLOOR}x floor"
            );
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("bench_gate: OK");
}
