//! Fast data-plane regression gate, run by `scripts/ci.sh`.
//!
//! Re-runs the `map_mix` workload from `interp_micro` (map lookup + null
//! check + read-modify-write + update — the helper-bound case the
//! data-plane fast path exists for) on the legacy interpreter and the
//! optimized prepared engine, and fails loudly if the prepared speedup
//! drops below the floor. The full statistics live in the criterion
//! benches; this is a coarse tripwire so the win can't silently regress.
//!
//! Skip with `C3_BENCH_GATE=0` (e.g. on loaded shared builders where
//! wall-clock ratios are noise).

use std::sync::Arc;
use std::time::Instant;

use cbpf::ctx::CtxLayout;
use cbpf::helpers::{FixedEnv, HelperId};
use cbpf::insn::{AluOp, JmpOp, MemSize, Reg};
use cbpf::interp::{run_with_budget, DEFAULT_BUDGET};
use cbpf::map::{Map, MapDef, MapKind};
use cbpf::program::{Program, ProgramBuilder};

/// Minimum prepared-vs-legacy speedup on `map_mix`. The measured ratio
/// is ~1.5-2x; 1.3x leaves headroom for builder noise while still
/// catching a real regression (the pre-fast-path ratio was 1.04x).
const FLOOR: f64 = 1.3;
const ROUNDS: usize = 9;
const ITERS: u32 = 40_000;

fn map_mix_program() -> Program {
    let map = Arc::new(Map::new(MapDef {
        name: "counters".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: 8,
    }));
    map.update(&1u32.to_le_bytes(), &0u64.to_le_bytes(), 0)
        .unwrap();
    let mut b = ProgramBuilder::new("map_mix");
    let mid = b.register_map(map);
    b.ldmap(Reg::R1, mid);
    b.store_imm(MemSize::W, Reg::R10, -4, 1);
    b.mov(Reg::R2, Reg::R10);
    b.alu_imm(AluOp::Add, Reg::R2, -4);
    b.call(HelperId::MapLookup);
    b.jmp_imm(JmpOp::Eq, Reg::R0, 0, "miss");
    b.load(MemSize::Dw, Reg::R1, Reg::R0, 0);
    b.alu_imm(AluOp::Add, Reg::R1, 1);
    b.store(MemSize::Dw, Reg::R0, 0, Reg::R1);
    b.mov_imm(Reg::R0, 1);
    b.exit();
    b.label("miss");
    b.mov_imm(Reg::R0, 0);
    b.exit();
    b.build().unwrap()
}

/// Median of `ROUNDS` timings of `ITERS` back-to-back runs, in ns/run.
fn measure(mut run: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..ITERS {
            run();
        }
        samples.push(start.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[ROUNDS / 2]
}

fn main() {
    if std::env::var("C3_BENCH_GATE").as_deref() == Ok("0") {
        println!("bench_gate: skipped (C3_BENCH_GATE=0)");
        return;
    }

    let prog = map_mix_program();
    let layout = CtxLayout::empty();
    let env = FixedEnv::new().cpu(12).numa(1);
    let prepared = prog.prepare(&layout);

    // Warm up both engines (page in code, populate the map slab).
    for _ in 0..10_000 {
        run_with_budget(&prog, &mut [], &layout, &env, DEFAULT_BUDGET).unwrap();
        prepared.run(&mut [], &env, DEFAULT_BUDGET).unwrap();
    }

    let legacy = measure(|| {
        let _ = run_with_budget(&prog, &mut [], &layout, &env, DEFAULT_BUDGET).unwrap();
    });
    let fast = measure(|| {
        let _ = prepared.run(&mut [], &env, DEFAULT_BUDGET).unwrap();
    });
    let ratio = legacy / fast;

    println!(
        "bench_gate: map_mix legacy {legacy:.1} ns/run, prepared {fast:.1} ns/run, \
         speedup {ratio:.2}x (floor {FLOOR}x)"
    );
    if ratio < FLOOR {
        eprintln!(
            "bench_gate: FAIL — prepared map_mix speedup {ratio:.2}x is below the {FLOOR}x floor"
        );
        std::process::exit(1);
    }
    println!("bench_gate: OK");
}
