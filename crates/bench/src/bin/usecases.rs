//! Ablations for the paper's §3 use cases: each experiment compares the
//! unpatched lock against the corresponding Concord policy and reports the
//! metric the use case is about.

use std::cell::Cell;
use std::rc::Rc;

use concord::Concord;
use ksim::{CpuId, Sim, SimBuilder};
use simlocks::SimShflLock;

const WINDOW: u64 = 3_000_000;

fn sim() -> Sim {
    SimBuilder::new().seed(11).build()
}

fn attach(concord: &Concord, sim: &Sim, lock: &SimShflLock, spec: concord::PolicySpec) {
    let loaded = concord.load(spec).expect("prebuilt policy verifies");
    let policy = concord.make_sim_policy(sim, &[&loaded]);
    concord.attach_sim(lock, Rc::new(policy));
}

/// §3.1.1 Lock inheritance: task A holds L1 while queueing for L2; tasks
/// B* contend on L2 only. FIFO strands A (and therefore every L1 waiter)
/// at the back of L2's queue; the inheritance policy boosts holders.
/// Metric: mean time A needs for the L1+L2 composite operation.
fn lock_inheritance(with_policy: bool) -> f64 {
    let s = sim();
    let concord = Concord::new();
    let l1 = Rc::new(SimShflLock::new(&s));
    let l2 = Rc::new(SimShflLock::new(&s));
    if with_policy {
        attach(&concord, &s, &l2, concord::policies::lock_inheritance());
    }
    let composite_ns = Rc::new(Cell::new((0u64, 0u64))); // (sum, count)
                                                         // Task A: acquire L1, then L2, modeling `rename`-style chains.
    {
        let (a, b, c) = (Rc::clone(&l1), Rc::clone(&l2), Rc::clone(&composite_ns));
        s.spawn_on(CpuId(0), move |t| async move {
            while t.now() < WINDOW {
                let start = t.now();
                a.acquire_ctx(&t, 0, 0, 0).await;
                t.advance(200).await;
                b.acquire_ctx(&t, 0, 0, 1).await; // Declares: already holds one.
                t.advance(200).await;
                b.release(&t).await;
                a.release(&t).await;
                let (sum, n) = c.get();
                c.set((sum + (t.now() - start), n + 1));
                t.advance(500).await;
            }
        });
    }
    // Competitors hammer L2.
    for i in 1..24u32 {
        let b = Rc::clone(&l2);
        s.spawn_on(CpuId((i * 3) % 80), move |t| async move {
            while t.now() < WINDOW {
                b.acquire_ctx(&t, 0, 0, 0).await;
                t.advance(400).await;
                b.release(&t).await;
                t.advance(100 + t.rng_u64() % 400).await;
            }
        });
    }
    let stats = s.run();
    assert!(stats.stuck_tasks.is_empty());
    let (sum, n) = composite_ns.get();
    sum as f64 / n.max(1) as f64
}

/// §3.1.1 Lock priority boosting: two annotated high-priority tasks among
/// 30; metric: their mean wait per acquisition.
fn priority_boost(with_policy: bool) -> (f64, f64) {
    let s = sim();
    let concord = Concord::new();
    let lock = Rc::new(SimShflLock::new(&s));
    if with_policy {
        attach(&concord, &s, &lock, concord::policies::priority_boost());
    }
    let hi_wait = Rc::new(Cell::new((0u64, 0u64)));
    let lo_wait = Rc::new(Cell::new((0u64, 0u64)));
    for i in 0..30u32 {
        let l = Rc::clone(&lock);
        let prio = if i < 2 { 5 } else { 0 };
        let acc = if i < 2 {
            Rc::clone(&hi_wait)
        } else {
            Rc::clone(&lo_wait)
        };
        s.spawn_on(CpuId((i * 7) % 80), move |t| async move {
            while t.now() < WINDOW {
                let start = t.now();
                l.acquire_with(&t, prio, 0).await;
                acc.set((acc.get().0 + (t.now() - start), acc.get().1 + 1));
                t.advance(300).await;
                l.release(&t).await;
                t.advance(200 + t.rng_u64() % 500).await;
            }
        });
    }
    let stats = s.run();
    assert!(stats.stuck_tasks.is_empty());
    let mean = |c: &Rc<Cell<(u64, u64)>>| c.get().0 as f64 / c.get().1.max(1) as f64;
    (mean(&hi_wait), mean(&lo_wait))
}

/// §3.1.2 Scheduler subversion (SCL): half the tasks hold 8× longer.
/// Metric: throughput of the short-CS class with/without the
/// scheduler-cooperative policy.
fn scheduler_subversion(with_policy: bool) -> (u64, u64) {
    let s = sim();
    let concord = Concord::new();
    let lock = Rc::new(SimShflLock::new(&s));
    if with_policy {
        attach(
            &concord,
            &s,
            &lock,
            concord::policies::scheduler_cooperative(1_000),
        );
    }
    let short_ops = Rc::new(Cell::new(0u64));
    let long_ops = Rc::new(Cell::new(0u64));
    for i in 0..24u32 {
        let l = Rc::clone(&lock);
        let long = i % 2 == 0;
        let acc = if long {
            Rc::clone(&long_ops)
        } else {
            Rc::clone(&short_ops)
        };
        s.spawn_on(CpuId((i * 5) % 80), move |t| async move {
            let cs: u64 = if long { 2_400 } else { 300 };
            while t.now() < WINDOW {
                l.acquire_with(&t, 0, cs).await;
                t.advance(cs).await;
                l.release(&t).await;
                acc.set(acc.get() + 1);
                t.advance(150 + t.rng_u64() % 300).await;
            }
        });
    }
    let stats = s.run();
    assert!(stats.stuck_tasks.is_empty());
    (short_ops.get(), long_ops.get())
}

/// §3.1.2 AMP-aware locks: cores ≥ 40 are "efficiency" cores with 3× the
/// critical-section time. Metric: total throughput.
fn amp(with_policy: bool) -> u64 {
    let s = sim();
    let concord = Concord::new();
    let lock = Rc::new(SimShflLock::new(&s));
    if with_policy {
        attach(&concord, &s, &lock, concord::policies::amp_aware(40));
    }
    let ops = Rc::new(Cell::new(0u64));
    for i in 0..40u32 {
        let l = Rc::clone(&lock);
        let o = Rc::clone(&ops);
        let cpu = i * 2; // Half fast (cpu < 40), half slow.
        s.spawn_on(CpuId(cpu), move |t| async move {
            let cs: u64 = if cpu < 40 { 300 } else { 900 };
            while t.now() < WINDOW {
                l.acquire(&t).await;
                t.advance(cs).await;
                l.release(&t).await;
                o.set(o.get() + 1);
                t.advance(200 + t.rng_u64() % 400).await;
            }
        });
    }
    let stats = s.run();
    assert!(stats.stuck_tasks.is_empty());
    ops.get()
}

/// §3.1.1 Adaptable parking (real blocking mutex): the developer knows the
/// critical sections run ~100 µs, so a spin budget sized above that avoids
/// the park/unpark round trips entirely. Metric: park count.
fn adaptive_parking(with_policy: bool) -> u64 {
    use locks::RawLock;
    use std::sync::Arc;

    let concord = Concord::new();
    let lock = Arc::new(locks::ShflMutex::new());
    concord
        .registry()
        .register_shfl_mutex("m", Arc::clone(&lock));
    let handle = if with_policy {
        // Spin budget above the known CS length: never park.
        let loaded = concord
            .load(concord::policies::adaptive_parking(50_000_000))
            .unwrap();
        Some(concord.attach("m", &loaded).unwrap())
    } else {
        None
    };
    let mut handles = Vec::new();
    for _ in 0..3 {
        let l = Arc::clone(&lock);
        handles.push(std::thread::spawn(move || {
            for _ in 0..40 {
                let _g = l.lock();
                // ~100 µs critical section (declared via the CS hint on a
                // real deployment; fixed here).
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    if let Some(h) = handle {
        concord.detach(h).unwrap();
    }
    lock.park_count()
}

/// §3.2 Dynamic profiling granularity: profile one lock out of three and
/// show the others stay unobserved (zero overhead on them).
fn profiling_granularity() -> String {
    use concord::profiler::Profiler;
    use locks::RawLock;
    use std::sync::Arc;

    let concord = Concord::new();
    let locks: Vec<Arc<locks::ShflLock>> =
        (0..3).map(|_| Arc::new(locks::ShflLock::new())).collect();
    for (i, l) in locks.iter().enumerate() {
        concord
            .registry()
            .register_shfl(&format!("lock{i}"), Arc::clone(l));
    }
    let mut prof = Profiler::attach(&concord, &["lock1"]).unwrap();
    for _ in 0..1_000 {
        for l in &locks {
            let _g = l.lock();
        }
    }
    let report = prof.report();
    let seen = prof.profile("lock1").unwrap().counters().0;
    prof.detach(&concord).expect("profiler detaches");
    format!("profiled only lock1: saw {seen} acquisitions there, locks 0/2 unobserved\n{report}")
}

/// §3.1.2 Realtime scheduling: reader tail latency under a continuous
/// writer stream — the neutral (writer-preference) rwlock makes readers
/// wait out the whole writer queue; the phase-fair lock bounds the wait
/// to ~one writer phase. Returns (max reader wait neutral, phase-fair).
fn realtime_phase_fair() -> (u64, u64) {
    use simlocks::{SimNeutralRwLock, SimPhaseFairRwLock};

    fn run(phase_fair: bool) -> u64 {
        let s = SimBuilder::new().seed(21).build();
        enum Rw {
            Neutral(SimNeutralRwLock),
            Pf(SimPhaseFairRwLock),
        }
        let lock = Rc::new(if phase_fair {
            Rw::Pf(SimPhaseFairRwLock::new(&s))
        } else {
            Rw::Neutral(SimNeutralRwLock::new(&s))
        });
        const HOLD: u64 = 8_000;
        for i in 0..6u32 {
            let l = Rc::clone(&lock);
            s.spawn_on(CpuId(i * 10), move |t| async move {
                while t.now() < WINDOW {
                    match &*l {
                        Rw::Neutral(n) => {
                            n.write_acquire(&t).await;
                            t.advance(HOLD).await;
                            n.write_release(&t).await;
                        }
                        Rw::Pf(p) => {
                            p.write_acquire(&t).await;
                            t.advance(HOLD).await;
                            p.write_release(&t).await;
                        }
                    }
                    t.advance(500 + t.rng_u64() % 1_000).await;
                }
            });
        }
        let max_wait = Rc::new(Cell::new(0u64));
        {
            let (l, mw) = (Rc::clone(&lock), Rc::clone(&max_wait));
            s.spawn_on(CpuId(79), move |t| async move {
                while t.now() < WINDOW {
                    t.advance(12_000).await;
                    let start = t.now();
                    match &*l {
                        Rw::Neutral(n) => {
                            n.read_acquire(&t).await;
                            mw.set(mw.get().max(t.now() - start));
                            n.read_release(&t).await;
                        }
                        Rw::Pf(p) => {
                            p.read_acquire(&t).await;
                            mw.set(mw.get().max(t.now() - start));
                            p.read_release(&t).await;
                        }
                    }
                }
            });
        }
        let stats = s.run();
        assert!(stats.stuck_tasks.is_empty());
        max_wait.get()
    }
    (run(false), run(true))
}

/// §3.1.1 Exposing scheduler semantics (double scheduling): a hypervisor
/// keeps preempting vCPUs; granting the lock to a waiter on a preempted
/// vCPU stalls everyone behind it. The policy (written in C, using the
/// `cpu_online` scheduler-context helper) sinks preempted-vCPU waiters.
fn double_scheduling(with_policy: bool) -> u64 {
    let s = sim();
    let concord = Concord::new();
    let lock = Rc::new(SimShflLock::new(&s));
    if with_policy {
        attach(
            &concord,
            &s,
            &lock,
            concord::PolicySpec::from_c(
                "vcpu_aware",
                locks::hooks::HookKind::CmpNode,
                "return cpu_online(curr_cpu);",
            ),
        );
    }
    // A "hypervisor" task preempts a rotating set of vCPUs.
    {
        let hv = s.clone();
        s.spawn_on(CpuId(79), move |t| async move {
            let mut which = 0u32;
            while t.now() < WINDOW {
                // Take two vCPUs offline for 40 µs each.
                hv.preempt_cpu(CpuId(which % 24), t.now() + 40_000);
                hv.preempt_cpu(CpuId((which + 7) % 24), t.now() + 40_000);
                which += 3;
                t.advance(60_000).await;
            }
        });
    }
    let ops = Rc::new(Cell::new(0u64));
    for i in 0..24u32 {
        let (l, o) = (Rc::clone(&lock), Rc::clone(&ops));
        s.spawn_on(CpuId(i), move |t| async move {
            while t.now() < WINDOW {
                l.acquire(&t).await;
                t.advance(400).await;
                l.release(&t).await;
                o.set(o.get() + 1);
                t.advance(200 + t.rng_u64() % 400).await;
            }
        });
    }
    let stats = s.run();
    assert!(stats.stuck_tasks.is_empty());
    ops.get()
}

fn main() {
    println!("### §3 use-case ablations (simulated machine unless noted)\n");

    let base = lock_inheritance(false);
    let pol = lock_inheritance(true);
    println!("**Lock inheritance** — mean L1+L2 composite op latency:");
    println!(
        "  FIFO: {base:.0} ns   inheritance policy: {pol:.0} ns   ({:.2}× faster)\n",
        base / pol
    );

    let (hi_b, lo_b) = priority_boost(false);
    let (hi_p, lo_p) = priority_boost(true);
    println!("**Priority boosting** — mean wait per acquisition (ns):");
    println!("  FIFO:   high-prio {hi_b:.0}, normal {lo_b:.0}");
    println!(
        "  policy: high-prio {hi_p:.0}, normal {lo_p:.0}   (high-prio {:.2}× faster)\n",
        hi_b / hi_p
    );

    let (short_b, long_b) = scheduler_subversion(false);
    let (short_p, long_p) = scheduler_subversion(true);
    println!("**Scheduler subversion (SCL)** — ops by class:");
    println!("  FIFO:   short-CS {short_b}, long-CS {long_b}");
    println!(
        "  policy: short-CS {short_p}, long-CS {long_p}   (short-CS {:.2}×)\n",
        short_p as f64 / short_b as f64
    );

    let amp_b = amp(false);
    let amp_p = amp(true);
    println!("**AMP-aware locks** — total ops (half the cores 3× slower):");
    println!(
        "  FIFO: {amp_b}   fast-core-first policy: {amp_p}   ({:.2}×)\n",
        amp_p as f64 / amp_b as f64
    );

    let parks_b = adaptive_parking(false);
    let parks_p = adaptive_parking(true);
    println!("**Adaptable parking** (real threads) — parks during 120 ops with ~100 µs holds:");
    println!("  default spin-then-park: {parks_b}   tuned spin budget: {parks_p}\n");

    let ds_b = double_scheduling(false);
    let ds_p = double_scheduling(true);
    println!("**Exposing scheduler semantics (double scheduling)** — ops with a hypervisor preempting vCPUs:");
    println!(
        "  FIFO: {ds_b}   vCPU-aware policy (C source, cpu_online helper): {ds_p}   ({:.2}×)\n",
        ds_p as f64 / ds_b as f64
    );

    let (neutral_wait, pf_wait) = realtime_phase_fair();
    println!("**Realtime scheduling (phase-fair)** — max reader wait under a 6-writer stream:");
    println!(
        "  neutral rwlock: {neutral_wait} ns   phase-fair: {pf_wait} ns   ({:.1}× tighter tail)\n",
        neutral_wait as f64 / pf_wait as f64
    );

    println!("**Dynamic profiling granularity** (real threads):");
    println!("{}", profiling_granularity());
}
