//! Contention-analysis regression gate, run by `scripts/ci.sh`.
//!
//! Guards the two contracts of `telemetry::analyze`:
//!
//! * **Conservation, exactly** — on a fixed-seed ksim trace (DES virtual
//!   time, no ring overwrite) the blame partition must be *exact*: per
//!   lock, `sum(caused) == measured wait == sum(suffered)`, with zero seq
//!   gaps, anomalies, or truncation. The analysis must also be
//!   byte-identical run-to-run for the same seed — the gate runs the
//!   scenario twice and compares [`telemetry::Report::stable_hash`].
//! * **Continuous mode is free until stepped** — arming the continuous
//!   analyzer (plus the trace plane) on the Fig. 2(c) no-op worst case
//!   must not move virtual throughput at all (DES determinism) and must
//!   stay within the 5% normalized budget, same shape as
//!   `telemetry_gate`. The armed run ends with one `step()` so the gate
//!   also proves a window actually flows into the metrics registry.
//!
//! Skip with `C3_BENCH_GATE=0` (the knob shared with the other gates).

use c3_bench::workloads::{run_hashtable, HtSeries};

/// The committed figures' window (`run_window_ms()` default × 1e6).
const WINDOW_NS: u64 = 3_000_000;
const THREADS: u32 = 8;
/// The figure binaries' seed-averaging set (for the overhead half).
const SEEDS: [u64; 3] = [42, 43, 44];
/// Minimum armed/disarmed normalized throughput (the ISSUE budget).
const FLOOR: f64 = 0.95;
/// Fixed seed for the conservation scenario.
const SIM_SEED: u64 = 42;
/// Shorter window for the conservation half so the whole trace fits the
/// rings without overwrite — exactness requires a lossless trace. (At
/// 8 threads this scenario emits ~2.3k events; ring-prefix overwrite
/// starts near 4.1k.)
const CONSERVATION_WINDOW_NS: u64 = 100_000;

/// Runs the fixed-seed ksim contention scenario with the plane armed and
/// returns the analysis of the complete drained trace. Per-ring seq-gap
/// detection cannot see a ring losing its *prefix* (the first record seen
/// sets the baseline), so the gate independently asserts the plane's drop
/// counter did not move — only then is "exact" trustworthy.
fn analyzed_sim_trace() -> telemetry::Report {
    telemetry::drain(); // Start from empty rings.
    let dropped_before = telemetry::dropped();
    telemetry::set_armed(true);
    run_hashtable(THREADS, HtSeries::ConcordNoop, CONSERVATION_WINDOW_NS, SIM_SEED);
    telemetry::set_armed(false);
    let events = telemetry::drain();
    let dropped = telemetry::dropped() - dropped_before;
    if dropped != 0 {
        eprintln!(
            "profile_gate: FAIL — the conservation scenario overflowed the rings ({dropped} \
             records dropped); shrink CONSERVATION_WINDOW_NS so the trace is lossless"
        );
        std::process::exit(1);
    }
    telemetry::analyze::analyze(&events, telemetry::AnalyzeConfig::default())
}

/// Seed-averaged virtual throughput (ops/ms) of the no-op worst case.
fn run_noop_worst_case() -> f64 {
    let mut total = 0.0;
    for sd in SEEDS {
        total += run_hashtable(THREADS, HtSeries::ConcordNoop, WINDOW_NS, sd);
    }
    total / SEEDS.len() as f64
}

fn main() {
    if std::env::var("C3_BENCH_GATE").as_deref() == Ok("0") {
        println!("profile_gate: skipped (C3_BENCH_GATE=0)");
        return;
    }

    // (a) Exact conservation + deterministic analysis on the sim trace.
    let r1 = analyzed_sim_trace();
    let r2 = analyzed_sim_trace();
    println!(
        "profile_gate: ksim seed {SIM_SEED} — {} events, {} locks, wait={}ns, \
         attribution={}, hash {:#x}",
        r1.events,
        r1.locks.len(),
        r1.total_wait_ns(),
        if r1.exact() { "exact" } else { "lower-bound" },
        r1.stable_hash()
    );
    if r1.events == 0 || r1.total_wait_ns() == 0 {
        eprintln!(
            "profile_gate: FAIL — the fixed-seed scenario produced no contention to analyze \
             ({} events, {}ns wait)",
            r1.events,
            r1.total_wait_ns()
        );
        std::process::exit(1);
    }
    if !r1.exact() {
        eprintln!(
            "profile_gate: FAIL — sim-trace analysis is not exact (seq_gaps={} anomalies={} \
             truncated={}); a lossless virtual-time trace must reconstruct exactly",
            r1.seq_gaps, r1.anomalies, r1.truncated
        );
        std::process::exit(1);
    }
    if !r1.conservation_holds() {
        eprintln!(
            "profile_gate: FAIL — blame conservation violated: per-lock caused/suffered sums \
             do not equal measured wait"
        );
        std::process::exit(1);
    }
    if r1.stable_hash() != r2.stable_hash() {
        eprintln!(
            "profile_gate: FAIL — same-seed analysis is not byte-identical ({:#x} vs {:#x}); \
             something nondeterministic leaked into the report",
            r1.stable_hash(),
            r2.stable_hash()
        );
        std::process::exit(1);
    }

    // (b) Continuous-analyzer armed overhead on the fig2c worst case.
    telemetry::set_armed(false);
    telemetry::analyze::set_continuous_armed(false);
    let tp_off = run_noop_worst_case();
    telemetry::set_armed(true);
    telemetry::analyze::set_continuous_armed(true);
    let tp_on = run_noop_worst_case();
    let window = telemetry::analyze::continuous()
        .step()
        .expect("armed continuous analyzer must produce a window");
    telemetry::analyze::set_continuous_armed(false);
    telemetry::set_armed(false);

    let norm = tp_off / tp_on.max(f64::MIN_POSITIVE);
    println!(
        "profile_gate: fig2c no-op worst case ({THREADS} threads) — analyzer disarmed \
         {tp_off:.4} ops/ms, armed {tp_on:.4} ops/ms, normalized {norm:.4} (floor {FLOOR}); \
         window saw {} events across {} locks",
        window.events,
        window.locks.len()
    );
    if tp_off != tp_on {
        eprintln!(
            "profile_gate: FAIL — arming the continuous analyzer moved virtual throughput \
             ({tp_off:.4} vs {tp_on:.4}); analysis must never charge simulated time"
        );
        std::process::exit(1);
    }
    if norm < FLOOR {
        eprintln!("profile_gate: FAIL — normalized throughput {norm:.4} below floor {FLOOR}");
        std::process::exit(1);
    }
    if window.events == 0 {
        eprintln!("profile_gate: FAIL — the continuous window drained no events while armed");
        std::process::exit(1);
    }
    println!("profile_gate: OK");
}
