//! Rollout chaos-convergence gate, run by `scripts/ci.sh`.
//!
//! For every seed in `C3_CHAOS_SEEDS` (comma-separated, default
//! `3,7,42`), crash-sweeps a staged rollout over a real `Concord`
//! world: the controller is killed at every intent-log step boundary, a
//! fresh controller recovers from the write-ahead log, and every run
//! must converge fully applied or fully reverted — never a mix of
//! generations. Each seed's sweep then runs a second time and the two
//! reports must be identical, pinning the deterministic-replay
//! contract at the CI gate, not just in the test suite.
//!
//! Skip with `C3_CHAOS_GATE=0` (the chaos sweep is pure control-plane
//! work, but a loaded builder can still starve the hammer threads).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use concord::rollout::chaos::{crash_sweep, Convergence, SweepOutcome, SweepReport};
use concord::rollout::{
    AlwaysGreen, ChaosInjector, ChaosPlan, RealTarget, Rollout, RolloutError, RolloutLog,
    RolloutPlan, RolloutTarget,
};
use concord::{BreakerConfig, Concord};
use locks::hooks::HookKind;
use locks::{RawLock, ShflLock};

const GATE_LOCKS: usize = 6;
const DEFAULT_SEEDS: &[u64] = &[3, 7, 42];

/// One scenario run: fresh world, staged rollout under `plan`, recovery
/// if the controller crashed, convergence verdict.
fn scenario(plan: ChaosPlan) -> Result<SweepOutcome, RolloutError> {
    let concord = Concord::new();
    let mut handles = Vec::new();
    let mut names = Vec::new();
    for i in 0..GATE_LOCKS {
        let name = format!("gate{i}");
        let l = Arc::new(ShflLock::new());
        concord.registry().register_shfl(&name, Arc::clone(&l));
        names.push(name);
        handles.push(l);
    }
    let loaded = concord.load(concord::policies::numa_aware()).unwrap();
    let target = RealTarget::new(&concord, loaded, BreakerConfig::default());
    let log = RolloutLog::new();
    let chaos = ChaosInjector::new(plan);

    // One hammer thread on the canary so patch transactions race live
    // dispatch, as they would in production.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let l = Arc::clone(&handles[0]);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let _g = l.lock();
            }
        })
    };

    let rollout_plan = RolloutPlan::staged(1, "numa", HookKind::CmpNode, &names, &[50]);
    let run = Rollout::run(rollout_plan, &log, &target, &mut AlwaysGreen, &chaos);
    if let Err(RolloutError::Crashed(_)) = run {
        Rollout::recover(&log, &target, &ChaosInjector::inert())?;
    }
    stop.store(true, Ordering::Release);
    hammer.join().expect("hammer thread panicked");

    let live = target.applied_locks(1, &names).len();
    let converged = if live == names.len() {
        Convergence::AllApplied
    } else if live == 0 {
        Convergence::AllReverted
    } else {
        Convergence::Mixed(format!("{live}/{} locks patched", names.len()))
    };
    // Whatever happened to the rollout, the locks must still work.
    for l in &handles {
        drop(l.lock());
    }
    Ok(SweepOutcome {
        converged,
        steps: chaos.steps_taken(),
        fingerprint: log.fingerprint(),
    })
}

fn seeds_from_env() -> Vec<u64> {
    match std::env::var("C3_CHAOS_SEEDS") {
        Ok(raw) if raw.trim().is_empty() => DEFAULT_SEEDS.to_vec(),
        Ok(raw) => raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| panic!("C3_CHAOS_SEEDS: bad seed {s:?}"))
            })
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn print_report(r: &SweepReport) {
    println!(
        "chaos_gate: seed {} — {} crash points, {} applied / {} reverted, \
         baseline fingerprint {:#018x}",
        r.seed,
        r.crash_points,
        r.applied_runs,
        r.reverted_runs,
        r.baseline_fingerprint
    );
}

fn main() {
    if std::env::var("C3_CHAOS_GATE").as_deref() == Ok("0") {
        println!("chaos_gate: skipped (C3_CHAOS_GATE=0)");
        return;
    }

    let seeds = seeds_from_env();
    println!("chaos_gate: sweeping seeds {seeds:?} over {GATE_LOCKS} locks");
    let mut failed = false;
    for &seed in &seeds {
        let first = match crash_sweep(seed, scenario) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chaos_gate: FAIL — {e}");
                failed = true;
                continue;
            }
        };
        print_report(&first);
        if first.applied_runs == 0 || first.reverted_runs == 0 {
            eprintln!(
                "chaos_gate: FAIL — seed {seed} sweep did not exercise both terminal states \
                 ({} applied, {} reverted)",
                first.applied_runs, first.reverted_runs
            );
            failed = true;
            continue;
        }
        // Replay: the sweep must be reproducible run-to-run.
        match crash_sweep(seed, scenario) {
            Ok(second) if second == first => {}
            Ok(second) => {
                eprintln!(
                    "chaos_gate: FAIL — seed {seed} replay diverged: {first:?} vs {second:?}"
                );
                failed = true;
            }
            Err(e) => {
                eprintln!("chaos_gate: FAIL — seed {seed} replay: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("chaos_gate: OK");
}
