//! Scalability comparison of the full simulated lock zoo — the background
//! §2.2 story ("Locks: Past, Present, and Future?") as one sweep: TAS
//! collapses, ticket is fair but bounces one line, MCS scales, the shuffle
//! lock with the NUMA policy batches sockets.

use std::cell::Cell;
use std::rc::Rc;

use c3_bench::sweep::sweep_rows;
use c3_bench::{report::Report, run_window_ms, sweep_threads};
use ksim::SimBuilder;
use simlocks::{NativePolicy, SimMcsLock, SimShflLock, SimTasLock, SimTicketLock};

enum Zoo {
    Tas(SimTasLock),
    Ticket(SimTicketLock),
    Mcs(SimMcsLock),
    Shfl(SimShflLock),
}

fn run(kind: &str, threads: u32, window_ns: u64, seed: u64) -> f64 {
    let sim = SimBuilder::new().seed(seed).build();
    let lock = Rc::new(match kind {
        "tas" => Zoo::Tas(SimTasLock::new(&sim)),
        "ticket" => Zoo::Ticket(SimTicketLock::new(&sim)),
        "mcs" => Zoo::Mcs(SimMcsLock::new(&sim)),
        "shfl_fifo" => Zoo::Shfl(SimShflLock::new(&sim)),
        "shfl_numa" => {
            let l = SimShflLock::new(&sim);
            l.set_policy(Rc::new(NativePolicy::numa_aware()));
            Zoo::Shfl(l)
        }
        other => panic!("unknown lock kind {other}"),
    });
    let ops = Rc::new(Cell::new(0u64));
    for cpu in sim.topology().compact_placement(threads as usize) {
        let (l, o) = (Rc::clone(&lock), Rc::clone(&ops));
        sim.spawn_on(cpu, move |t| async move {
            while t.now() < window_ns {
                match &*l {
                    Zoo::Tas(x) => {
                        x.acquire(&t).await;
                        t.advance(300).await;
                        x.release(&t).await;
                    }
                    Zoo::Ticket(x) => {
                        x.acquire(&t).await;
                        t.advance(300).await;
                        x.release(&t).await;
                    }
                    Zoo::Mcs(x) => {
                        x.acquire(&t).await;
                        t.advance(300).await;
                        x.release(&t).await;
                    }
                    Zoo::Shfl(x) => {
                        x.acquire(&t).await;
                        t.advance(300).await;
                        x.release(&t).await;
                    }
                }
                o.set(o.get() + 1);
                t.advance(150 + t.rng_u64() % 600).await;
            }
        });
    }
    let stats = sim.run();
    assert!(stats.stuck_tasks.is_empty(), "{kind} deadlocked");
    ops.get() as f64 / (window_ns as f64 / 1e6)
}

fn main() {
    let window = run_window_ms() * 1_000_000;
    let kinds = ["tas", "ticket", "mcs", "shfl_fifo", "shfl_numa"];
    let mut report = Report::new("Lock zoo scalability", "ops/msec", &kinds);
    let rows = sweep_rows(&sweep_threads(), kinds.len(), &[42], |n, k, sd| {
        run(kinds[k], n, window, sd)
    });
    for (n, row) in rows {
        eprintln!(
            "threads={n:<3} tas={:>8.0} ticket={:>8.0} mcs={:>8.0} shfl={:>8.0} shfl_numa={:>8.0}",
            row[0], row[1], row[2], row[3], row[4]
        );
        report.push(n, row);
    }
    println!("{}", report.to_markdown());
    match report.save_csv("lockzoo") {
        Ok(p) => eprintln!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
