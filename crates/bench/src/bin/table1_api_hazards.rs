//! Regenerates Table 1: the seven Concord APIs with their hazard classes,
//! plus a *measurement* of each hazard on the simulated machine:
//!
//! * fairness (`cmp_node` / `skip_shuffle`): per-task acquisition spread
//!   under an adversarial reorder policy vs FIFO;
//! * performance (`schedule_waiter`): parking behavior distortion of a
//!   never-park policy on the blocking mutex;
//! * critical-section growth (the four profiling hooks): throughput loss
//!   from increasingly heavy event policies.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use concord::watchdog::{detect, WatchdogConfig, WindowStats};
use concord::Concord;
use ksim::{Histogram, SimBuilder};
use locks::hooks::{CmpNodeCtx, Hazard, HookKind, LockEventCtx, SkipShuffleCtx};
use locks::RawLock;
use simlocks::policy::{Decision, SimPolicy};
use simlocks::SimShflLock;

/// Adversarial `cmp_node`: prefer one lucky task id parity — a policy a
/// user *could* write, hazarding fairness but never correctness.
struct UnfairPolicy;

impl SimPolicy for UnfairPolicy {
    fn cmp_node(&self, c: &CmpNodeCtx) -> Decision {
        (c.curr.tid.is_multiple_of(4), 5)
    }
    fn skip_shuffle(&self, _: &SkipShuffleCtx) -> Decision {
        (false, 5)
    }
}

/// Event policy of configurable weight (critical-section growth hazard).
struct HeavyProfiling(u64);

impl SimPolicy for HeavyProfiling {
    fn cmp_node(&self, _: &CmpNodeCtx) -> Decision {
        (false, 0)
    }
    fn skip_shuffle(&self, _: &SkipShuffleCtx) -> Decision {
        (true, 0)
    }
    fn on_event(&self, _: HookKind, _: &LockEventCtx) -> u64 {
        self.0
    }
    fn wants_event(&self, _: HookKind) -> bool {
        true
    }
}

/// Runs a contended sim workload; returns (ops/ms, per-task min, max).
fn contended_run(policy: Option<Rc<dyn SimPolicy>>, n: u32) -> (f64, u64, u64) {
    const WINDOW: u64 = 3_000_000;
    let sim = SimBuilder::new().seed(7).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    if let Some(p) = policy {
        lock.set_policy(p);
    }
    let per_task = Rc::new(RefCell::new(vec![0u64; n as usize]));
    for (i, cpu) in sim
        .topology()
        .compact_placement(n as usize)
        .into_iter()
        .enumerate()
    {
        let (l, pt) = (Rc::clone(&lock), Rc::clone(&per_task));
        sim.spawn_on(cpu, move |t| async move {
            while t.now() < WINDOW {
                l.acquire(&t).await;
                t.advance(300).await;
                l.release(&t).await;
                pt.borrow_mut()[i] += 1;
                t.advance(150 + t.rng_u64() % 600).await;
            }
        });
    }
    let stats = sim.run();
    assert!(stats.stuck_tasks.is_empty());
    let pt = per_task.borrow();
    let total: u64 = pt.iter().sum();
    (
        total as f64 / (WINDOW as f64 / 1e6),
        *pt.iter().min().unwrap(),
        *pt.iter().max().unwrap(),
    )
}

fn fairness_hazard() -> String {
    let (tp_fifo, min_f, max_f) = contended_run(None, 40);
    let (tp_bad, min_b, max_b) = contended_run(Some(Rc::new(UnfairPolicy)), 40);
    format!(
        "FIFO: {tp_fifo:.0} ops/ms, per-task {min_f}..{max_f}; \
         adversarial cmp_node: {tp_bad:.0} ops/ms, per-task {min_b}..{max_b} \
         (spread ×{:.1})",
        (max_b - min_b) as f64 / (max_f.saturating_sub(min_f).max(1)) as f64
    )
}

fn performance_hazard() -> String {
    // Real blocking mutex: a never-park policy keeps waiters spinning
    // through a long hold — throughput survives, CPU time is the casualty.
    let run = |never_park: bool| {
        let lock = Arc::new(locks::ShflMutex::new());
        if never_park {
            lock.hooks().install_schedule_waiter(Arc::new(|_| false));
        }
        let held = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let holder = {
            let (l, h) = (Arc::clone(&lock), Arc::clone(&held));
            std::thread::spawn(move || {
                let _g = l.lock();
                h.store(true, std::sync::atomic::Ordering::Release);
                std::thread::sleep(std::time::Duration::from_millis(60));
            })
        };
        while !held.load(std::sync::atomic::Ordering::Acquire) {
            std::hint::spin_loop();
        }
        let mut waiters = Vec::new();
        for _ in 0..3 {
            let l = Arc::clone(&lock);
            waiters.push(std::thread::spawn(move || {
                let _g = l.lock();
            }));
        }
        holder.join().unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        lock.park_count()
    };
    let parks_default = run(false);
    let parks_never = run(true);
    format!(
        "60ms hold, 3 waiters: default policy parked {parks_default} times, \
         never-park policy parked {parks_never} times (waiters burned CPU instead)"
    )
}

fn cs_growth_hazard() -> Vec<(u64, f64)> {
    let (base, _, _) = contended_run(None, 40);
    [0u64, 100, 500, 2_000]
        .into_iter()
        .map(|w| {
            if w == 0 {
                (w, 1.0)
            } else {
                let (tp, _, _) = contended_run(Some(Rc::new(HeavyProfiling(w))), 40);
                (w, tp / base)
            }
        })
        .collect()
}

/// Starving reorder policy: every task except each eighth one moves
/// forward past the victims on every shuffle phase — the worst-case
/// fairness hazard a `cmp_node` policy can express.
struct StarvingPolicy;

impl SimPolicy for StarvingPolicy {
    fn cmp_node(&self, c: &CmpNodeCtx) -> Decision {
        (!c.curr.tid.is_multiple_of(8), 5)
    }
    fn skip_shuffle(&self, _: &SkipShuffleCtx) -> Decision {
        (false, 5)
    }
}

/// Uniform-slowdown policy: charges virtual time on the acquire path of
/// every task (a policy doing expensive work per lock operation) — the
/// performance hazard without any fairness skew or hold-time growth.
struct SlowAcquirePath(u64);

impl SimPolicy for SlowAcquirePath {
    fn cmp_node(&self, _: &CmpNodeCtx) -> Decision {
        (false, 0)
    }
    fn skip_shuffle(&self, _: &SkipShuffleCtx) -> Decision {
        (true, 0)
    }
    fn on_event(&self, kind: HookKind, _: &LockEventCtx) -> u64 {
        if kind == HookKind::LockAcquire {
            self.0
        } else {
            0
        }
    }
    fn wants_event(&self, kind: HookKind) -> bool {
        kind == HookKind::LockAcquire
    }
}

/// One time-bounded observation window with `policy` attached, measured
/// the way the real-lock profiler measures: wait = acquire latency,
/// hold = acquired → released, both in virtual time. Returns the
/// distilled stats and the lock for quarantining.
fn observed_window(policy: Option<Rc<dyn SimPolicy>>) -> (WindowStats, Rc<SimShflLock>, u64) {
    const TASKS: usize = 40;
    const WINDOW: u64 = 3_000_000;
    let sim = SimBuilder::new().seed(11).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    if let Some(p) = policy {
        lock.set_policy(p);
    }
    let wait = Rc::new(RefCell::new(Histogram::new()));
    let hold = Rc::new(RefCell::new(Histogram::new()));
    for cpu in sim.topology().compact_placement(TASKS) {
        let (l, w, h) = (Rc::clone(&lock), Rc::clone(&wait), Rc::clone(&hold));
        sim.spawn_on(cpu, move |t| async move {
            while t.now() < WINDOW {
                let t0 = t.now();
                l.acquire(&t).await;
                let t1 = t.now();
                w.borrow_mut().record(t1 - t0);
                t.advance(300).await;
                l.release(&t).await;
                h.borrow_mut().record(t.now() - t1);
                t.advance(150 + t.rng_u64() % 600).await;
            }
        });
    }
    let stats = sim.run();
    let window = WindowStats::from_hists(&wait.borrow(), &hold.borrow());
    (window, lock, stats.final_time_ns)
}

/// The watchdog column: each hazardous policy from the measurement
/// sections, detected against the unpatched baseline window and
/// auto-reverted (sim quarantine) within one bounded window.
fn watchdog_column() {
    let concord = Concord::new();
    let cfg = WatchdogConfig::default();
    let (baseline, _, _) = observed_window(None);
    println!(
        "  baseline window: {} acquisitions, wait p50 {} ns, hold mean {:.0} ns\n",
        baseline.acquisitions, baseline.wait_p50, baseline.hold_mean
    );
    println!("| policy | hazard detected | watchdog action |");
    println!("|---|---|---|");
    let cases: Vec<(&str, HookKind, Rc<dyn SimPolicy>)> = vec![
        (
            "starving cmp_node",
            HookKind::CmpNode,
            Rc::new(StarvingPolicy),
        ),
        (
            "150 µs acquire-path work",
            HookKind::ScheduleWaiter,
            Rc::new(SlowAcquirePath(150_000)),
        ),
        (
            "2 µs event profiling",
            HookKind::LockRelease,
            Rc::new(HeavyProfiling(2_000)),
        ),
    ];
    for (name, hook, policy) in cases {
        let (current, lock, now_ns) = observed_window(Some(policy));
        match detect(&baseline, &current, &cfg) {
            Some(report) => {
                let record = concord.quarantine_sim(
                    &lock,
                    "table1_lock",
                    hook,
                    name,
                    format!("watchdog: {:?} hazard — {}", report.hazard, report.detail),
                    now_ns,
                );
                println!(
                    "| {name} | {:?} within {} acquisitions | auto-reverted to FIFO ({}) |",
                    report.hazard, current.acquisitions, record.reason
                );
            }
            None => println!("| {name} | none | left attached |"),
        }
    }
    println!(
        "\n  {} quarantine record(s) filed in the registry",
        concord.registry().all_quarantines().len()
    );
}

fn main() {
    println!("### Table 1 — Concord APIs and their hazards\n");
    println!("| API | Description | Hazard |");
    println!("|---|---|---|");
    for kind in HookKind::ALL {
        let desc = match kind {
            HookKind::CmpNode => "Decide whether to move current node forward",
            HookKind::SkipShuffle => "Skip shuffling on this shuffler and hand over shuffler",
            HookKind::ScheduleWaiter => "Waking/parking/priority for a lock",
            HookKind::LockAcquire => "Invoked when trying to acquire a lock",
            HookKind::LockContended => "Invoked when trylock failed and need to wait",
            HookKind::LockAcquired => "Invoked when actually acquired a lock",
            HookKind::LockRelease => "Invoked when release a lock",
        };
        let hazard = match kind.hazard() {
            Hazard::Fairness => "Fairness",
            Hazard::Performance => "Performance",
            Hazard::CriticalSection => "Increase critical section",
        };
        println!("| {} | {} | {} |", kind.name(), desc, hazard);
    }

    println!("\n### Hazard measurements\n");
    println!("**Fairness** ({}):", HookKind::CmpNode.name());
    println!("  {}\n", fairness_hazard());
    println!("**Performance** ({}):", HookKind::ScheduleWaiter.name());
    println!("  {}\n", performance_hazard());
    println!("**Critical-section growth** (profiling hooks):");
    println!("  per-event cost → normalized throughput (40 contending tasks)");
    for (w, norm) in cs_growth_hazard() {
        println!("    {w:>5} ns/event → {norm:.3}");
    }

    println!("\n### Watchdog — hazard detection and auto-revert\n");
    watchdog_column();
}
