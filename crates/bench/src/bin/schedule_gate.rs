//! Schedule-exploration gate, run by `scripts/ci.sh`.
//!
//! For every base seed in `C3_SCHED_SEEDS` (comma-separated, default
//! `3,7,42`) and every strategy (random, pct, policy), explores the three
//! deliberately broken fixtures in `simlocks::broken` under a fixed
//! schedule budget. The gate fails unless:
//!
//! - every planted bug is found by every strategy from every base seed;
//! - each failure shrinks to a minimal injection list (the shrinker
//!   already pins it with a double replay);
//! - the shrunk [`Repro`] round-trips through its text format and replays
//!   twice more with an identical violation kind and trace hash; and
//! - the correct zoo locks stay violation-free under the same strategies
//!   (no false positives).
//!
//! Skip with `C3_SCHED_GATE=0`. Throughput and schedules-to-first-bug
//! are printed per strategy; `BENCH_schedule.json` records them.

use std::time::Instant;

use concord::{explore, ExploreConfig, Fixture, Repro, StrategySpec, ZooLock};

const DEFAULT_SEEDS: &[u64] = &[3, 7, 42];
const SCHEDULE_BUDGET: u32 = 64;
const STRATEGIES: &[&str] = &["random", "pct", "policy"];

fn seeds_from_env() -> Vec<u64> {
    match std::env::var("C3_SCHED_SEEDS") {
        Ok(raw) if raw.trim().is_empty() => DEFAULT_SEEDS.to_vec(),
        Ok(raw) => raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| panic!("C3_SCHED_SEEDS: bad seed {s:?}"))
            })
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Replays `repro` twice after a text round-trip; both runs must land on
/// the recorded violation kind and trace hash.
fn pin_repro(repro: &Repro) -> Result<(), String> {
    let text = repro.to_text();
    let parsed = Repro::from_text(&text).map_err(|e| format!("artifact round-trip: {e}"))?;
    if parsed != *repro {
        return Err("artifact round-trip changed the repro".to_string());
    }
    for pass in 1..=2 {
        parsed
            .replay()
            .map_err(|e| format!("replay pass {pass}: {e}"))?;
    }
    Ok(())
}

fn main() {
    if std::env::var("C3_SCHED_GATE").as_deref() == Ok("0") {
        println!("schedule_gate: skipped (C3_SCHED_GATE=0)");
        return;
    }

    let seeds = seeds_from_env();
    println!(
        "schedule_gate: {} fixtures x {:?} x seeds {seeds:?}, budget {SCHEDULE_BUDGET} schedules",
        Fixture::BROKEN.len(),
        STRATEGIES,
    );
    let mut failed = false;

    for strat in STRATEGIES {
        let spec = StrategySpec::from_name(strat).expect("gate strategy");
        let mut campaigns = 0u32;
        let mut schedules = 0u64;
        let mut first_bug_sum = 0u64;
        let started = Instant::now();
        for fixture in Fixture::BROKEN {
            for &seed in &seeds {
                let cfg = ExploreConfig {
                    schedules: SCHEDULE_BUDGET,
                    base_seed: seed,
                    ..ExploreConfig::default()
                };
                let report = match explore(fixture, &spec, &cfg) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!(
                            "schedule_gate: FAIL — {} under {strat} (seed {seed}): {e}",
                            fixture.name()
                        );
                        failed = true;
                        continue;
                    }
                };
                campaigns += 1;
                schedules += u64::from(report.schedules_run);
                let (Some(first), Some(violation), Some(repro)) = (
                    report.first_bug_schedule,
                    report.violation.as_ref(),
                    report.repro.as_ref(),
                ) else {
                    eprintln!(
                        "schedule_gate: FAIL — {} under {strat} (seed {seed}): planted bug \
                         not found in {SCHEDULE_BUDGET} schedules",
                        fixture.name()
                    );
                    failed = true;
                    continue;
                };
                first_bug_sum += u64::from(first) + 1;
                if let Err(e) = pin_repro(repro) {
                    eprintln!(
                        "schedule_gate: FAIL — {} under {strat} (seed {seed}): {e}",
                        fixture.name()
                    );
                    failed = true;
                    continue;
                }
                println!(
                    "schedule_gate: {} under {strat} (seed {seed}) — {} at schedule {}, \
                     shrunk to {} injection(s), trace {:#x}",
                    fixture.name(),
                    violation.kind(),
                    first,
                    repro.injections.len(),
                    repro.trace_hash,
                );
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        if campaigns > 0 {
            println!(
                "schedule_gate: {strat}: {:.0} schedules/sec, mean schedules-to-first-bug {:.2}",
                schedules as f64 / elapsed,
                first_bug_sum as f64 / f64::from(campaigns),
            );
        }
    }

    // False-positive sweep: the correct zoo must stay clean under the
    // same strategies and budgetted seeds.
    for z in ZooLock::ALL {
        for strat in STRATEGIES {
            let spec = StrategySpec::from_name(strat).expect("gate strategy");
            let cfg = ExploreConfig {
                schedules: 8,
                base_seed: seeds[0],
                ..ExploreConfig::default()
            };
            match explore(Fixture::Zoo(z), &spec, &cfg) {
                Ok(report) if report.violation.is_none() => {}
                Ok(report) => {
                    eprintln!(
                        "schedule_gate: FAIL — false positive on zoo_{} under {strat}: {:?}",
                        z.name(),
                        report.violation
                    );
                    failed = true;
                }
                Err(e) => {
                    eprintln!("schedule_gate: FAIL — zoo_{} under {strat}: {e}", z.name());
                    failed = true;
                }
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("schedule_gate: OK");
}
