//! Sensitivity ablations for the design choices DESIGN.md calls out:
//!
//! 1. interconnect cost (`cross_socket`) vs the NUMA policy's win —
//!    the policy should matter more as the machine gets "wider";
//! 2. patched-entry cost vs Fig. 2(c) worst-case overhead — the
//!    calibration knob behind `TRAMPOLINE_NS`;
//! 3. the `MAX_BATCH` fairness bound vs throughput and fairness —
//!    the cost of the §4.2 starvation guard;
//! 4. armed fault containment (breaker check + inert fault injector on
//!    every hook invocation) vs the Fig. 2(c) no-op worst case — the
//!    price of the runtime safety net when nothing ever faults;
//! 5. the trace plane, disarmed vs armed, on the same worst case — armed
//!    emission happens on the host and charges zero virtual time, so the
//!    two columns must agree exactly (the budget is ≥0.95 normalized);
//! 6. a rollout-applied policy vs the same policy attached directly, on
//!    the same worst case — the staged-rollout control plane (intent
//!    log, health gates, generation tags) must stay entirely off the
//!    lock hot path, so the two columns must agree exactly as well.
//!
//! Each ablation's configurations are independent simulations, fanned out
//! across the sweep worker pool; rows print in configuration order.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use c3_bench::run_window_ms;
use c3_bench::sweep::run_points;
use ksim::{LatencyModel, SimBuilder};
use simlocks::{NativePolicy, SimMcsLock, SimShflLock};

const THREADS: usize = 60;

fn lat(cross: u64) -> LatencyModel {
    LatencyModel {
        cross_socket: cross,
        ..LatencyModel::default()
    }
}

fn sweep_cross_socket(window: u64) {
    let window_ms = window as f64 / 1e6;
    println!("### Ablation 1: interconnect cost vs NUMA-policy win (60 threads)");
    println!("| cross-socket ns | MCS ops/ms | Shfl-NUMA ops/ms | ratio |");
    println!("|---|---|---|---|");
    let run = |cross: u64, numa: bool| {
        let sim = SimBuilder::new().seed(42).latency(lat(cross)).build();
        let ops = Rc::new(Cell::new(0u64));
        enum L {
            M(SimMcsLock),
            S(SimShflLock),
        }
        let lock = Rc::new(if numa {
            let l = SimShflLock::new(&sim);
            l.set_policy(Rc::new(NativePolicy::numa_aware()));
            L::S(l)
        } else {
            L::M(SimMcsLock::new(&sim))
        });
        for cpu in sim.topology().compact_placement(THREADS) {
            let (l, o) = (Rc::clone(&lock), Rc::clone(&ops));
            sim.spawn_on(cpu, move |t| async move {
                while t.now() < window {
                    match &*l {
                        L::M(m) => {
                            m.acquire(&t).await;
                            t.advance(300).await;
                            m.release(&t).await;
                        }
                        L::S(s) => {
                            s.acquire(&t).await;
                            t.advance(300).await;
                            s.release(&t).await;
                        }
                    }
                    o.set(o.get() + 1);
                    t.advance(150 + t.rng_u64() % 600).await;
                }
            });
        }
        sim.run();
        ops.get() as f64 / window_ms
    };
    let crosses = [110u64, 220, 440, 880];
    let points: Vec<(u64, bool)> = crosses
        .iter()
        .flat_map(|&c| [(c, false), (c, true)])
        .collect();
    let vals = run_points(&points, |&(c, numa)| run(c, numa));
    for (i, &cross) in crosses.iter().enumerate() {
        let (mcs, shfl) = (vals[2 * i], vals[2 * i + 1]);
        println!("| {cross} | {mcs:.0} | {shfl:.0} | {:.2}× |", shfl / mcs);
    }
    println!();
}

fn sweep_patched_entry(window: u64) {
    use c3_bench::workloads::{run_hashtable, HtSeries};
    use concord::policy::PatchedEntryPolicy;

    let window_ms = window as f64 / 1e6;
    println!("### Ablation 2: patched-entry cost vs Fig. 2(c) overhead (8 threads)");
    println!("| entry cost ns | normalized throughput |");
    println!("|---|---|");
    let base = run_hashtable(8, HtSeries::Baseline, window, 42);
    let run = |cost: u64| {
        // Reuse the hashtable workload with a custom-cost policy by
        // constructing the lock by hand.
        let sim = SimBuilder::new().seed(42).build();
        let lock = Rc::new(SimShflLock::new(&sim));
        lock.set_policy(Rc::new(PatchedEntryPolicy(cost)));
        let table = Rc::new(RefCell::new(c3_bench::hashtable::HashTable::new(1024)));
        for k in 0..4096u64 {
            table.borrow_mut().insert(k, k);
        }
        let ops = Rc::new(Cell::new(0u64));
        for cpu in sim.topology().compact_placement(8) {
            let (l, tb, o) = (Rc::clone(&lock), Rc::clone(&table), Rc::clone(&ops));
            sim.spawn_on(cpu, move |t| async move {
                while t.now() < window {
                    let r = t.rng_u64();
                    let key = r % 4096;
                    l.acquire(&t).await;
                    let cost = match r % 10 {
                        0 => tb.borrow_mut().insert(key, r).0,
                        1 => tb.borrow_mut().remove(key).0,
                        _ => tb.borrow().lookup(key).0,
                    };
                    t.advance(cost).await;
                    l.release(&t).await;
                    o.set(o.get() + 1);
                    t.advance(250).await;
                }
            });
        }
        sim.run();
        ops.get() as f64 / window_ms
    };
    let costs = [0u64, 15, 45, 90, 180];
    let vals = run_points(&costs, |&c| run(c));
    for (cost, tp) in costs.iter().zip(vals) {
        println!("| {cost} | {:.3} |", tp / base);
    }
    println!();
}

fn sweep_max_batch(window: u64) {
    let window_ms = window as f64 / 1e6;
    println!("### Ablation 3: MAX_BATCH fairness bound (40 threads, 4 sockets)");
    println!("| max batch | ops/ms | per-task min..max |");
    println!("|---|---|---|");
    let run = |batch: u32| {
        let sim = SimBuilder::new().seed(42).build();
        let lock = Rc::new(SimShflLock::new(&sim));
        lock.set_policy(Rc::new(NativePolicy::numa_aware()));
        lock.set_max_batch(batch);
        let per_task = Rc::new(RefCell::new(vec![0u64; 40]));
        for (i, cpu) in sim.topology().compact_placement(40).into_iter().enumerate() {
            let (l, pt) = (Rc::clone(&lock), Rc::clone(&per_task));
            sim.spawn_on(cpu, move |t| async move {
                while t.now() < window {
                    l.acquire(&t).await;
                    t.advance(300).await;
                    l.release(&t).await;
                    pt.borrow_mut()[i] += 1;
                    t.advance(150 + t.rng_u64() % 600).await;
                }
            });
        }
        sim.run();
        let pt = per_task.borrow();
        let total: u64 = pt.iter().sum();
        (total, *pt.iter().min().unwrap(), *pt.iter().max().unwrap())
    };
    let batches = [1u32, 8, 32, 128, 100_000];
    let vals = run_points(&batches, |&b| run(b));
    for (batch, (total, min, max)) in batches.iter().zip(vals) {
        println!("| {batch} | {:.0} | {min}..{max} |", total as f64 / window_ms);
    }
    println!();
}

fn sweep_containment(window: u64) {
    use c3_bench::workloads::{run_hashtable, HtSeries};

    println!("### Ablation 4: armed-containment overhead on the Fig. 2(c) worst case");
    println!("| threads | no-op ops/ms | contained ops/ms | contained/no-op |");
    println!("|---|---|---|---|");
    let threads = [1u32, 4, 8, 16, 28];
    let points: Vec<(u32, HtSeries)> = threads
        .iter()
        .flat_map(|&n| [(n, HtSeries::ConcordNoop), (n, HtSeries::ConcordNoopContained)])
        .collect();
    let vals = run_points(&points, |&(n, s)| run_hashtable(n, s, window, 42));
    let mut worst = f64::INFINITY;
    for (i, &n) in threads.iter().enumerate() {
        let (noop, contained) = (vals[2 * i], vals[2 * i + 1]);
        let norm = contained / noop;
        worst = worst.min(norm);
        println!("| {n} | {noop:.0} | {contained:.0} | {norm:.3} |");
    }
    println!("\nworst-case armed-containment throughput: {worst:.3} (budget: ≥0.95)");
    assert!(
        worst >= 0.95,
        "armed-containment overhead exceeds the 5% budget: {worst:.3}"
    );
    println!();
}

fn sweep_telemetry(window: u64) {
    use c3_bench::workloads::{run_hashtable, HtSeries};

    println!("### Ablation 5: trace-plane cost on the Fig. 2(c) worst case");
    println!("| threads | disarmed ops/ms | armed ops/ms | armed/disarmed |");
    println!("|---|---|---|---|");
    let threads = [1u32, 4, 8, 16, 28];
    // The armed flag is process-global, so the disarmed and armed batches
    // must not overlap on the sweep worker pool: run one fully, flip,
    // run the other.
    telemetry::set_armed(false);
    let off = run_points(&threads, |&n| {
        run_hashtable(n, HtSeries::ConcordNoop, window, 42)
    });
    telemetry::set_armed(true);
    let on = run_points(&threads, |&n| {
        run_hashtable(n, HtSeries::ConcordNoop, window, 42)
    });
    telemetry::set_armed(false);
    telemetry::drain();
    let mut worst = f64::INFINITY;
    for (i, &n) in threads.iter().enumerate() {
        let norm = on[i] / off[i];
        worst = worst.min(norm);
        println!("| {n} | {:.0} | {:.0} | {norm:.3} |", off[i], on[i]);
    }
    println!("\nworst-case armed-tracing throughput: {worst:.3} (budget: ≥0.95, expected: 1.000)");
    assert!(
        worst >= 0.95,
        "armed tracing exceeds the 5% virtual-time budget: {worst:.3}"
    );
    println!();
}

fn sweep_rollout(window: u64) {
    use concord::policy::AttachedNoopPolicy;
    use concord::rollout::{
        AlwaysGreen, ChaosInjector, Rollout, RolloutLog, RolloutOutcome, RolloutPlan, SimTarget,
    };
    use locks::hooks::HookKind;
    use simlocks::policy::SimPolicy;

    let window_ms = window as f64 / 1e6;
    println!("### Ablation 6: armed-rollout overhead on the Fig. 2(c) worst case");
    println!("| threads | direct ops/ms | rollout ops/ms | rollout/direct |");
    println!("|---|---|---|---|");
    // Both columns run the exact Fig. 2(c) worst-case loop with the no-op
    // policy attached; they differ only in how the policy got there —
    // `set_policy` directly, or a committed staged rollout whose intent
    // log stays live for the whole measurement.
    let run = |threads: usize, via_rollout: bool| {
        let sim = SimBuilder::new().seed(42).build();
        let lock = Rc::new(SimShflLock::new(&sim));
        if via_rollout {
            let target = SimTarget::new(vec![("ht".to_string(), Rc::clone(&lock))], |_| {
                Rc::new(AttachedNoopPolicy) as Rc<dyn SimPolicy>
            });
            let plan = RolloutPlan::staged(1, "noop", HookKind::CmpNode, &["ht".to_string()], &[]);
            let log = RolloutLog::new();
            let out = Rollout::run(plan, &log, &target, &mut AlwaysGreen, &ChaosInjector::inert())
                .expect("rollout ran");
            assert_eq!(out, RolloutOutcome::Committed, "rollout must commit");
        } else {
            lock.set_policy(Rc::new(AttachedNoopPolicy));
        }
        let table = Rc::new(RefCell::new(c3_bench::hashtable::HashTable::new(1024)));
        for k in 0..4096u64 {
            table.borrow_mut().insert(k, k);
        }
        let ops = Rc::new(Cell::new(0u64));
        for cpu in sim.topology().compact_placement(threads) {
            let (l, tb, o) = (Rc::clone(&lock), Rc::clone(&table), Rc::clone(&ops));
            sim.spawn_on(cpu, move |t| async move {
                while t.now() < window {
                    let r = t.rng_u64();
                    let key = r % 4096;
                    l.acquire(&t).await;
                    let cost = match r % 10 {
                        0 => tb.borrow_mut().insert(key, r).0,
                        1 => tb.borrow_mut().remove(key).0,
                        _ => tb.borrow().lookup(key).0,
                    };
                    t.advance(cost).await;
                    l.release(&t).await;
                    o.set(o.get() + 1);
                    t.advance(250).await;
                }
            });
        }
        sim.run();
        ops.get() as f64 / window_ms
    };
    let threads = [1usize, 4, 8, 16, 28];
    let points: Vec<(usize, bool)> = threads
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    let vals = run_points(&points, |&(n, v)| run(n, v));
    let mut worst = f64::INFINITY;
    for (i, &n) in threads.iter().enumerate() {
        let (direct, rolled) = (vals[2 * i], vals[2 * i + 1]);
        let norm = rolled / direct;
        worst = worst.min(norm);
        println!("| {n} | {direct:.0} | {rolled:.0} | {norm:.3} |");
    }
    println!("\nworst-case rollout-applied throughput: {worst:.3} (budget: ≥0.95, expected: 1.000)");
    assert!(
        worst >= 0.95,
        "rollout-applied policy exceeds the 5% hot-path budget: {worst:.3}"
    );
    println!();
}

fn main() {
    let window = run_window_ms() * 1_000_000;
    sweep_cross_socket(window);
    sweep_patched_entry(window);
    sweep_max_batch(window);
    sweep_containment(window);
    sweep_telemetry(window);
    sweep_rollout(window);
}
