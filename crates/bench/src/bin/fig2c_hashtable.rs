//! Regenerates Fig. 2(c): hash table under one global ShflLock —
//! normalized throughput of Concord-ShflLock (attached no-op policy, the
//! worst case) against the unpatched lock.

use c3_bench::sweep::sweep_rows;
use c3_bench::workloads::{run_hashtable, HtSeries};
use c3_bench::{report::Report, run_window_ms, sweep_threads};

fn main() {
    let window = run_window_ms() * 1_000_000;
    let mut report = Report::new(
        "Fig. 2(c) hashtable",
        "normalized throughput (and raw ops/msec)",
        &["ShflLock", "Concord-ShflLock", "normalized"],
    );
    let series = [HtSeries::Baseline, HtSeries::ConcordNoop];
    // Seed-averaged pairs per thread count, fanned out across the worker
    // pool; the normalized column is derived after reassembly.
    let rows = sweep_rows(&sweep_threads(), series.len(), &[42, 43, 44], |n, s, sd| {
        run_hashtable(n, series[s], window, sd)
    });
    let mut worst = f64::INFINITY;
    for (n, row) in rows {
        let (base, noop) = (row[0], row[1]);
        let norm = noop / base;
        worst = worst.min(norm);
        eprintln!("threads={n:<3} base={base:>10.1} concord={noop:>10.1} normalized={norm:.3}");
        report.push(n, vec![base, noop, norm]);
    }
    println!("{}", report.to_markdown());
    println!("worst-case normalized throughput: {worst:.3} (paper: ≈0.8)");
    match report.save_csv("fig2c_hashtable") {
        Ok(p) => eprintln!("csv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
