//! Map contention microbench: ns per op for each map kind, single-threaded
//! and with 8 threads hammering the same map (the shuffler-path pattern —
//! every hook invocation on every CPU reads or bumps shared policy state).
//!
//! Feeds the contention rows of `BENCH_maps.json`. Wall-clock timing on a
//! real-thread pool; not a simulator workload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cbpf::map::{Map, MapDef, MapKind};

const ITERS: u64 = 200_000;
const THREADS: usize = 8;

fn map(kind: MapKind, key_size: usize, max_entries: usize) -> Arc<Map> {
    Arc::new(Map::new(MapDef {
        name: "bench".into(),
        kind,
        key_size,
        value_size: 8,
        max_entries,
    }))
}

/// ns/op of `f` run `ITERS` times on one thread.
fn single(mut f: impl FnMut(u64)) -> f64 {
    // Warm up.
    for i in 0..(ITERS / 10) {
        f(i);
    }
    let t0 = Instant::now();
    for i in 0..ITERS {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

/// ns/op with `THREADS` threads running `f` concurrently against the same
/// map; reported as mean wall-clock per op per thread (latency under
/// contention, not aggregate throughput).
fn contended(f: impl Fn(usize, u64) + Send + Sync + 'static) -> f64 {
    let f = Arc::new(f);
    let go = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let f = Arc::clone(&f);
            let go = Arc::clone(&go);
            std::thread::spawn(move || {
                while !go.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let t0 = Instant::now();
                for i in 0..ITERS {
                    f(t, i);
                }
                t0.elapsed().as_nanos() as f64 / ITERS as f64
            })
        })
        .collect();
    go.store(true, Ordering::Release);
    let per_thread: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    per_thread.iter().sum::<f64>() / per_thread.len() as f64
}

fn main() {
    let mut rows: Vec<(&str, f64)> = Vec::new();

    // Array: read-mostly shared counters.
    let m = map(MapKind::Array, 4, 256);
    rows.push((
        "array_lookup_1t",
        single(|i| {
            let k = ((i % 256) as u32).to_le_bytes();
            std::hint::black_box(m.lookup_copy(&k, 0));
        }),
    ));
    let m = map(MapKind::Array, 4, 256);
    rows.push((
        "array_update_1t",
        single(|i| {
            let k = ((i % 256) as u32).to_le_bytes();
            m.update(&k, &i.to_le_bytes(), 0).unwrap();
        }),
    ));
    let m = map(MapKind::Array, 4, 256);
    rows.push((
        "array_update_8t",
        contended(move |t, i| {
            let k = (((i as usize * THREADS + t) % 256) as u32).to_le_bytes();
            m.update(&k, &i.to_le_bytes(), t as u32).unwrap();
        }),
    ));

    // Hash: the NUMA-policy pattern — lookups of a hot key plus updates.
    let m = map(MapKind::Hash, 8, 1024);
    for i in 0..512u64 {
        m.update(&i.to_le_bytes(), &i.to_le_bytes(), 0).unwrap();
    }
    {
        let m = Arc::clone(&m);
        rows.push((
            "hash_lookup_1t",
            single(move |i| {
                let k = (i % 512).to_le_bytes();
                std::hint::black_box(m.lookup_copy(&k, 0));
            }),
        ));
    }
    {
        let m = Arc::clone(&m);
        rows.push((
            "hash_lookup_8t",
            contended(move |t, i| {
                let k = ((i.wrapping_mul(7).wrapping_add(t as u64)) % 512).to_le_bytes();
                std::hint::black_box(m.lookup_copy(&k, t as u32));
            }),
        ));
    }
    {
        let m = Arc::clone(&m);
        rows.push((
            "hash_update_1t",
            single(move |i| {
                let k = (i % 512).to_le_bytes();
                m.update(&k, &i.to_le_bytes(), 0).unwrap();
            }),
        ));
    }
    rows.push((
        "hash_update_8t",
        contended(move |t, i| {
            let k = ((i.wrapping_mul(7).wrapping_add(t as u64)) % 512).to_le_bytes();
            m.update(&k, &i.to_le_bytes(), t as u32).unwrap();
        }),
    ));

    // Per-CPU array: each thread hits its own copy — the contention-free
    // design point.
    let m = map(MapKind::PerCpuArray, 4, 8);
    {
        let m = Arc::clone(&m);
        rows.push((
            "percpu_update_1t",
            single(move |i| {
                let k = ((i % 8) as u32).to_le_bytes();
                m.update(&k, &i.to_le_bytes(), 0).unwrap();
            }),
        ));
    }
    rows.push((
        "percpu_update_8t",
        contended(move |t, i| {
            let k = ((i % 8) as u32).to_le_bytes();
            m.update(&k, &i.to_le_bytes(), t as u32).unwrap();
        }),
    ));

    println!("| op | ns/op |");
    println!("|---|---|");
    for (name, ns) in &rows {
        println!("| {name} | {ns:.1} |");
    }
}
