//! Workload generators reproducing the locking patterns of the paper's
//! three benchmarks (§5) on the simulated machine.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use concord::Concord;
use ksim::{Sim, SimBuilder, TaskCtx};
use simlocks::{NativePolicy, SimBravo, SimMcsLock, SimNeutralRwLock, SimShflLock};

use crate::hashtable::HashTable;

/// Work per simulated page fault (µs-scale, as on real hardware).
pub const FAULT_NS: u64 = 1_200;
/// Read-side faults between address-space updates (mmap/munmap take the
/// lock exclusively; on will-it-scale's 128 MB mappings writes are ~3e-5
/// of operations — rare but present).
pub const FAULTS_PER_MAP: u64 = 4_096;
/// Work under the write lock (munmap + mmap bookkeeping).
pub const REMAP_NS: u64 = 4_000;

/// Critical-section compute of the `lock2` pattern (tiny, write-heavy).
pub const LOCK2_CS_NS: u64 = 120;
/// Shared lines written inside the `lock2` critical section (the
/// lock-protected state whose locality NUMA batching preserves).
pub const LOCK2_DATA_WORDS: usize = 3;
/// Base think time between `lock2` acquisitions; the actual gap adds
/// jitter up to [`LOCK2_JITTER_NS`] so that re-arrival order decorrelates
/// from completion order (on hardware, wake-up and pipeline noise does
/// this; a deterministic simulator must inject it explicitly or FIFO
/// locks inherit same-socket runs for free).
pub const LOCK2_THINK_NS: u64 = 150;
/// Upper bound of the think-time jitter.
pub const LOCK2_JITTER_NS: u64 = 1_200;

/// Hash-table keyspace (load factor ≈ 4 over 1024 buckets).
pub const HT_KEYS: u64 = 4_096;
/// Hash-table bucket count.
pub const HT_BUCKETS: usize = 1_024;
/// Think time between hash-table operations.
pub const HT_THINK_NS: u64 = 250;

/// Extra per-operation cost of a live-switched (Concord-patched) lock
/// entry point: the patched function is reached through one level of
/// indirection on acquire and one on release.
pub const SWITCHED_ENTRY_NS: u64 = 30;

/// Series of Fig. 2(a).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RwSeries {
    /// Neutral readers-writer lock (`rwsem`/`qrwlock` analog).
    Stock,
    /// BRAVO compiled in.
    Bravo,
    /// BRAVO installed at run time through Concord's lock switching.
    ConcordBravo,
}

/// Series of Fig. 2(b).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpinSeries {
    /// MCS (`qspinlock` analog).
    StockMcs,
    /// ShflLock with the NUMA policy compiled in.
    ShflNuma,
    /// ShflLock with the NUMA policy as verified Concord bytecode.
    ConcordShflNuma,
}

/// Series of Fig. 2(c).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HtSeries {
    /// Plain ShflLock, nothing attached.
    Baseline,
    /// ShflLock patched by Concord with a policy that runs no user code —
    /// the paper's worst case.
    ConcordNoop,
    /// The worst case with fault containment armed: the no-op policy
    /// behind a circuit breaker and an inert (never-firing) fault
    /// injector, so every hook invocation pays the breaker check and the
    /// injector sample on top of the trampoline.
    ConcordNoopContained,
}

fn sim_for(seed: u64) -> Sim {
    SimBuilder::new().seed(seed).build()
}

fn placement(sim: &Sim, n: u32) -> Vec<ksim::CpuId> {
    sim.topology().compact_placement(n as usize)
}

enum RwLockImpl {
    Stock(SimNeutralRwLock),
    Bravo(SimBravo, u64),
}

impl RwLockImpl {
    async fn read_acquire(&self, t: &TaskCtx) {
        match self {
            RwLockImpl::Stock(l) => l.read_acquire(t).await,
            RwLockImpl::Bravo(l, extra) => {
                if *extra > 0 {
                    t.advance(*extra).await;
                }
                l.read_acquire(t).await;
            }
        }
    }

    async fn read_release(&self, t: &TaskCtx) {
        match self {
            RwLockImpl::Stock(l) => l.read_release(t).await,
            RwLockImpl::Bravo(l, extra) => {
                if *extra > 0 {
                    t.advance(*extra).await;
                }
                l.read_release(t).await;
            }
        }
    }

    async fn write_acquire(&self, t: &TaskCtx) {
        match self {
            RwLockImpl::Stock(l) => l.write_acquire(t).await,
            RwLockImpl::Bravo(l, extra) => {
                if *extra > 0 {
                    t.advance(*extra).await;
                }
                l.write_acquire(t).await;
            }
        }
    }

    async fn write_release(&self, t: &TaskCtx) {
        match self {
            RwLockImpl::Stock(l) => l.write_release(t).await,
            RwLockImpl::Bravo(l, extra) => {
                if *extra > 0 {
                    t.advance(*extra).await;
                }
                l.write_release(t).await;
            }
        }
    }
}

/// Runs the `page_fault2` pattern (Fig. 2(a)); returns faults per virtual
/// millisecond.
pub fn run_page_fault2(threads: u32, series: RwSeries, window_ns: u64, seed: u64) -> f64 {
    let sim = sim_for(seed);
    let lock = Rc::new(match series {
        RwSeries::Stock => RwLockImpl::Stock(SimNeutralRwLock::new(&sim)),
        RwSeries::Bravo => RwLockImpl::Bravo(SimBravo::new(&sim), 0),
        // Live-switched BRAVO pays the patched-entry indirection.
        RwSeries::ConcordBravo => RwLockImpl::Bravo(SimBravo::new(&sim), SWITCHED_ENTRY_NS),
    });
    let ops = Rc::new(Cell::new(0u64));
    for cpu in placement(&sim, threads) {
        let (l, o) = (Rc::clone(&lock), Rc::clone(&ops));
        sim.spawn_on(cpu, move |t| async move {
            'outer: loop {
                for _ in 0..FAULTS_PER_MAP {
                    if t.now() >= window_ns {
                        break 'outer;
                    }
                    l.read_acquire(&t).await;
                    t.advance(FAULT_NS).await;
                    l.read_release(&t).await;
                    o.set(o.get() + 1);
                }
                // Address-space update: exclusive.
                l.write_acquire(&t).await;
                t.advance(REMAP_NS).await;
                l.write_release(&t).await;
            }
        });
    }
    let stats = sim.run();
    assert!(stats.stuck_tasks.is_empty(), "deadlock in page_fault2");
    ops.get() as f64 / (window_ns as f64 / 1e6)
}

/// Runs the `lock2` pattern (Fig. 2(b)); returns acquisitions per virtual
/// millisecond.
pub fn run_lock2(threads: u32, series: SpinSeries, window_ns: u64, seed: u64) -> f64 {
    let sim = sim_for(seed);
    let ops = Rc::new(Cell::new(0u64));
    let data: Rc<Vec<ksim::SimWord>> = Rc::new(
        (0..LOCK2_DATA_WORDS)
            .map(|_| ksim::SimWord::new(&sim, 0))
            .collect(),
    );

    enum SpinImpl {
        Mcs(SimMcsLock),
        Shfl(SimShflLock),
    }
    let lock = Rc::new(match series {
        SpinSeries::StockMcs => SpinImpl::Mcs(SimMcsLock::new(&sim)),
        SpinSeries::ShflNuma => {
            let l = SimShflLock::new(&sim);
            l.set_policy(Rc::new(NativePolicy::numa_aware()));
            SpinImpl::Shfl(l)
        }
        SpinSeries::ConcordShflNuma => {
            let l = SimShflLock::new(&sim);
            let concord = Concord::new();
            let loaded = concord
                .load(concord::policies::numa_aware())
                .expect("prebuilt policy verifies");
            let policy = concord.make_sim_policy(&sim, &[&loaded]);
            concord.attach_sim(&l, Rc::new(policy));
            SpinImpl::Shfl(l)
        }
    });

    for cpu in placement(&sim, threads) {
        let (l, o, d) = (Rc::clone(&lock), Rc::clone(&ops), Rc::clone(&data));
        sim.spawn_on(cpu, move |t| async move {
            while t.now() < window_ns {
                match &*l {
                    SpinImpl::Mcs(m) => {
                        m.acquire(&t).await;
                        for w in d.iter() {
                            w.fetch_add(&t, 1).await;
                        }
                        t.advance(LOCK2_CS_NS).await;
                        m.release(&t).await;
                    }
                    SpinImpl::Shfl(s) => {
                        s.acquire(&t).await;
                        for w in d.iter() {
                            w.fetch_add(&t, 1).await;
                        }
                        t.advance(LOCK2_CS_NS).await;
                        s.release(&t).await;
                    }
                }
                o.set(o.get() + 1);
                t.advance(LOCK2_THINK_NS + t.rng_u64() % LOCK2_JITTER_NS)
                    .await;
            }
        });
    }
    let stats = sim.run();
    assert!(stats.stuck_tasks.is_empty(), "deadlock in lock2");
    ops.get() as f64 / (window_ns as f64 / 1e6)
}

/// Runs the global-lock hash-table pattern (Fig. 2(c)); returns operations
/// per virtual millisecond.
pub fn run_hashtable(threads: u32, series: HtSeries, window_ns: u64, seed: u64) -> f64 {
    let sim = sim_for(seed);
    let lock = Rc::new(SimShflLock::new(&sim));
    match series {
        HtSeries::Baseline => {}
        HtSeries::ConcordNoop => {
            lock.set_policy(Rc::new(concord::policy::AttachedNoopPolicy));
        }
        HtSeries::ConcordNoopContained => {
            use cbpf::fault::{FaultInjector, FaultPlan};
            use concord::containment::{Breaker, BreakerConfig, ContainedPolicy};
            use std::sync::Arc;
            let breaker = Arc::new(Breaker::new(BreakerConfig::default()));
            let injector = Arc::new(FaultInjector::new(FaultPlan::inert(seed)));
            lock.set_policy(Rc::new(ContainedPolicy::new(
                &sim,
                Rc::new(concord::policy::AttachedNoopPolicy),
                breaker,
                Some(injector),
            )));
        }
    }
    let table = Rc::new(RefCell::new(HashTable::new(HT_BUCKETS)));
    // Pre-populate to the steady-state load factor.
    {
        let mut t = table.borrow_mut();
        for k in 0..HT_KEYS {
            t.insert(k, k);
        }
    }
    let ops = Rc::new(Cell::new(0u64));
    for cpu in placement(&sim, threads) {
        let (l, tb, o) = (Rc::clone(&lock), Rc::clone(&table), Rc::clone(&ops));
        sim.spawn_on(cpu, move |t| async move {
            while t.now() < window_ns {
                let r = t.rng_u64();
                let key = r % HT_KEYS;
                l.acquire(&t).await;
                // The operation mix of the resizable-hash-table benchmark:
                // read-mostly with a write tail.
                let cost = match r % 10 {
                    0 => tb.borrow_mut().insert(key, r).0,
                    1 => tb.borrow_mut().remove(key).0,
                    _ => tb.borrow().lookup(key).0,
                };
                t.advance(cost).await;
                l.release(&t).await;
                o.set(o.get() + 1);
                t.advance(HT_THINK_NS).await;
            }
        });
    }
    let stats = sim.run();
    assert!(stats.stuck_tasks.is_empty(), "deadlock in hashtable");
    ops.get() as f64 / (window_ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 300_000; // 0.3 ms keeps unit tests fast.

    #[test]
    fn page_fault2_all_series_run() {
        for series in [RwSeries::Stock, RwSeries::Bravo, RwSeries::ConcordBravo] {
            let tp = run_page_fault2(4, series, W, 1);
            assert!(tp > 0.0, "{series:?} produced no throughput");
        }
    }

    #[test]
    fn lock2_all_series_run() {
        for series in [
            SpinSeries::StockMcs,
            SpinSeries::ShflNuma,
            SpinSeries::ConcordShflNuma,
        ] {
            let tp = run_lock2(4, series, W, 1);
            assert!(tp > 0.0, "{series:?} produced no throughput");
        }
    }

    #[test]
    fn hashtable_all_series_run() {
        for series in [
            HtSeries::Baseline,
            HtSeries::ConcordNoop,
            HtSeries::ConcordNoopContained,
        ] {
            let tp = run_hashtable(4, series, W, 1);
            assert!(tp > 0.0, "{series:?} produced no throughput");
        }
    }

    #[test]
    fn armed_containment_stays_within_five_percent_of_bare_noop() {
        let noop = run_hashtable(8, HtSeries::ConcordNoop, W, 3);
        let contained = run_hashtable(8, HtSeries::ConcordNoopContained, W, 3);
        let norm = contained / noop;
        assert!(
            (0.95..=1.02).contains(&norm),
            "armed containment overhead out of budget: {norm:.3}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_lock2(8, SpinSeries::ShflNuma, W, 7);
        let b = run_lock2(8, SpinSeries::ShflNuma, W, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn bravo_beats_stock_on_read_heavy_at_scale() {
        let stock = run_page_fault2(40, RwSeries::Stock, W, 2);
        let bravo = run_page_fault2(40, RwSeries::Bravo, W, 2);
        assert!(
            bravo > stock * 1.5,
            "expected BRAVO ≫ Stock at 40 readers: bravo={bravo:.0} stock={stock:.0}"
        );
    }

    #[test]
    fn concord_noop_costs_something_but_not_everything() {
        let base = run_hashtable(8, HtSeries::Baseline, W, 3);
        let noop = run_hashtable(8, HtSeries::ConcordNoop, W, 3);
        let norm = noop / base;
        assert!(
            norm > 0.5 && norm <= 1.02,
            "normalized Concord throughput out of range: {norm:.3}"
        );
    }
}
