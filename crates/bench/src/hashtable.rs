//! Chained hash table — the data-structure substrate of Fig. 2(c).
//!
//! The paper's worst-case benchmark "uses a global lock to protect the
//! hash table" (citing the resizable-hash-table benchmark \[54\]). This is
//! that table: open chaining, fixed bucket count, plus a *probe-cost*
//! accounting so the simulator can charge realistic virtual time for each
//! operation (hash + bucket walk).

/// Cost charged per operation before any probe (hash + bucket load).
pub const OP_BASE_NS: u64 = 40;

/// Cost charged per chain node visited.
pub const PROBE_NS: u64 = 18;

/// A fixed-size chained hash table mapping `u64 → u64`.
///
/// # Examples
///
/// ```
/// use c3_bench::hashtable::HashTable;
///
/// let mut t = HashTable::new(64);
/// assert_eq!(t.insert(1, 10).1, None);
/// assert_eq!(t.lookup(1).1, Some(10));
/// assert_eq!(t.remove(1).1, Some(10));
/// assert_eq!(t.lookup(1).1, None);
/// ```
pub struct HashTable {
    buckets: Vec<Vec<(u64, u64)>>,
    len: usize,
}

impl HashTable {
    /// Creates a table with `buckets` chains (rounded up to a power of 2).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let n = buckets.next_power_of_two();
        HashTable {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    fn bucket_of(&self, key: u64) -> usize {
        // Fibonacci hashing.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.buckets.len() - 1)
    }

    /// Looks up `key`, returning `(virtual_cost_ns, value)`.
    pub fn lookup(&self, key: u64) -> (u64, Option<u64>) {
        let b = self.bucket_of(key);
        let mut probes = 0;
        for (k, v) in &self.buckets[b] {
            probes += 1;
            if *k == key {
                return (OP_BASE_NS + probes * PROBE_NS, Some(*v));
            }
        }
        (OP_BASE_NS + probes * PROBE_NS, None)
    }

    /// Inserts or updates `key`, returning `(cost, previous value)`.
    pub fn insert(&mut self, key: u64, value: u64) -> (u64, Option<u64>) {
        let b = self.bucket_of(key);
        let mut probes = 0;
        for (k, v) in self.buckets[b].iter_mut() {
            probes += 1;
            if *k == key {
                let old = *v;
                *v = value;
                return (OP_BASE_NS + probes * PROBE_NS, Some(old));
            }
        }
        self.buckets[b].push((key, value));
        self.len += 1;
        (OP_BASE_NS + (probes + 1) * PROBE_NS, None)
    }

    /// Removes `key`, returning `(cost, removed value)`.
    pub fn remove(&mut self, key: u64) -> (u64, Option<u64>) {
        let b = self.bucket_of(key);
        let mut probes = 0;
        let bucket = &mut self.buckets[b];
        for i in 0..bucket.len() {
            probes += 1;
            if bucket[i].0 == key {
                let (_, v) = bucket.swap_remove(i);
                self.len -= 1;
                return (OP_BASE_NS + probes * PROBE_NS, Some(v));
            }
        }
        (OP_BASE_NS + probes * PROBE_NS, None)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Average chain length (load factor diagnostics).
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.buckets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = HashTable::new(16);
        for k in 0..100u64 {
            assert_eq!(t.insert(k, k * 2).1, None);
        }
        assert_eq!(t.len(), 100);
        for k in 0..100u64 {
            assert_eq!(t.lookup(k).1, Some(k * 2));
        }
        assert_eq!(t.insert(5, 99).1, Some(10));
        assert_eq!(t.remove(5).1, Some(99));
        assert_eq!(t.remove(5).1, None);
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn misses_and_empty() {
        let mut t = HashTable::new(4);
        assert!(t.is_empty());
        assert_eq!(t.lookup(42).1, None);
        assert_eq!(t.remove(42).1, None);
        t.insert(1, 1);
        assert!(!t.is_empty());
        assert!(t.load_factor() > 0.0);
    }

    #[test]
    fn costs_grow_with_chain_length() {
        let mut t = HashTable::new(1); // Everything in one bucket.
        for k in 0..32u64 {
            t.insert(k, k);
        }
        let (cost_first, _) = t.lookup(0);
        let (cost_last, _) = t.lookup(31);
        assert!(
            cost_last > cost_first || cost_last > OP_BASE_NS + PROBE_NS,
            "walking a longer chain must cost more"
        );
    }

    #[test]
    fn matches_std_hashmap_model() {
        use std::collections::HashMap;
        let mut t = HashTable::new(64);
        let mut m = HashMap::new();
        let mut x = 12345u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 512;
            match x % 3 {
                0 => assert_eq!(t.insert(key, x).1, m.insert(key, x)),
                1 => assert_eq!(t.lookup(key).1, m.get(&key).copied()),
                _ => assert_eq!(t.remove(key).1, m.remove(&key)),
            }
            assert_eq!(t.len(), m.len());
        }
    }
}
