//! Table rendering and results persistence for the figure binaries.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A sweep result: one row per thread count, one column per series.
pub struct Report {
    title: String,
    unit: String,
    series: Vec<String>,
    rows: Vec<(u32, Vec<f64>)>,
}

impl Report {
    /// Starts a report with the given series (column) names.
    pub fn new(title: &str, unit: &str, series: &[&str]) -> Self {
        Report {
            title: title.to_string(),
            unit: unit.to_string(),
            series: series.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one sweep point.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the series count.
    pub fn push(&mut self, threads: u32, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "column count mismatch");
        self.rows.push((threads, values));
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[(u32, Vec<f64>)] {
        &self.rows
    }

    /// Value of `series` at `threads`, if recorded.
    pub fn value(&self, threads: u32, series: &str) -> Option<f64> {
        let col = self.series.iter().position(|s| s == series)?;
        self.rows
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, v)| v[col])
    }

    /// Renders a GitHub-style markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} ({})", self.title, self.unit);
        let _ = write!(out, "| threads |");
        for s in &self.series {
            let _ = write!(out, " {s} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (t, vals) in &self.rows {
            let _ = write!(out, "| {t} |");
            for v in vals {
                let _ = write!(out, " {v:.2} |");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV (`threads,series1,series2,…`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "threads");
        for s in &self.series {
            let _ = write!(out, ",{s}");
        }
        let _ = writeln!(out);
        for (t, vals) in &self.rows {
            let _ = write!(out, "{t}");
            for v in vals {
                let _ = write!(out, ",{v:.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the CSV under `results/<name>.csv` (repo root when run via
    /// cargo) and returns the path.
    pub fn save_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = std::env::var("C3_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
        std::fs::create_dir_all(&dir)?;
        let path = PathBuf::from(dir).join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("demo", "ops/msec", &["a", "b"]);
        r.push(1, vec![1.0, 2.0]);
        r.push(8, vec![3.5, 4.25]);
        r
    }

    #[test]
    fn markdown_and_csv_shape() {
        let r = sample();
        let md = r.to_markdown();
        assert!(md.contains("| threads | a | b |"));
        assert!(md.contains("| 8 | 3.50 | 4.25 |"));
        let csv = r.to_csv();
        assert!(csv.starts_with("threads,a,b\n"));
        assert!(csv.contains("8,3.5000,4.2500"));
    }

    #[test]
    fn value_lookup() {
        let r = sample();
        assert_eq!(r.value(8, "b"), Some(4.25));
        assert_eq!(r.value(8, "z"), None);
        assert_eq!(r.value(9, "a"), None);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn column_mismatch_panics() {
        let mut r = Report::new("x", "u", &["a"]);
        r.push(1, vec![1.0, 2.0]);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("c3_report_test");
        std::env::set_var("C3_RESULTS_DIR", &dir);
        let path = sample().save_csv("unit_test_report").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("threads,a,b"));
        std::env::remove_var("C3_RESULTS_DIR");
    }
}
