//! Parallel, deterministic sweep runner shared by the figure binaries.
//!
//! Every sweep point — one (thread-count × series × seed) DES run — is an
//! independent single-threaded simulation: all state lives behind the
//! simulator's own `Rc`s, and a point's value depends only on its inputs.
//! Points can therefore be computed on separate worker threads and
//! reassembled by input index, producing output byte-identical to a serial
//! run while the wall clock drops by roughly the host core count.
//!
//! Workers pull point indices from a shared atomic counter (work stealing
//! by index), so a slow point — high thread counts simulate more events —
//! does not stall the queue behind it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread count: `C3_BENCH_WORKERS` if set, otherwise the host's
/// available parallelism. Always at least 1.
pub fn workers() -> usize {
    std::env::var("C3_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Runs `point` over every element of `points` on up to `workers` threads
/// and returns the results in input order, regardless of completion order.
///
/// # Panics
///
/// Propagates a panic from any worker (the sweep is aborted).
pub fn run_points_with<P, R, F>(points: &[P], workers: usize, point: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let workers = workers.clamp(1, points.len().max(1));
    if workers == 1 {
        return points.iter().map(&point).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(p) = points.get(i) else { break };
                        got.push((i, point(p)));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = Vec::with_capacity(points.len());
    out.resize_with(points.len(), || None);
    for (i, r) in parts.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every point computed"))
        .collect()
}

/// [`run_points_with`] using the [`workers`] default.
pub fn run_points<P, R, F>(points: &[P], point: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    run_points_with(points, workers(), point)
}

/// One figure sweep: for every thread count and every series index in
/// `0..n_series`, runs `point(threads, series, seed)` for each seed and
/// averages, fanning all individual runs across the worker pool. Returns
/// `(threads, per-series averages)` rows in thread-count order.
///
/// The seed average uses the same left-to-right summation as the previous
/// serial loops, so the emitted CSVs are bit-identical.
pub fn sweep_rows<F>(
    threads: &[u32],
    n_series: usize,
    seeds: &[u64],
    point: F,
) -> Vec<(u32, Vec<f64>)>
where
    F: Fn(u32, usize, u64) -> f64 + Sync,
{
    let mut points = Vec::with_capacity(threads.len() * n_series * seeds.len());
    for &n in threads {
        for s in 0..n_series {
            for &sd in seeds {
                points.push((n, s, sd));
            }
        }
    }
    let vals = run_points(&points, |&(n, s, sd)| point(n, s, sd));
    let mut it = vals.into_iter();
    threads
        .iter()
        .map(|&n| {
            let row = (0..n_series)
                .map(|_| {
                    seeds.iter().map(|_| it.next().unwrap()).sum::<f64>() / seeds.len() as f64
                })
                .collect();
            (n, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let points: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 7] {
            let out = run_points_with(&points, workers, |&p| p * p);
            assert_eq!(out, points.iter().map(|p| p * p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // Float math per point, compared exactly: reassembly must not
        // change any value or its position.
        let points: Vec<(u32, u64)> = (1..40).map(|i| (i, u64::from(i) * 7)).collect();
        let f = |&(n, sd): &(u32, u64)| (f64::from(n) * 0.1).sin() + sd as f64 / 3.0;
        let serial = run_points_with(&points, 1, f);
        let parallel = run_points_with(&points, 5, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_points_are_fine() {
        let out: Vec<u32> = run_points_with(&[] as &[u32], 4, |&p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn sweep_rows_averages_seeds_in_order() {
        let rows = sweep_rows(&[1, 2], 2, &[10, 20], |n, s, sd| {
            f64::from(n) * 100.0 + s as f64 * 10.0 + sd as f64
        });
        assert_eq!(
            rows,
            vec![
                (1, vec![115.0, 125.0]),
                (2, vec![215.0, 225.0]),
            ]
        );
    }

    #[test]
    fn real_simulations_are_deterministic_across_workers() {
        // A tiny DES run per point: the actual property the figure
        // binaries rely on.
        let run = |seed: u64| {
            let sim = ksim::SimBuilder::new().seed(seed).build();
            for cpu in 0..4u32 {
                sim.spawn_on(ksim::CpuId(cpu), move |t| async move {
                    for _ in 0..20 {
                        t.advance(10 + t.rng_u64() % 31).await;
                    }
                });
            }
            sim.run().trace_hash
        };
        let points: Vec<u64> = (0..12).collect();
        let serial = run_points_with(&points, 1, |&sd| run(sd));
        let parallel = run_points_with(&points, 4, |&sd| run(sd));
        assert_eq!(serial, parallel);
    }
}
