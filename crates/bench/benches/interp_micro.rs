//! Prepared-vs-legacy interpreter microbenches — the measurement behind
//! `BENCH_interp.json`.
//!
//! Three verified programs of increasing memory traffic run on both
//! engines: the Fig. 2 NUMA policy (context loads), a pure ALU chain
//! (dispatch-bound), and a map lookup/update mix (helper-bound). Each
//! program's executed-instruction count is printed so ns/insn can be
//! computed from the reported medians. `prepare` itself is measured too:
//! it is a one-time cost paid at load, not per invocation.

use std::sync::Arc;

use cbpf::ctx::CtxLayout;
use cbpf::helpers::{FixedEnv, HelperId};
use cbpf::insn::{AluOp, JmpOp, MemSize, Reg};
use cbpf::interp::{run_with_budget, DEFAULT_BUDGET};
use cbpf::map::{Map, MapDef, MapKind};
use cbpf::opt::OptConfig;
use cbpf::program::{Program, ProgramBuilder};
use cbpf::ExecTier;
use concord::hookctx;
use criterion::{criterion_group, criterion_main, Criterion};
use locks::hooks::{CmpNodeCtx, NodeView};

fn numa_program() -> Program {
    let c = concord::Concord::new();
    let loaded = c.load(concord::policies::numa_aware()).unwrap();
    loaded.prog.program().as_ref().clone()
}

/// A loop-free chain of 64 ALU/immediate instructions plus stack traffic:
/// the dispatch-overhead-dominated case.
fn alu_chain_program() -> Program {
    let mut b = ProgramBuilder::new("alu_chain");
    b.mov_imm(Reg::R0, 1);
    b.ld_imm64(Reg::R1, 0x9e37_79b9_7f4a_7c15);
    for i in 0..20 {
        b.alu(AluOp::Add, Reg::R0, Reg::R1);
        b.alu_imm(AluOp::Xor, Reg::R0, 0x5f5f + i);
        b.alu_imm(AluOp::Lsh, Reg::R0, 7);
        b.alu32_imm(AluOp::Mul, Reg::R0, 31);
    }
    b.store(MemSize::Dw, Reg::R10, -8, Reg::R0);
    b.load(MemSize::Dw, Reg::R0, Reg::R10, -8);
    b.exit();
    b.build().unwrap()
}

/// Map lookup + null check + read-modify-write + update: the helper-bound
/// case.
fn map_mix_program() -> Program {
    let map = Arc::new(Map::new(MapDef {
        name: "counters".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: 8,
    }));
    map.update(&1u32.to_le_bytes(), &0u64.to_le_bytes(), 0)
        .unwrap();
    let mut b = ProgramBuilder::new("map_mix");
    let mid = b.register_map(map);
    b.ldmap(Reg::R1, mid);
    b.store_imm(MemSize::W, Reg::R10, -4, 1);
    b.mov(Reg::R2, Reg::R10);
    b.alu_imm(AluOp::Add, Reg::R2, -4);
    b.call(HelperId::MapLookup);
    b.jmp_imm(JmpOp::Eq, Reg::R0, 0, "miss");
    b.load(MemSize::Dw, Reg::R1, Reg::R0, 0);
    b.alu_imm(AluOp::Add, Reg::R1, 1);
    b.store(MemSize::Dw, Reg::R0, 0, Reg::R1);
    b.mov_imm(Reg::R0, 1);
    b.exit();
    b.label("miss");
    b.mov_imm(Reg::R0, 0);
    b.exit();
    b.build().unwrap()
}

fn bench_pair(
    g: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    prog: &Program,
    layout: &CtxLayout,
    make_ctx: &dyn Fn() -> Vec<u8>,
) {
    let env = FixedEnv::new().cpu(12).numa(1);
    // One context buffer reused across iterations: re-running on the
    // previous run's output is idempotent for these programs, and keeping
    // marshalling out of the loop isolates interpretation cost (the
    // marshal-included path is measured in vm_micro).
    let mut ctx = make_ctx();
    let insns = run_with_budget(prog, &mut ctx, layout, &env, DEFAULT_BUDGET)
        .unwrap()
        .insns;
    println!("{name}: {insns} insns/run");

    g.bench_function(&format!("{name}/legacy"), |b| {
        b.iter(|| run_with_budget(prog, &mut ctx, layout, &env, DEFAULT_BUDGET).unwrap())
    });
    // Tiers are pinned with run_tier from here on: criterion's warmup
    // alone crosses the hot-invocation threshold, so an unpinned `run`
    // would silently measure the compiled tier on every row.
    //
    // Lowering alone vs lowering + the prepare-time optimizer, so the
    // optimizer's contribution is separable from the dispatch win.
    let unopt = prog.prepare_with(layout, OptConfig::none());
    g.bench_function(&format!("{name}/prepared_noopt"), |b| {
        b.iter(|| {
            unopt
                .run_tier(ExecTier::Interp, &mut ctx, &env, DEFAULT_BUDGET)
                .unwrap()
        })
    });
    let prepared = prog.prepare(layout);
    g.bench_function(&format!("{name}/prepared"), |b| {
        b.iter(|| {
            prepared
                .run_tier(ExecTier::Interp, &mut ctx, &env, DEFAULT_BUDGET)
                .unwrap()
        })
    });
    g.bench_function(&format!("{name}/jit"), |b| {
        b.iter(|| {
            prepared
                .run_tier(ExecTier::Jit, &mut ctx, &env, DEFAULT_BUDGET)
                .unwrap()
        })
    });
}

fn bench_interp_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp_micro");

    let numa = numa_program();
    let layout = hookctx::cmp_node_layout();
    let view = |cpu: u32| NodeView {
        tid: 1,
        cpu,
        socket: cpu / 10,
        prio: 0,
        cs_hint: 0,
        held_locks: 0,
        wait_start_ns: 0,
    };
    let ctx = CmpNodeCtx {
        lock_id: 1,
        shuffler: view(12),
        curr: view(15),
    };
    bench_pair(&mut g, "numa_policy", &numa, layout, &|| {
        hookctx::marshal_cmp_node(&ctx)
    });

    let alu = alu_chain_program();
    let empty = CtxLayout::empty();
    bench_pair(&mut g, "alu_chain", &alu, &empty, &Vec::new);

    let map_mix = map_mix_program();
    bench_pair(&mut g, "map_mix", &map_mix, &empty, &Vec::new);

    // One-time lowering cost, for the load path.
    g.bench_function("prepare_numa_policy", |b| b.iter(|| numa.prepare(layout)));
    // One-time jit compile cost on top of an already-prepared program.
    let prepared_numa = numa.prepare(layout);
    g.bench_function("compile_jit_numa_policy", |b| {
        b.iter(|| prepared_numa.compile_jit())
    });
    g.finish();
}

criterion_group!(benches, bench_interp_micro);
criterion_main!(benches);
