//! Policy-map operation costs (lookup/update per kind), on the
//! allocation-free slot API policies use plus the host-side copy path.
//! 8-thread contention costs live in the `maps_contend` bin (criterion
//! here is single-threaded).

use cbpf::map::{Map, MapDef, MapKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_maps(c: &mut Criterion) {
    let mut g = c.benchmark_group("maps");

    let array = Map::new(MapDef {
        name: "a".into(),
        kind: MapKind::Array,
        key_size: 4,
        value_size: 8,
        max_entries: 256,
    });
    let k = 7u32.to_le_bytes();
    g.bench_function("array_lookup", |b| b.iter(|| array.lookup_slot(&k, 0)));
    g.bench_function("array_update", |b| {
        b.iter(|| array.update(&k, &42u64.to_le_bytes(), 0).unwrap())
    });
    let slot = array.lookup_slot(&k, 0).unwrap();
    g.bench_function("array_value_rmw", |b| {
        // The fused-idiom body: load a word, bump it, store it back.
        b.iter(|| {
            let v = array.value_load(slot, 0, 8).unwrap();
            array.value_store(slot, 0, 8, v + 1)
        })
    });

    let hash = Map::new(MapDef {
        name: "h".into(),
        kind: MapKind::Hash,
        key_size: 8,
        value_size: 8,
        max_entries: 1024,
    });
    for i in 0..512u64 {
        hash.update(&i.to_le_bytes(), &i.to_le_bytes(), 0).unwrap();
    }
    let hk = 123u64.to_le_bytes();
    g.bench_function("hash_lookup_hit", |b| b.iter(|| hash.lookup_slot(&hk, 0)));
    let miss = 9999u64.to_le_bytes();
    g.bench_function("hash_lookup_miss", |b| b.iter(|| hash.lookup_slot(&miss, 0)));
    g.bench_function("hash_lookup_copy", |b| b.iter(|| hash.lookup_copy(&hk, 0)));
    g.bench_function("hash_update_existing", |b| {
        b.iter(|| hash.update(&hk, &7u64.to_le_bytes(), 0).unwrap())
    });

    let percpu = Map::with_cpus(
        MapDef {
            name: "p".into(),
            kind: MapKind::PerCpuArray,
            key_size: 4,
            value_size: 8,
            max_entries: 8,
        },
        80,
    );
    let pk = 0u32.to_le_bytes();
    g.bench_function("percpu_lookup", |b| b.iter(|| percpu.lookup_slot(&pk, 5)));
    g.bench_function("percpu_sum_80cpus", |b| b.iter(|| percpu.percpu_sum(&pk)));
    g.finish();
}

criterion_group!(benches, bench_maps);
criterion_main!(benches);
