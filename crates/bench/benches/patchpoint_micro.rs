//! Livepatch patch-point overhead: the epoch-pinned indirect call against
//! a direct call, and the cost of swapping under readers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use livepatch::PatchPoint;

type F = Arc<dyn Fn(u64) -> u64 + Send + Sync>;

fn bench_patchpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("patchpoint");
    let direct: F = Arc::new(|x| x.wrapping_mul(2654435761));
    g.bench_function("direct_call", |b| b.iter(|| direct(42)));

    let point: PatchPoint<F> = PatchPoint::new(Arc::new(|x| x.wrapping_mul(2654435761)));
    g.bench_function("patched_call", |b| b.iter(|| (point.get())(42)));

    g.bench_function("get_only", |b| b.iter(|| drop(point.get())));

    g.bench_function("replace", |b| {
        b.iter(|| point.replace(Arc::new(|x| x.wrapping_add(1))))
    });

    // An Option slot with an active-flag guard, as the lock hook tables use.
    let hooks = locks::hooks::ShflHooks::new();
    let ctx = locks::hooks::LockEventCtx {
        lock_id: 1,
        tid: 1,
        cpu: 0,
        socket: 0,
        now_ns: 0,
        owner_tid: 0,
    };
    g.bench_function("vacant_hook_fire", |b| {
        b.iter(|| hooks.fire_event(locks::hooks::HookKind::LockAcquired, &ctx))
    });
    hooks.install_event(locks::hooks::HookKind::LockAcquired, Arc::new(|_| {}));
    g.bench_function("installed_noop_hook_fire", |b| {
        b.iter(|| hooks.fire_event(locks::hooks::HookKind::LockAcquired, &ctx))
    });
    g.finish();
}

criterion_group!(benches, bench_patchpoint);
criterion_main!(benches);
