//! Uncontended lock/unlock latency of the real-thread lock zoo, and the
//! cost a vacant (unpatched) hook table adds to the shuffle lock —
//! supporting data for DESIGN.md's claim that the no-policy fast path is
//! one relaxed load.

use criterion::{criterion_group, criterion_main, Criterion};
use locks::{
    Bravo, ClhLock, CnaLock, McsLock, NeutralRwLock, RawLock, RawRwLock, ShflLock, ShflMutex,
    TasLock, TicketLock,
};

fn bench_mutexes(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_lock_unlock");
    locks::topo::pin_thread(0);

    let tas = TasLock::new();
    g.bench_function("tas", |b| b.iter(|| drop(tas.lock())));
    let ticket = TicketLock::new();
    g.bench_function("ticket", |b| b.iter(|| drop(ticket.lock())));
    let mcs = McsLock::new();
    g.bench_function("mcs", |b| b.iter(|| drop(mcs.lock())));
    let clh = ClhLock::new();
    g.bench_function("clh", |b| b.iter(|| drop(clh.lock())));
    let cna = CnaLock::new();
    g.bench_function("cna", |b| b.iter(|| drop(cna.lock())));
    let shfl = ShflLock::new();
    g.bench_function("shfl_fifo", |b| b.iter(|| drop(shfl.lock())));
    let shfl_numa = ShflLock::with_numa_policy();
    g.bench_function("shfl_numa_policy", |b| b.iter(|| drop(shfl_numa.lock())));
    let mutex = ShflMutex::new();
    g.bench_function("shfl_mutex", |b| b.iter(|| drop(mutex.lock())));
    g.finish();
}

fn bench_rwlocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_rwlock");
    locks::topo::pin_thread(0);

    let neutral = NeutralRwLock::new();
    g.bench_function("neutral_read", |b| b.iter(|| drop(neutral.read())));
    g.bench_function("neutral_write", |b| b.iter(|| drop(neutral.write())));
    let bravo = Bravo::new(NeutralRwLock::new());
    g.bench_function("bravo_read_biased", |b| b.iter(|| drop(bravo.read())));
    let bravo_off = Bravo::new(NeutralRwLock::new());
    bravo_off.set_bias_enabled(false);
    g.bench_function("bravo_read_unbiased", |b| b.iter(|| drop(bravo_off.read())));
    g.finish();
}

criterion_group!(benches, bench_mutexes, bench_rwlocks);
criterion_main!(benches);
