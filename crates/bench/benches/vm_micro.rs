//! Policy-engine microbenches: interpreter dispatch, verifier throughput,
//! end-to-end load (assemble + verify) — the §6 "overhead in applying
//! policies" discussion, quantified.

use std::sync::Arc;

use cbpf::asm::assemble;
use cbpf::helpers::FixedEnv;
use cbpf::interp::run_program;
use cbpf::verifier::verify;
use concord::hookctx;
use criterion::{criterion_group, criterion_main, Criterion};
use locks::hooks::{CmpNodeCtx, HookKind, NodeView};

fn numa_program() -> cbpf::program::Program {
    let c = concord::Concord::new();
    let loaded = c.load(concord::policies::numa_aware()).unwrap();
    loaded.prog.program().as_ref().clone()
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    let prog = numa_program();
    let layout = hookctx::cmp_node_layout();
    let env = FixedEnv::new().cpu(12).numa(1);
    let view = |cpu: u32| NodeView {
        tid: 1,
        cpu,
        socket: cpu / 10,
        prio: 0,
        cs_hint: 0,
        held_locks: 0,
        wait_start_ns: 0,
    };
    let ctx = CmpNodeCtx {
        lock_id: 1,
        shuffler: view(12),
        curr: view(15),
    };

    g.bench_function("interp_numa_policy", |b| {
        b.iter(|| {
            let mut buf = hookctx::marshal_cmp_node(&ctx);
            run_program(&prog, &mut buf, layout, &env).unwrap()
        })
    });

    g.bench_function("marshal_cmp_node_ctx", |b| {
        b.iter(|| hookctx::marshal_cmp_node(&ctx))
    });

    g.bench_function("verify_numa_policy", |b| {
        b.iter(|| verify(&prog, layout).unwrap())
    });

    g.bench_function("assemble_and_verify", |b| {
        b.iter(|| {
            let p = assemble("mov r0, 1\nexit").unwrap();
            verify(&p, &cbpf::ctx::CtxLayout::empty()).unwrap();
        })
    });

    // The C-style frontend: compile alone, and compile + verify.
    let numa_c = r#"
        if (curr_socket == shuffler_socket)
            return 1;
        return 0;
    "#;
    g.bench_function("dsl_compile", |b| {
        b.iter(|| cbpf::dsl::compile("numa", numa_c, layout).unwrap())
    });
    g.bench_function("dsl_compile_and_verify", |b| {
        b.iter(|| {
            let p = cbpf::dsl::compile("numa", numa_c, layout).unwrap();
            verify(&p, layout).unwrap()
        })
    });

    // Full hook-closure invocation path, as the real lock calls it.
    let concord = concord::Concord::new();
    let loaded = concord.load(concord::policies::numa_aware()).unwrap();
    let policy = concord::BytecodePolicy::new(
        loaded.prog,
        HookKind::CmpNode,
        Arc::new(concord::env::RealEnv::new()),
    );
    let f = policy.as_cmp_node().unwrap();
    g.bench_function("hook_closure_end_to_end", |b| b.iter(|| f(&ctx)));
    g.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
