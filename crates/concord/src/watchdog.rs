//! The hazard watchdog: profiler-driven hazard detection with auto-revert.
//!
//! Table 1 classifies what each hook can hazard — fairness (`cmp_node`,
//! `skip_shuffle`), performance (`schedule_waiter`) or critical-section
//! length (the event hooks). The verifier cannot rule these out: they are
//! *semantic* regressions a well-formed policy can cause. The watchdog
//! closes the loop at runtime:
//!
//! 1. before the policy attaches, the dynamic profiler (§3.2) records a
//!    **baseline window** of acquisition-latency and hold-time behavior;
//! 2. with the policy live, the watchdog periodically compares the
//!    current window against the baseline ([`detect`]);
//! 3. a detected hazard **auto-reverts** the policy — a livepatch revert
//!    transaction pulls it without disturbing other patches — and files a
//!    quarantine record naming the hazard.
//!
//! The detection core is policy-agnostic and works on any pair of
//! [`WindowStats`], so the simulator benches (`table1_api_hazards`) reuse
//! it on virtual-time histograms.

use locks::hooks::Hazard;

use ksim::Histogram;

use crate::containment::QuarantineRecord;
use crate::profiler::{LockProfile, Profiler};
use crate::workflow::{AttachHandle, Concord, ConcordError};

/// Summary of one observation window, distilled from the profiler's
/// wait-time and hold-time histograms.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowStats {
    /// Acquisitions observed in the window.
    pub acquisitions: u64,
    /// Mean acquisition wait (ns).
    pub wait_mean: f64,
    /// Approximate wait-time standard deviation (from log2 bucket
    /// midpoints — the fairness spread signal).
    pub wait_stddev: f64,
    /// p50 acquisition wait (ns).
    pub wait_p50: u64,
    /// p99 acquisition wait (ns).
    pub wait_p99: u64,
    /// Worst acquisition wait (ns) — the starvation signal.
    pub wait_max: u64,
    /// Mean hold time (ns) — the critical-section signal.
    pub hold_mean: f64,
    /// p50 hold time (ns).
    pub hold_p50: u64,
}

impl WindowStats {
    /// Distills a window from a profiler's per-lock profile.
    pub fn from_profile(p: &LockProfile) -> Self {
        WindowStats::from_hists(&p.wait_hist(), &p.hold_hist())
    }

    /// Distills a window from raw wait/hold histograms (the simulator
    /// path).
    pub fn from_hists(wait: &Histogram, hold: &Histogram) -> Self {
        WindowStats {
            acquisitions: wait.count(),
            wait_mean: wait.mean(),
            wait_stddev: hist_stddev(wait),
            wait_p50: wait.quantile(0.5),
            wait_p99: wait.quantile(0.99),
            wait_max: wait.max(),
            hold_mean: hold.mean(),
            hold_p50: hold.quantile(0.5),
        }
    }
}

/// Approximate standard deviation of a log2 histogram, treating every
/// sample as sitting at its bucket midpoint (1.5 × the bucket floor).
/// Exact to within the bucketing error, which is all the hazard
/// thresholds need.
fn hist_stddev(h: &Histogram) -> f64 {
    let n = h.count();
    if n < 2 {
        return 0.0;
    }
    let mean = h.mean();
    let mut m2 = 0.0;
    for (floor, count) in h.nonzero_buckets() {
        let mid = if floor == 0 { 0.5 } else { floor as f64 * 1.5 };
        m2 += count as f64 * (mid - mean) * (mid - mean);
    }
    (m2 / n as f64).sqrt()
}

/// Watchdog thresholds — multiplicative growth factors over the
/// pre-attach baseline.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Wait-time spread growth (stddev, or worst-case wait) that flags a
    /// fairness hazard: some waiters are being starved relative to the
    /// unpatched lock.
    pub fairness_factor: f64,
    /// Mean-wait growth that flags a performance hazard: everyone is
    /// slower.
    pub slowdown_factor: f64,
    /// Hold-time growth that flags a critical-section hazard: the policy
    /// is doing work inside the lock.
    pub cs_factor: f64,
    /// Minimum acquisitions in the current window before the watchdog
    /// judges at all (small windows are noise).
    pub min_acquisitions: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            fairness_factor: 4.0,
            slowdown_factor: 4.0,
            cs_factor: 3.0,
            min_acquisitions: 200,
        }
    }
}

/// A detected hazard: which Table 1 class fired and the numbers behind
/// it.
#[derive(Clone, Debug)]
pub struct HazardReport {
    /// The hazard class.
    pub hazard: Hazard,
    /// Human-readable account (goes into the quarantine reason).
    pub detail: String,
    /// The pre-attach window.
    pub baseline: WindowStats,
    /// The window that fired.
    pub current: WindowStats,
}

/// Compares a window against its baseline. Checks run in Table 1 order
/// of severity: critical-section growth, then fairness spread, then
/// uniform slowdown; the first to fire wins.
pub fn detect(
    baseline: &WindowStats,
    current: &WindowStats,
    cfg: &WatchdogConfig,
) -> Option<HazardReport> {
    if current.acquisitions < cfg.min_acquisitions {
        return None;
    }
    // An idle baseline can't be regressed against; floor its signals at
    // one sample's worth of noise instead of dividing by zero.
    let base_hold = baseline.hold_mean.max(1.0);
    let base_wait = baseline.wait_mean.max(1.0);
    // Fairness signals are normalized by the window's own center, so a
    // uniform slowdown (everyone × k) moves neither: cov = stddev/mean,
    // starvation = worst wait / median wait.
    let cov = |w: &WindowStats| w.wait_stddev / w.wait_mean.max(1.0);
    let starvation = |w: &WindowStats| w.wait_max as f64 / w.wait_p50.max(1) as f64;
    let base_cov = cov(baseline).max(0.05);
    let base_starvation = starvation(baseline).max(1.0);

    let report = |hazard, detail| {
        Some(HazardReport {
            hazard,
            detail,
            baseline: *baseline,
            current: *current,
        })
    };
    if current.hold_mean > base_hold * cfg.cs_factor {
        return report(
            Hazard::CriticalSection,
            format!(
                "mean hold time grew {:.1}x (baseline {:.0} ns, now {:.0} ns)",
                current.hold_mean / base_hold,
                baseline.hold_mean,
                current.hold_mean
            ),
        );
    }
    if cov(current) > base_cov * cfg.fairness_factor
        || starvation(current) > base_starvation * cfg.fairness_factor
    {
        return report(
            Hazard::Fairness,
            format!(
                "wait spread grew: cov {:.2} -> {:.2}, worst/median {:.1} -> {:.1} \
                 (worst wait {} -> {} ns)",
                base_cov,
                cov(current),
                base_starvation,
                starvation(current),
                baseline.wait_max,
                current.wait_max
            ),
        );
    }
    if current.wait_mean > base_wait * cfg.slowdown_factor {
        return report(
            Hazard::Performance,
            format!(
                "mean wait grew {:.1}x (baseline {:.0} ns, now {:.0} ns)",
                current.wait_mean / base_wait,
                baseline.wait_mean,
                current.wait_mean
            ),
        );
    }
    None
}

/// Outcome of a watchdog enforcement pass.
pub enum EnforceOutcome {
    /// No hazard: the policy stays attached and its handle comes back.
    Clean(AttachHandle),
    /// Hazard detected: the policy was auto-reverted and quarantined.
    /// The report is boxed to keep the enum as small as the common
    /// `Clean` case.
    Reverted(Box<HazardReport>, QuarantineRecord),
}

/// A watchdog on one real lock: owns a profiling session and the
/// baseline window.
pub struct LockWatchdog {
    lock: String,
    cfg: WatchdogConfig,
    profiler: Profiler,
    baseline: Option<WindowStats>,
}

impl LockWatchdog {
    /// Attaches profiling hooks to `lock`. Drive representative load,
    /// then call [`LockWatchdog::snapshot_baseline`] *before* attaching
    /// the policy under watch.
    ///
    /// # Errors
    ///
    /// Fails when the lock is unknown or not hookable.
    pub fn arm(concord: &Concord, lock: &str, cfg: WatchdogConfig) -> Result<Self, ConcordError> {
        let profiler = Profiler::attach(concord, &[lock])?;
        Ok(LockWatchdog {
            lock: lock.to_string(),
            cfg,
            profiler,
            baseline: None,
        })
    }

    /// Freezes the pre-attach window as the baseline and restarts
    /// profiling, so the watched window contains only post-attach
    /// behavior. Call between the baseline load and the policy attach.
    ///
    /// # Errors
    ///
    /// Fails if the lock was unregistered since [`LockWatchdog::arm`].
    pub fn snapshot_baseline(&mut self, concord: &Concord) -> Result<WindowStats, ConcordError> {
        let stats = self.current();
        self.profiler.detach(concord)?;
        self.profiler = Profiler::attach(concord, &[&self.lock])?;
        self.baseline = Some(stats);
        Ok(stats)
    }

    /// The frozen baseline, once snapshot.
    pub fn baseline(&self) -> Option<WindowStats> {
        self.baseline
    }

    /// The current observation window.
    pub fn current(&self) -> WindowStats {
        match self.profiler.profile(&self.lock) {
            Some(p) => WindowStats::from_profile(p),
            None => WindowStats::default(),
        }
    }

    /// Checks the current window against the baseline (no action taken).
    /// Every judgment — clean or hazardous — lands in the trace plane as
    /// a [`telemetry::EventKind::WatchdogVerdict`] record when armed.
    pub fn check(&self) -> Option<HazardReport> {
        let baseline = self.baseline?;
        let current = self.current();
        let verdict = detect(&baseline, &current, &self.cfg);
        if verdict.is_some() {
            telemetry::metrics()
                .counter("c3_watchdog_hazards_total")
                .inc();
        }
        if telemetry::armed() {
            let hazard_class = match verdict.as_ref().map(|r| r.hazard) {
                None => 0,
                Some(Hazard::Fairness) => 1,
                Some(Hazard::Performance) => 2,
                Some(Hazard::CriticalSection) => 3,
            };
            telemetry::emit(
                telemetry::EventKind::WatchdogVerdict,
                locks::now_ns(),
                locks::topo::current_cpu() as u16,
                telemetry::event::fnv64(&self.lock),
                hazard_class,
                current.acquisitions,
                u64::from(verdict.is_some()),
            );
        }
        verdict
    }

    /// One enforcement pass: on a hazard, auto-reverts the policy behind
    /// `handle` (livepatch revert transaction — the watchdog's own
    /// profiling patches survive) and files a quarantine record.
    ///
    /// # Errors
    ///
    /// Returns [`ConcordError::Patch`] when a hazard fired but the patch
    /// was already gone.
    pub fn enforce(
        &self,
        concord: &Concord,
        handle: AttachHandle,
    ) -> Result<EnforceOutcome, ConcordError> {
        match self.check() {
            None => Ok(EnforceOutcome::Clean(handle)),
            Some(report) => {
                let reason = format!("watchdog: {:?} hazard — {}", report.hazard, report.detail);
                let record = concord.quarantine(handle, reason)?;
                Ok(EnforceOutcome::Reverted(Box::new(report), record))
            }
        }
    }

    /// Detaches the profiling hooks; the watchdog is done.
    ///
    /// # Errors
    ///
    /// Propagates the patch-stack error if a profiling handle no longer
    /// reverts (see [`Profiler::detach`]).
    pub fn disarm(mut self, concord: &Concord) -> Result<(), ConcordError> {
        self.profiler.detach(concord).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use locks::hooks::HookKind;
    use locks::{RawLock, ShflLock};

    use crate::workflow::PolicySpec;

    fn filled(vals: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in vals {
            h.record(v);
        }
        h
    }

    #[test]
    fn detect_flags_each_hazard_class() {
        let cfg = WatchdogConfig {
            min_acquisitions: 4,
            ..WatchdogConfig::default()
        };
        let wait = filled(&[100, 110, 120, 130]);
        let hold = filled(&[50, 50, 60, 60]);
        let base = WindowStats::from_hists(&wait, &hold);
        assert!(detect(&base, &base, &cfg).is_none(), "self vs self is clean");

        // Critical-section growth: hold times balloon.
        let cur = WindowStats::from_hists(&wait, &filled(&[500, 500, 600, 600]));
        let r = detect(&base, &cur, &cfg).expect("cs hazard");
        assert_eq!(r.hazard, Hazard::CriticalSection);
        assert!(r.detail.contains("hold"));

        // Fairness: same mean-ish, huge spread (one starved waiter).
        let cur = WindowStats::from_hists(&filled(&[1, 1, 1, 8_000]), &hold);
        let r = detect(&base, &cur, &cfg).expect("fairness hazard");
        assert_eq!(r.hazard, Hazard::Fairness);

        // Performance: everyone uniformly slower.
        let cur = WindowStats::from_hists(&filled(&[900, 900, 900, 900]), &hold);
        let r = detect(&base, &cur, &cfg).expect("performance hazard");
        assert_eq!(r.hazard, Hazard::Performance);

        // Too few samples: no judgment.
        let tiny = WindowStats::from_hists(&filled(&[9_999]), &hold);
        assert!(detect(&base, &tiny, &cfg).is_none());
    }

    #[test]
    fn hist_stddev_tracks_spread() {
        assert_eq!(hist_stddev(&filled(&[64])), 0.0, "one sample");
        let tight = hist_stddev(&filled(&[64, 64, 64, 64]));
        let wide = hist_stddev(&filled(&[1, 1, 4_096, 4_096]));
        assert!(wide > tight * 10.0, "wide {wide} vs tight {tight}");
    }

    #[test]
    fn watchdog_auto_reverts_cs_hazard_on_real_lock() {
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("watched", Arc::clone(&lock));
        let mut wd = LockWatchdog::arm(
            &c,
            "watched",
            WatchdogConfig {
                cs_factor: 3.0,
                min_acquisitions: 100,
                ..WatchdogConfig::default()
            },
        )
        .unwrap();

        // Baseline: empty critical sections.
        for _ in 0..300 {
            let _g = lock.lock();
        }
        let base = wd.snapshot_baseline(&c).unwrap();
        assert!(base.acquisitions >= 300);

        // Attach a policy that burns time inside the critical section —
        // the lock_acquired hook runs while the lock is held, after the
        // profiler's own (chained) subscriber stamps the acquired time.
        let h = c
            .attach_native_event(
                "watched",
                HookKind::LockAcquired,
                Arc::new(move |_| {
                    std::thread::sleep(std::time::Duration::from_micros(30));
                }),
            )
            .unwrap();
        for _ in 0..300 {
            let _g = lock.lock();
        }
        let outcome = wd.enforce(&c, h).unwrap();
        let (report, record) = match outcome {
            EnforceOutcome::Reverted(rep, rec) => (rep, rec),
            EnforceOutcome::Clean(_) => panic!("hazard must fire"),
        };
        assert_eq!(report.hazard, Hazard::CriticalSection);
        assert!(record.reason.contains("watchdog"));
        assert_eq!(c.registry().quarantines("watched").len(), 1);
        // The policy is gone; only the watchdog's own profiling remains.
        assert_eq!(c.live_patches().len(), 4);
        wd.disarm(&c).unwrap();
        assert!(c.live_patches().is_empty());
    }

    #[test]
    fn clean_policy_survives_enforcement() {
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("ok", Arc::clone(&lock));
        // Generous factors: real-clock noise (a preempted iteration) must
        // not read as a hazard on an uncontended lock.
        let mut wd = LockWatchdog::arm(
            &c,
            "ok",
            WatchdogConfig {
                fairness_factor: 50.0,
                slowdown_factor: 50.0,
                cs_factor: 50.0,
                min_acquisitions: 100,
            },
        )
        .unwrap();
        for _ in 0..500 {
            let _g = lock.lock();
        }
        wd.snapshot_baseline(&c).unwrap();
        let loaded = c
            .load(PolicySpec::from_asm(
                "noop",
                HookKind::CmpNode,
                "mov r0, 0\nexit",
            ))
            .unwrap();
        let h = c.attach("ok", &loaded).unwrap();
        for _ in 0..500 {
            let _g = lock.lock();
        }
        match wd.enforce(&c, h).unwrap() {
            EnforceOutcome::Clean(h) => c.detach(h).unwrap(),
            EnforceOutcome::Reverted(rep, _) => panic!("false positive: {}", rep.detail),
        }
        wd.disarm(&c).unwrap();
    }
}
