//! `c3ctl` — the privileged userspace control plane for Concord.
//!
//! The paper's model is "a privileged userspace process \[that\] modif\[ies\]
//! kernel locks on the fly"; this tool is that process. It hosts a demo
//! registry of named locks, loads policies from `.c` (restricted C) or
//! `.s` (assembly) files, attaches and reverts them while worker threads
//! hammer the locks, and drives the dynamic profiler.
//!
//!     cargo run --release -p concord --bin c3ctl            # interactive
//!     cargo run --release -p concord --bin c3ctl script.c3  # scripted
//!
//! Commands:
//!
//! ```text
//! locks                          list registered locks
//! load <name> <hook> <file>     compile + verify + store a policy
//! policy compile <hook> <src> <out>  compile + verify + seal a wire artifact
//! policy load <name> <hook> <file>   open + re-verify a wire artifact
//! loadsrc <name> <hook> <c-src> one-line C policy, e.g. `return 1;`
//! attach <lock> <policy>        livepatch a loaded policy into a lock
//! detach                        revert the most recent patch
//! patches                       list live patches (bottom → top)
//! profile <lock> [<lock>…]      start profiling the given locks
//! report                        print the profiler report
//! unprofile                     stop profiling
//! hammer <lock> <threads> <n> [hold_us]  acquire/release n times on each
//!                               thread, optionally spinning hold_us µs
//!                               inside the critical section to force
//!                               queueing (and so contended-wait traces)
//! stats <lock>                  shuffle/park statistics
//! store                         list pinned objects
//! trace [on|off|tail [n]|json|save <file>]  arm/disarm/inspect/save the plane
//!   trace tail [n] [--since <ns>] [--lock <name|id>] [--event <kind>]
//! metrics                       dump the metrics registry (Prometheus text)
//! top                           rank locks by trace-plane slow-path activity
//! analyze [<trace-file>]        contention analysis (live drain or saved file)
//! analyze on|off|step           arm/disarm/advance the continuous analyzer
//! blame                         per-(lock, tenant, policy) caused/suffered wait
//! chains                        blocking chains ranked by blocked nanoseconds
//! flame [<out-file>]            flamegraph collapsed stacks for the chains
//! rollout start <policy> <lock>… staged delivery: canary → 50% → full
//! rollout promote               apply + judge the next wave
//! rollout status                where the rollout stands
//! rollout abort [reason…]       roll every applied wave back
//! rollout recover               converge after a crashed controller
//! explore run <fixture> <strategy> [n] [seed]    schedule exploration
//! explore shrink <fixture> <strategy> <out> [n] [seed]  write minimal repro
//! explore replay <file>         replay a repro artifact, verify pinning
//! fleet start [hosts]           open a fleet session: CAS store + N hosts
//! fleet publish <policy> <tenant>… [expect <head>]  seal + publish a version
//! fleet status                  store head, per-host versions, lag
//! fleet hosts                   per-host serving state and dedupe counts
//! fleet reconcile               anti-entropy: push the head to laggards
//! help | quit
//! ```
//!
//! The `rollout`, `quarantines <lock>`, `explore`, `policy`, `fleet`,
//! `analyze`, `blame`, `chains` and `flame` families report **typed**
//! errors and, in
//! scripted mode, make the process exit nonzero on failure — they are the
//! commands CI gates on. Legacy commands keep the historical
//! always-exit-0 contract.
//!
//! Setting `C3_TRACE=1` in the environment arms the trace plane at
//! startup, so every lock transition, hook span and policy-emitted event
//! is captured from the first acquisition.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::sync::Arc;

use cbpf::store::VerifiedProgram;
use concord::fleet::{Delta, DeliverOutcome, HostState, PolicyStore, StoreError};
use concord::hookctx;
use concord::profiler::Profiler;
use concord::rollout::{
    BreakerMap, ChaosInjector, HealthConfig, MetricsHealth, RealTarget, RecoverOutcome, Rollout,
    RolloutLog, RolloutOutcome, RolloutPlan, WaveOutcome,
};
use concord::{
    explore, BreakerConfig, Concord, ConcordError, ExploreConfig, ExploreError, Fixture,
    LoadedPolicy, PolicySpec, Repro, RolloutError, StrategySpec,
};
use locks::hooks::HookKind;
use locks::{Bravo, NeutralRwLock, RawLock, ShflLock, ShflMutex};

/// Typed failures for the gating control surface (`rollout`,
/// `quarantines <lock>`). Unlike the legacy free-text errors these flip
/// the scripted-mode exit code, so CI can gate on them.
#[derive(Debug)]
enum CtlError {
    Usage(&'static str),
    UnknownLock(String),
    UnknownPolicy(String),
    UnknownHook(String),
    Rollout(RolloutError),
    Explore(ExploreError),
    /// A wire artifact failed to open (tamper, context drift, or
    /// re-verification failure on this host).
    Wire(cbpf::WireError),
    /// Compile/verify failure on the `policy` surface.
    Policy(ConcordError),
    /// A trace failed to parse or the analysis surface was misused
    /// (e.g. `blame` before any `analyze`).
    Analyze(String),
    /// The fleet control plane refused an operation: a stale
    /// conditional publish (CAS head moved), a missing session, or a
    /// store-level failure surfaced to the operator.
    Fleet(String),
    Io(String),
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::Usage(u) => write!(f, "usage: {u}"),
            CtlError::UnknownLock(l) => write!(f, "unknown lock `{l}`"),
            CtlError::UnknownPolicy(p) => {
                write!(f, "no loaded policy `{p}` (use `load` first)")
            }
            CtlError::UnknownHook(h) => write!(f, "unknown hook `{h}`"),
            CtlError::Rollout(e) => write!(f, "{e}"),
            CtlError::Explore(e) => write!(f, "{e}"),
            CtlError::Wire(e) => write!(f, "wire artifact rejected: {e}"),
            CtlError::Policy(e) => write!(f, "{e}"),
            CtlError::Analyze(e) => write!(f, "{e}"),
            CtlError::Fleet(e) => write!(f, "fleet: {e}"),
            CtlError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<RolloutError> for CtlError {
    fn from(e: RolloutError) -> Self {
        CtlError::Rollout(e)
    }
}

impl From<ExploreError> for CtlError {
    fn from(e: ExploreError) -> Self {
        CtlError::Explore(e)
    }
}

impl From<StoreError> for CtlError {
    fn from(e: StoreError) -> Self {
        CtlError::Fleet(e.to_string())
    }
}

/// One in-flight (or finished) rollout, kept across commands so
/// `promote`/`status`/`abort`/`recover` act on the same intent log.
struct CtlRollout {
    log: RolloutLog,
    policy: String,
    breakers: BreakerMap,
}

/// One fleet session: the CAS-versioned policy store plus a handful of
/// lock hosts fed synchronously from the CLI (the simulated lossy
/// transport lives in `concord::fleet::world` and the chaos gate; here
/// the operator *is* the network, so `reconcile` is the delivery path).
struct CtlFleet {
    store: Arc<PolicyStore>,
    hosts: Vec<HostState>,
    /// Policy name → numeric policy id, stable within the session so
    /// repeated publishes of the same policy reuse one id.
    policy_ids: HashMap<String, u64>,
    next_policy_id: u64,
}

struct Ctl {
    concord: Concord,
    shfl: HashMap<String, Arc<ShflLock>>,
    mutexes: HashMap<String, Arc<ShflMutex>>,
    loaded: HashMap<String, LoadedPolicy>,
    patches: Vec<concord::AttachHandle>,
    profiler: Option<Profiler>,
    rollout: Option<CtlRollout>,
    fleet: Option<CtlFleet>,
    /// Result of the most recent `analyze`, backing the `blame`,
    /// `chains` and `flame` views.
    last_report: Option<telemetry::Report>,
    next_generation: u64,
    /// A typed (`rollout`/`quarantines`) command failed; scripted mode
    /// exits nonzero.
    failed: bool,
}

fn hook_by_name(s: &str) -> Option<HookKind> {
    HookKind::ALL.into_iter().find(|k| k.name() == s)
}

impl Ctl {
    fn new() -> Self {
        let concord = Concord::new();
        let mut shfl = HashMap::new();
        let mut mutexes = HashMap::new();
        // A demo "kernel": a few named locks, as a registry would hold.
        for name in ["mmap_sem", "dcache", "inode_a", "inode_b"] {
            let l = Arc::new(ShflLock::new());
            concord.registry().register_shfl(name, Arc::clone(&l));
            shfl.insert(name.to_string(), l);
        }
        let m = Arc::new(ShflMutex::new());
        concord
            .registry()
            .register_shfl_mutex("journal", Arc::clone(&m));
        mutexes.insert("journal".to_string(), m);
        concord
            .registry()
            .register_bravo("file_table", Arc::new(Bravo::new(NeutralRwLock::new())));
        Ctl {
            concord,
            shfl,
            mutexes,
            loaded: HashMap::new(),
            patches: Vec::new(),
            profiler: None,
            rollout: None,
            fleet: None,
            last_report: None,
            next_generation: 0,
            failed: false,
        }
    }

    fn run_line(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        let mut parts = line.splitn(4, char::is_whitespace);
        let cmd = parts.next().unwrap_or("");
        let result = match cmd {
            "quit" | "exit" => return false,
            "help" => {
                println!("commands: locks load loadsrc policy attach detach patches profile report unprofile hammer stats store quarantines rollout explore fleet trace metrics top analyze blame chains flame quit");
                Ok(())
            }
            "locks" => {
                for name in self.concord.registry().names() {
                    // A lock listed a moment ago may have been dropped by a
                    // concurrent unregister; skip instead of crashing.
                    if let Some(h) = self.concord.registry().get(&name) {
                        println!("  {name:<12} kind={} id={}", h.kind(), h.id());
                    }
                }
                Ok(())
            }
            "load" => self.cmd_load(parts.next(), parts.next(), parts.next()),
            "loadsrc" => self.cmd_loadsrc(parts.next(), parts.next(), parts.next()),
            "attach" => self.cmd_attach(parts.next(), parts.next()),
            "detach" => self.cmd_detach(),
            "patches" => {
                for p in self.concord.live_patches() {
                    println!("  {p}");
                }
                Ok(())
            }
            "profile" => {
                let rest: Vec<&str> = line.split_whitespace().skip(1).collect();
                self.cmd_profile(&rest)
            }
            "report" => {
                match &self.profiler {
                    Some(p) => {
                        print!("{}", p.report());
                        // If a contention analysis has run, join the two
                        // views for the profiled locks.
                        if let Some(r) = &self.last_report {
                            print!("{}", p.contention_report(r));
                        }
                    }
                    None => println!("  (no profiling session)"),
                }
                Ok(())
            }
            "unprofile" => match self.profiler.take() {
                Some(mut p) => match p.detach(&self.concord) {
                    Ok(_) => {
                        println!("  profiler detached");
                        Ok(())
                    }
                    Err(e) => {
                        // Keep the session so a later retry can finish.
                        self.profiler = Some(p);
                        Err(e.to_string())
                    }
                },
                None => {
                    println!("  (no profiling session)");
                    Ok(())
                }
            },
            "quarantines" => self.typed(Self::cmd_quarantines, parts.next()),
            "rollout" => {
                let rest: Vec<&str> = line.split_whitespace().skip(1).collect();
                self.typed(Self::cmd_rollout, &rest)
            }
            "explore" => {
                let rest: Vec<&str> = line.split_whitespace().skip(1).collect();
                self.typed(Self::cmd_explore, &rest)
            }
            "fleet" => {
                let rest: Vec<&str> = line.split_whitespace().skip(1).collect();
                self.typed(Self::cmd_fleet, &rest)
            }
            "policy" => {
                let rest: Vec<&str> = line.split_whitespace().skip(1).collect();
                self.typed(Self::cmd_policy, &rest)
            }
            "hammer" => {
                // splitn(4) would glue iters and hold_us together.
                let mut words = line.split_whitespace().skip(1);
                self.cmd_hammer(words.next(), words.next(), words.next(), words.next())
            }
            "stats" => self.cmd_stats(parts.next()),
            "trace" => {
                let rest: Vec<&str> = line.split_whitespace().skip(1).collect();
                self.cmd_trace(&rest)
            }
            "analyze" => {
                let rest: Vec<&str> = line.split_whitespace().skip(1).collect();
                self.typed(Self::cmd_analyze, &rest)
            }
            "blame" => self.typed(Self::cmd_blame, ()),
            "chains" => self.typed(Self::cmd_chains, ()),
            "flame" => self.typed(Self::cmd_flame, parts.next()),
            "metrics" => {
                // Refresh the plane gauges so the dump always carries the
                // trace-plane state alongside the control-plane counters.
                let m = telemetry::metrics();
                m.gauge("c3_trace_armed").set(i64::from(telemetry::armed()));
                telemetry::sync_dropped_counter();
                print!("{}", m.render_prometheus());
                Ok(())
            }
            "top" => self.cmd_top(),
            "store" => {
                for p in self.concord.store().list_programs("") {
                    println!("  prog {p}");
                }
                for m in self.concord.store().list_maps("") {
                    println!("  map  {m}");
                }
                Ok(())
            }
            other => Err(format!("unknown command `{other}` (try `help`)")),
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
        true
    }

    /// Runs a typed-error command, recording failure for the scripted
    /// exit code.
    fn typed<A>(
        &mut self,
        f: impl FnOnce(&mut Self, A) -> Result<(), CtlError>,
        arg: A,
    ) -> Result<(), String> {
        f(self, arg).map_err(|e| {
            self.failed = true;
            e.to_string()
        })
    }

    fn cmd_quarantines(&mut self, lock: Option<&str>) -> Result<(), CtlError> {
        let records = match lock {
            Some(l) => {
                if self.concord.registry().get(l).is_none() {
                    return Err(CtlError::UnknownLock(l.to_string()));
                }
                self.concord.registry().quarantines(l)
            }
            None => self.concord.registry().all_quarantines(),
        };
        if records.is_empty() {
            println!("  (no quarantined policies)");
        }
        for r in records {
            println!(
                "  {}/{} policy={} at={}ns: {}",
                r.lock,
                r.hook.name(),
                r.policy,
                r.at_ns,
                r.reason
            );
        }
        Ok(())
    }

    /// Builds the (log, target, health) triple for the session's
    /// in-flight rollout.
    fn rollout_world(&self) -> Result<(RolloutLog, RealTarget<'_>, MetricsHealth), CtlError> {
        let ro = self.rollout.as_ref().ok_or_else(|| {
            CtlError::Rollout(RolloutError::BadState(
                "no rollout in this session (use `rollout start`)".into(),
            ))
        })?;
        let loaded = self
            .loaded
            .get(&ro.policy)
            .ok_or_else(|| CtlError::UnknownPolicy(ro.policy.clone()))?
            .clone();
        let target = RealTarget::new(&self.concord, loaded, BreakerConfig::default())
            .with_breakers(Arc::clone(&ro.breakers));
        let health = MetricsHealth::new(HealthConfig::default(), Arc::clone(&ro.breakers));
        Ok((ro.log.clone(), target, health))
    }

    fn cmd_rollout(&mut self, rest: &[&str]) -> Result<(), CtlError> {
        const USAGE: &str =
            "rollout start <policy> <lock> [<lock>…] | promote | status | abort [reason…] | recover";
        match rest.first().copied() {
            Some("start") => {
                let policy_name = rest.get(1).copied().ok_or(CtlError::Usage(USAGE))?;
                let locks: Vec<String> = rest[2..].iter().map(|s| s.to_string()).collect();
                if locks.is_empty() {
                    return Err(CtlError::Usage(USAGE));
                }
                for l in &locks {
                    if self.concord.registry().get(l).is_none() {
                        return Err(CtlError::UnknownLock(l.clone()));
                    }
                }
                let loaded = self
                    .loaded
                    .get(policy_name)
                    .ok_or_else(|| CtlError::UnknownPolicy(policy_name.to_string()))?
                    .clone();
                self.next_generation += 1;
                let generation = self.next_generation;
                let plan =
                    RolloutPlan::staged(generation, policy_name, loaded.hook, &locks, &[50]);
                let sizes: Vec<usize> = plan.waves.iter().map(Vec::len).collect();
                println!(
                    "  rollout gen={generation} policy={policy_name} hook={} wave sizes {sizes:?}",
                    loaded.hook.name()
                );
                let log = RolloutLog::new();
                let outcome = {
                    let target = RealTarget::new(&self.concord, loaded, BreakerConfig::default());
                    let breakers = target.breakers();
                    let mut health =
                        MetricsHealth::new(HealthConfig::default(), target.breakers());
                    let outcome =
                        Rollout::start(plan, &log, &target, &mut health, &ChaosInjector::inert());
                    self.rollout = Some(CtlRollout {
                        log: log.clone(),
                        policy: policy_name.to_string(),
                        breakers,
                    });
                    outcome?
                };
                print_wave_outcome(&outcome);
                Ok(())
            }
            Some("promote") => {
                let (log, target, mut health) = self.rollout_world()?;
                let outcome =
                    Rollout::promote(&log, &target, &mut health, &ChaosInjector::inert())?;
                print_wave_outcome(&outcome);
                Ok(())
            }
            Some("status") => {
                match &self.rollout {
                    Some(ro) => println!("  {}", Rollout::status(&ro.log)),
                    None => println!("  no rollout in this session"),
                }
                Ok(())
            }
            Some("abort") => {
                let reason = if rest.len() > 1 {
                    rest[1..].join(" ")
                } else {
                    "operator abort".to_string()
                };
                let (log, target, _health) = self.rollout_world()?;
                let outcome = Rollout::abort(&reason, &log, &target, &ChaosInjector::inert())?;
                match outcome {
                    RolloutOutcome::Aborted(r) => println!("  rollout aborted: {r}"),
                    RolloutOutcome::Committed => println!("  rollout committed"),
                }
                Ok(())
            }
            Some("recover") => {
                let (log, target, _health) = self.rollout_world()?;
                let outcome = Rollout::recover(&log, &target, &ChaosInjector::inert())?;
                match outcome {
                    RecoverOutcome::NoRollout => println!("  nothing to recover"),
                    RecoverOutcome::AlreadyTerminal(RolloutOutcome::Committed) => {
                        println!("  rollout already committed")
                    }
                    RecoverOutcome::AlreadyTerminal(RolloutOutcome::Aborted(r)) => {
                        println!("  rollout already aborted: {r}")
                    }
                    RecoverOutcome::RolledForward => {
                        println!("  recovered: rolled forward to committed")
                    }
                    RecoverOutcome::RolledBack => {
                        println!("  recovered: rolled back to pre-rollout state")
                    }
                }
                Ok(())
            }
            _ => Err(CtlError::Usage(USAGE)),
        }
    }

    /// `explore run|shrink|replay` — the schedule-exploration surface.
    fn cmd_explore(&mut self, rest: &[&str]) -> Result<(), CtlError> {
        const USAGE: &str = "explore run <fixture> <strategy> [schedules] [seed] | \
             explore shrink <fixture> <strategy> <out-file> [schedules] [seed] | \
             explore replay <file>";
        let parse_campaign = |fixture: &str,
                              strategy: &str,
                              schedules: Option<&&str>,
                              seed: Option<&&str>|
         -> Result<(Fixture, StrategySpec, ExploreConfig), CtlError> {
            let fixture = Fixture::from_name(fixture)
                .ok_or_else(|| ExploreError::UnknownFixture(fixture.to_string()))?;
            let spec = StrategySpec::from_name(strategy)
                .ok_or_else(|| ExploreError::UnknownStrategy(strategy.to_string()))?;
            let mut cfg = ExploreConfig::default();
            if let Some(n) = schedules {
                cfg.schedules = n.parse().map_err(|_| CtlError::Usage(USAGE))?;
            }
            if let Some(s) = seed {
                cfg.base_seed = s.parse().map_err(|_| CtlError::Usage(USAGE))?;
            }
            Ok((fixture, spec, cfg))
        };
        match rest {
            ["run", fixture, strategy, tail @ ..] if tail.len() <= 2 => {
                let (fixture, spec, cfg) =
                    parse_campaign(fixture, strategy, tail.first(), tail.get(1))?;
                let report = explore(fixture, &spec, &cfg)?;
                match (&report.violation, &report.repro) {
                    (Some(v), Some(r)) => {
                        println!(
                            "  {}: {} at schedule {} ({} schedule(s) run)",
                            report.fixture,
                            v,
                            report.first_bug_schedule.unwrap_or(0),
                            report.schedules_run
                        );
                        println!(
                            "  shrunk to {} injection(s), trace {:#x} — use `explore shrink` \
                             to save the artifact",
                            r.injections.len(),
                            r.trace_hash
                        );
                    }
                    _ => println!(
                        "  {}: no violation in {} schedules under {}",
                        report.fixture, report.schedules_run, report.strategy
                    ),
                }
                Ok(())
            }
            ["shrink", fixture, strategy, out, tail @ ..] if tail.len() <= 2 => {
                let (fixture, spec, cfg) =
                    parse_campaign(fixture, strategy, tail.first(), tail.get(1))?;
                let report = explore(fixture, &spec, &cfg)?;
                let Some(repro) = report.repro else {
                    return Err(CtlError::Io(format!(
                        "no violation in {} schedules — nothing to shrink",
                        report.schedules_run
                    )));
                };
                std::fs::write(out, repro.to_text())
                    .map_err(|e| CtlError::Io(format!("write {out}: {e}")))?;
                println!(
                    "  wrote {out}: {} {} seed {} with {} injection(s), trace {:#x}",
                    repro.fixture,
                    repro.violation,
                    repro.seed,
                    repro.injections.len(),
                    repro.trace_hash
                );
                Ok(())
            }
            ["replay", file] => {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CtlError::Io(format!("read {file}: {e}")))?;
                let repro = Repro::from_text(&text)?;
                let out = repro.replay()?;
                println!(
                    "  replayed {}: {} reproduced, trace {:#x} (pinned), {} point(s) visited",
                    repro.fixture, repro.violation, out.trace_hash, out.points
                );
                Ok(())
            }
            _ => Err(CtlError::Usage(USAGE)),
        }
    }

    /// `fleet start|publish|status|hosts|reconcile` — the fleet control
    /// plane, driven synchronously from the CLI.
    ///
    /// `publish` seals the named loaded policy into a wire artifact and
    /// commits a new store version binding the listed tenants to it.
    /// With `expect <head>` the publish is *conditional*: if the CAS
    /// head has moved past the operator's expectation, the store
    /// refuses with a typed stale-head error and the scripted exit goes
    /// nonzero — the fleet analogue of a failed compare-and-swap, and
    /// what CI gates on. Without `expect`, the store retry-merges.
    fn cmd_fleet(&mut self, rest: &[&str]) -> Result<(), CtlError> {
        const USAGE: &str = "fleet start [hosts] | \
             fleet publish <policy> <tenant> [<tenant>…] [expect <head>] | \
             fleet status | fleet hosts | fleet reconcile";
        match rest.first().copied() {
            Some("start") => {
                let hosts: usize = match rest.get(1) {
                    Some(n) => n.parse().map_err(|_| CtlError::Usage(USAGE))?,
                    None => 4,
                };
                if hosts == 0 || hosts > 1024 {
                    return Err(CtlError::Fleet(format!(
                        "host count {hosts} out of range 1..=1024"
                    )));
                }
                let store = Arc::new(PolicyStore::new(1024));
                let genesis = store.snapshot(0).expect("genesis snapshot");
                let hosts: Vec<HostState> = (0..hosts)
                    .map(|i| HostState::new(i, Arc::clone(&genesis)))
                    .collect();
                println!(
                    "  fleet session: {} host(s), store head {} ({} index shard(s))",
                    hosts.len(),
                    store.head(),
                    store.index().shard_count()
                );
                self.fleet = Some(CtlFleet {
                    store,
                    hosts,
                    policy_ids: HashMap::new(),
                    next_policy_id: 1000,
                });
                Ok(())
            }
            Some("publish") => {
                let policy_name = rest.get(1).copied().ok_or(CtlError::Usage(USAGE))?;
                // Split the tail at an optional `expect <head>` suffix.
                let tail = &rest[2..];
                let (tenant_words, expect) = match tail.iter().position(|w| *w == "expect") {
                    Some(i) => {
                        let head: u64 = tail
                            .get(i + 1)
                            .ok_or(CtlError::Usage(USAGE))?
                            .parse()
                            .map_err(|_| CtlError::Usage(USAGE))?;
                        (&tail[..i], Some(head))
                    }
                    None => (tail, None),
                };
                if tenant_words.is_empty() {
                    return Err(CtlError::Usage(USAGE));
                }
                let tenants: Vec<u64> = tenant_words
                    .iter()
                    .map(|t| t.parse().map_err(|_| CtlError::Usage(USAGE)))
                    .collect::<Result<_, _>>()?;
                let loaded = self
                    .loaded
                    .get(policy_name)
                    .ok_or_else(|| CtlError::UnknownPolicy(policy_name.to_string()))?
                    .clone();
                // Seal on the way in: hosts re-verify from the wire, so
                // the store only ever distributes sealed artifacts.
                let artifact = Arc::new(cbpf::wire::seal(
                    &loaded.prog,
                    &hookctx::rules_for(loaded.hook),
                ));
                let fleet = self
                    .fleet
                    .as_mut()
                    .ok_or_else(|| CtlError::Fleet("no fleet session (use `fleet start`)".into()))?;
                let policy_id = match fleet.policy_ids.get(policy_name) {
                    Some(id) => *id,
                    None => {
                        let id = fleet.next_policy_id;
                        fleet.next_policy_id += 1;
                        fleet.policy_ids.insert(policy_name.to_string(), id);
                        id
                    }
                };
                let delta = Delta::bind_all(&tenants, policy_id, artifact);
                let version = match expect {
                    Some(head) => fleet.store.try_publish(head, &delta)?,
                    None => fleet.store.publish(&delta)?,
                };
                println!(
                    "  published v{version}: policy {policy_name} (id {policy_id}) → {} tenant(s){}",
                    tenants.len(),
                    match expect {
                        Some(h) => format!(" [conditional on head {h}]"),
                        None => String::new(),
                    }
                );
                Ok(())
            }
            Some("status") => {
                let fleet = self
                    .fleet
                    .as_ref()
                    .ok_or_else(|| CtlError::Fleet("no fleet session (use `fleet start`)".into()))?;
                let head = fleet.store.head();
                let min = fleet.hosts.iter().map(|h| h.served.version).min().unwrap_or(0);
                println!(
                    "  head v{head}  publishes {}  cas-conflicts {}  lag {} version(s)",
                    fleet.store.publishes(),
                    fleet.store.conflicts(),
                    head - min
                );
                let behind = fleet
                    .hosts
                    .iter()
                    .filter(|h| h.served.version < head)
                    .count();
                println!(
                    "  {} host(s), {} behind head{}",
                    fleet.hosts.len(),
                    behind,
                    if behind > 0 { " (run `fleet reconcile`)" } else { "" }
                );
                Ok(())
            }
            Some("hosts") => {
                let fleet = self
                    .fleet
                    .as_ref()
                    .ok_or_else(|| CtlError::Fleet("no fleet session (use `fleet start`)".into()))?;
                let head = fleet.store.head();
                for h in &fleet.hosts {
                    println!(
                        "  host{:<3} serving v{:<4} {:<8} applies {:<4} dedup-drops {}",
                        h.id,
                        h.served.version,
                        if h.served.version == head { "current" } else { "behind" },
                        h.apply_log.len(),
                        h.dedup_drops
                    );
                }
                Ok(())
            }
            Some("reconcile") => {
                let fleet = self
                    .fleet
                    .as_mut()
                    .ok_or_else(|| CtlError::Fleet("no fleet session (use `fleet start`)".into()))?;
                let head = fleet.store.head();
                let snap = fleet.store.head_snapshot();
                let mut applied = 0usize;
                let mut dups = 0usize;
                for h in fleet.hosts.iter_mut() {
                    match h.deliver(head, &snap) {
                        DeliverOutcome::Applied => applied += 1,
                        DeliverOutcome::Duplicate => dups += 1,
                    }
                }
                println!(
                    "  reconciled to v{head}: {applied} host(s) applied, {dups} already current"
                );
                Ok(())
            }
            _ => Err(CtlError::Usage(USAGE)),
        }
    }

    /// `policy compile|load` — the compiled-policy wire-format surface.
    ///
    /// `compile` is the host side: source → verify → seal to an
    /// artifact. `load` is the runtime side: open re-checks checksum,
    /// version and verification digest, then re-runs the verifier on
    /// this host's layout and rules before anything is pinned — a
    /// tampered or cross-hook artifact dies with a typed error and a
    /// nonzero scripted exit.
    fn cmd_policy(&mut self, rest: &[&str]) -> Result<(), CtlError> {
        const USAGE: &str = "policy compile <hook> <src.c|src.s> <out> | \
             policy load <name> <hook> <artifact>";
        match rest {
            ["compile", hook, src, out] => {
                let kind = hook_by_name(hook)
                    .ok_or_else(|| CtlError::UnknownHook((*hook).to_string()))?;
                let text = std::fs::read_to_string(src)
                    .map_err(|e| CtlError::Io(format!("read {src}: {e}")))?;
                let name = std::path::Path::new(src)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("policy");
                let layout = hookctx::layout_for(kind);
                let program = if src.ends_with(".c") {
                    cbpf::dsl::compile(name, &text, layout)
                        .map_err(|e| CtlError::Policy(ConcordError::Asm(e)))?
                } else {
                    cbpf::asm::assemble_named(name, &text, &[])
                        .map_err(|e| CtlError::Policy(ConcordError::Asm(e)))?
                };
                let rules = hookctx::rules_for(kind);
                let verified = VerifiedProgram::new(program, layout, &rules)
                    .map_err(|e| CtlError::Policy(ConcordError::Verify(e)))?;
                let bytes = verified.seal();
                std::fs::write(out, &bytes)
                    .map_err(|e| CtlError::Io(format!("write {out}: {e}")))?;
                println!(
                    "  compiled {src} for {}: sealed {} bytes to {out}",
                    kind.name(),
                    bytes.len()
                );
                Ok(())
            }
            ["load", name, hook, file] => {
                let kind = hook_by_name(hook)
                    .ok_or_else(|| CtlError::UnknownHook((*hook).to_string()))?;
                let bytes = std::fs::read(file)
                    .map_err(|e| CtlError::Io(format!("read {file}: {e}")))?;
                let opened =
                    cbpf::wire::open(&bytes, hookctx::layout_for(kind), &hookctx::rules_for(kind))
                        .map_err(CtlError::Wire)?;
                // Hand the re-verified program to the normal load path so
                // pinning and map registration behave exactly like `load`.
                let p = opened.program();
                let spec = PolicySpec::from_program(
                    name,
                    kind,
                    cbpf::Program::new(p.name().to_string(), p.insns().to_vec(), p.maps().to_vec()),
                );
                let loaded = self.concord.load(spec).map_err(CtlError::Policy)?;
                println!(
                    "  opened {file}: verified and pinned policies/{name}/{}",
                    kind.name()
                );
                self.loaded.insert(name.to_string(), loaded);
                Ok(())
            }
            _ => Err(CtlError::Usage(USAGE)),
        }
    }

    fn cmd_load(
        &mut self,
        name: Option<&str>,
        hook: Option<&str>,
        file: Option<&str>,
    ) -> Result<(), String> {
        let (name, hook, file) = match (name, hook, file) {
            (Some(n), Some(h), Some(f)) => (n, h, f),
            _ => return Err("usage: load <name> <hook> <file.c|file.s>".into()),
        };
        let hook = hook_by_name(hook).ok_or_else(|| format!("unknown hook `{hook}`"))?;
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let spec = if file.ends_with(".c") {
            PolicySpec::from_c(name, hook, &src)
        } else {
            PolicySpec::from_asm(name, hook, &src)
        };
        let loaded = self.concord.load(spec).map_err(|e| e.to_string())?;
        println!("  verified and pinned policies/{name}/{}", hook.name());
        self.loaded.insert(name.to_string(), loaded);
        Ok(())
    }

    fn cmd_loadsrc(
        &mut self,
        name: Option<&str>,
        hook: Option<&str>,
        src: Option<&str>,
    ) -> Result<(), String> {
        let (name, hook, src) = match (name, hook, src) {
            (Some(n), Some(h), Some(s)) => (n, h, s),
            _ => return Err("usage: loadsrc <name> <hook> <c source…>".into()),
        };
        let hook = hook_by_name(hook).ok_or_else(|| format!("unknown hook `{hook}`"))?;
        let loaded = self
            .concord
            .load(PolicySpec::from_c(name, hook, src))
            .map_err(|e| e.to_string())?;
        println!("  verified and pinned policies/{name}/{}", hook.name());
        self.loaded.insert(name.to_string(), loaded);
        Ok(())
    }

    fn cmd_attach(&mut self, lock: Option<&str>, policy: Option<&str>) -> Result<(), String> {
        let (lock, policy) = match (lock, policy) {
            (Some(l), Some(p)) => (l, p),
            _ => return Err("usage: attach <lock> <policy>".into()),
        };
        let loaded = self
            .loaded
            .get(policy)
            .ok_or_else(|| format!("no loaded policy `{policy}` (use `load` first)"))?;
        let h = self
            .concord
            .attach(lock, loaded)
            .map_err(|e| e.to_string())?;
        println!("  patched {lock}/{}", h.hook.name());
        self.patches.push(h);
        Ok(())
    }

    fn cmd_detach(&mut self) -> Result<(), String> {
        let h = self.patches.pop().ok_or("no live patches")?;
        let label = format!("{}/{}", h.lock, h.hook.name());
        self.concord.detach(h).map_err(|e| e.to_string())?;
        println!("  reverted {label}");
        Ok(())
    }

    fn cmd_profile(&mut self, names: &[&str]) -> Result<(), String> {
        if names.is_empty() {
            return Err("usage: profile <lock> [<lock>…]".into());
        }
        if self.profiler.is_some() {
            return Err("a profiling session is already running (use `unprofile`)".into());
        }
        let p = Profiler::attach(&self.concord, names).map_err(|e| e.to_string())?;
        println!("  profiling {}", names.join(", "));
        self.profiler = Some(p);
        Ok(())
    }

    fn cmd_hammer(
        &mut self,
        lock: Option<&str>,
        threads: Option<&str>,
        iters: Option<&str>,
        hold_us: Option<&str>,
    ) -> Result<(), String> {
        let (name, threads, iters) = match (lock, threads, iters) {
            (Some(l), Some(t), Some(n)) => (
                l,
                t.parse::<u32>().map_err(|e| e.to_string())?,
                n.parse::<u64>().map_err(|e| e.to_string())?,
            ),
            _ => return Err("usage: hammer <lock> <threads> <iters> [hold_us]".into()),
        };
        let hold_us = match hold_us {
            Some(h) => h.parse::<u64>().map_err(|e| e.to_string())?,
            None => 0,
        };
        // Spinning (rather than sleeping) inside the critical section keeps
        // the holder on-CPU, so waiters reliably hit the contended slow
        // path even on one core — the analyzer smoke depends on that.
        let hold = move || {
            if hold_us > 0 {
                let end = std::time::Instant::now() + std::time::Duration::from_micros(hold_us);
                while std::time::Instant::now() < end {
                    std::hint::spin_loop();
                }
            }
        };
        let start = std::time::Instant::now();
        if let Some(l) = self.shfl.get(name) {
            let mut hs = Vec::new();
            for t in 0..threads {
                let l = Arc::clone(l);
                hs.push(std::thread::spawn(move || {
                    locks::topo::pin_thread((t * 10) % 80);
                    for _ in 0..iters {
                        let g = l.lock();
                        hold();
                        drop(g);
                    }
                }));
            }
            for h in hs {
                h.join().map_err(|_| "worker thread panicked".to_string())?;
            }
        } else if let Some(l) = self.mutexes.get(name) {
            let mut hs = Vec::new();
            for t in 0..threads {
                let l = Arc::clone(l);
                hs.push(std::thread::spawn(move || {
                    locks::topo::pin_thread((t * 10) % 80);
                    for _ in 0..iters {
                        let g = l.lock();
                        hold();
                        drop(g);
                    }
                }));
            }
            for h in hs {
                h.join().map_err(|_| "worker thread panicked".to_string())?;
            }
        } else {
            return Err(format!("`{name}` is not a hammerable lock"));
        }
        println!(
            "  {} acquisitions in {:?}",
            u64::from(threads) * iters,
            start.elapsed()
        );
        Ok(())
    }

    /// Resolve a `--lock` filter operand: a registered lock name, or a
    /// literal numeric id for locks outside the demo registry.
    fn lock_id_of(&self, s: &str) -> Result<u64, String> {
        if let Some(h) = self.concord.registry().get(s) {
            return Ok(h.id());
        }
        s.parse::<u64>()
            .map_err(|_| format!("unknown lock `{s}` (not a registered name or numeric id)"))
    }

    fn cmd_trace(&mut self, rest: &[&str]) -> Result<(), String> {
        match rest.first().copied() {
            Some("on") => {
                telemetry::set_armed(true);
                println!("  trace plane armed");
                Ok(())
            }
            Some("off") => {
                telemetry::set_armed(false);
                println!("  trace plane disarmed");
                Ok(())
            }
            Some("tail") => {
                let mut n = 32usize;
                let mut filter = telemetry::EventFilter::default();
                let mut it = rest[1..].iter();
                while let Some(tok) = it.next() {
                    match *tok {
                        "--since" => {
                            let v = it.next().ok_or("--since needs <ns>")?;
                            filter.since_ns =
                                Some(v.parse().map_err(|e| format!("--since: {e}"))?);
                        }
                        "--lock" => {
                            let v = it.next().ok_or("--lock needs <name|id>")?;
                            filter.lock = Some(self.lock_id_of(v)?);
                        }
                        "--event" => {
                            let v = it.next().ok_or("--event needs <kind>")?;
                            filter.kind = Some(
                                telemetry::EventKind::from_name(v)
                                    .ok_or_else(|| format!("unknown event kind `{v}`"))?,
                            );
                        }
                        tok => {
                            n = tok.parse().map_err(|_| {
                                format!("unexpected `{tok}` (want a count or --since/--lock/--event)")
                            })?;
                        }
                    }
                }
                let events: Vec<_> = telemetry::snapshot_last(usize::MAX)
                    .into_iter()
                    .filter(|ev| filter.admits(ev))
                    .collect();
                if events.is_empty() {
                    println!("  (no matching trace events — arm with `trace on` and drive load)");
                }
                let skip = events.len().saturating_sub(n);
                for ev in &events[skip..] {
                    println!("  {}", ev.render());
                }
                Ok(())
            }
            Some("json") => {
                // Drain (consume) into chrome://tracing format.
                let events = telemetry::drain();
                println!("{}", telemetry::export::to_chrome_json(&events));
                Ok(())
            }
            Some("save") => {
                let file = rest.get(1).ok_or("usage: trace save <file>")?;
                // Drain (consume) into the flat binary record format that
                // `analyze <file>` reads back.
                let events = telemetry::drain();
                let mut bytes = Vec::with_capacity(events.len() * telemetry::EVENT_BYTES);
                for ev in &events {
                    bytes.extend_from_slice(&ev.to_bytes());
                }
                std::fs::write(file, &bytes).map_err(|e| format!("write {file}: {e}"))?;
                println!("  saved {} event(s) to {file}", events.len());
                Ok(())
            }
            None | Some("status") => {
                println!(
                    "  armed={} dropped={}",
                    telemetry::armed(),
                    telemetry::dropped()
                );
                println!(
                    "  dropped events (ring overwrite): {} — mirrored to c3_trace_dropped_total; \
                     analysis of a lossy trace reports lower-bound attribution",
                    telemetry::dropped()
                );
                println!(
                    "  continuous analyzer: armed={} windows={}",
                    telemetry::analyze::continuous_armed(),
                    telemetry::analyze::continuous().windows()
                );
                Ok(())
            }
            Some(other) => Err(format!(
                "unknown trace subcommand `{other}` (on|off|tail [n]|json|save <file>|status)"
            )),
        }
    }

    /// Shared analysis configuration: every registered lock's id→name
    /// mapping, so reports and patch-label policy attribution use the
    /// same names the operator typed.
    fn analyze_cfg(&self) -> telemetry::AnalyzeConfig {
        let mut cfg = telemetry::AnalyzeConfig::default();
        for name in self.concord.registry().names() {
            if let Some(h) = self.concord.registry().get(&name) {
                cfg.lock_names.insert(h.id(), name);
            }
        }
        cfg
    }

    /// `analyze [<file>] | on | off | step` — the contention-analysis
    /// surface. A typed command: a truncated or corrupt trace file makes
    /// scripted mode exit nonzero.
    fn cmd_analyze(&mut self, rest: &[&str]) -> Result<(), CtlError> {
        const USAGE: &str = "analyze [<trace-file>] | analyze on|off|step";
        match rest {
            ["on"] => {
                telemetry::analyze::continuous().configure(self.analyze_cfg());
                telemetry::analyze::set_continuous_armed(true);
                println!("  continuous analyzer armed (advance windows with `analyze step`)");
                Ok(())
            }
            ["off"] => {
                telemetry::analyze::set_continuous_armed(false);
                println!("  continuous analyzer disarmed");
                Ok(())
            }
            ["step"] => {
                match telemetry::analyze::continuous().step() {
                    Some(r) => {
                        println!(
                            "  window {}: {} events, {} locks, wait={}ns, attribution={}",
                            telemetry::analyze::continuous().windows(),
                            r.events,
                            r.locks.len(),
                            r.total_wait_ns(),
                            if r.exact() { "exact" } else { "lower-bound" },
                        );
                        self.last_report = Some(r);
                    }
                    None => println!("  continuous analyzer is disarmed (use `analyze on`)"),
                }
                Ok(())
            }
            [] => {
                // Live mode: drain (consume) the plane and analyze it.
                let events = telemetry::drain();
                let report = telemetry::analyze::analyze(&events, self.analyze_cfg());
                print!("{}", report.render());
                self.last_report = Some(report);
                Ok(())
            }
            [file] => {
                let bytes = std::fs::read(file)
                    .map_err(|e| CtlError::Io(format!("read {file}: {e}")))?;
                let events = telemetry::analyze::read_trace(&bytes)
                    .map_err(|e| CtlError::Analyze(format!("{file}: {e}")))?;
                let report = telemetry::analyze::analyze(&events, self.analyze_cfg());
                print!("{}", report.render());
                self.last_report = Some(report);
                Ok(())
            }
            _ => Err(CtlError::Usage(USAGE)),
        }
    }

    fn last_report(&self) -> Result<&telemetry::Report, CtlError> {
        self.last_report
            .as_ref()
            .ok_or_else(|| CtlError::Analyze("no analysis yet (run `analyze` first)".into()))
    }

    /// Blame view over the last analysis: caused/suffered wait per
    /// (lock, tenant, policy), ranked by caused nanoseconds.
    fn cmd_blame(&mut self, (): ()) -> Result<(), CtlError> {
        let r = self.last_report()?;
        let mut any = false;
        for l in r.locks.values() {
            // One ranked table per lock; keys are the union of both sides.
            let mut keys: Vec<&(u64, String)> =
                l.caused.keys().chain(l.suffered.keys()).collect();
            keys.sort();
            keys.dedup();
            let mut rows: Vec<(&(u64, String), u64, u64)> = keys
                .into_iter()
                .map(|k| {
                    (
                        k,
                        l.caused.get(k).copied().unwrap_or(0),
                        l.suffered.get(k).copied().unwrap_or(0),
                    )
                })
                .collect();
            rows.sort_by(|a, b| (b.1, b.2).cmp(&(a.1, a.2)).then_with(|| a.0.cmp(b.0)));
            if rows.is_empty() {
                continue;
            }
            any = true;
            println!(
                "  {:<12} wait={}ns ({} completed waits)",
                l.name, l.wait_ns, l.completed_waits
            );
            for ((tenant, policy), caused, suffered) in rows {
                let tenant = if *tenant == telemetry::analyze::HANDOFF_TENANT {
                    "handoff".to_string()
                } else {
                    format!("{tenant}")
                };
                println!(
                    "    tenant={tenant:<8} policy={policy:<24} caused={caused}ns suffered={suffered}ns"
                );
            }
        }
        if !any {
            println!("  (no completed waits in the last analysis)");
        }
        Ok(())
    }

    /// Blocking-chain view over the last analysis, ranked by blocked ns.
    fn cmd_chains(&mut self, (): ()) -> Result<(), CtlError> {
        let r = self.last_report()?;
        if r.chains.is_empty() {
            println!("  (no blocking chains in the last analysis)");
            return Ok(());
        }
        println!("  max chain depth: {}", r.max_chain_depth);
        let mut rows: Vec<(&String, &u64)> = r.chains.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (stack, ns) in rows.into_iter().take(30) {
            println!("  {ns:>12}ns {stack}");
        }
        Ok(())
    }

    /// Flamegraph collapsed-stack export of the last analysis' blocking
    /// chains (stdout, or a file for `flamegraph.pl` / inferno).
    fn cmd_flame(&mut self, out: Option<&str>) -> Result<(), CtlError> {
        let r = self.last_report()?;
        let text = telemetry::export::to_flamegraph(r);
        match out {
            Some(file) => {
                std::fs::write(file, &text)
                    .map_err(|e| CtlError::Io(format!("write {file}: {e}")))?;
                println!(
                    "  wrote {} collapsed stack(s) to {file} (feed to flamegraph.pl)",
                    text.lines().count()
                );
            }
            None => print!("{text}"),
        }
        Ok(())
    }

    /// Ranks locks by slow-path activity currently resident in the trace
    /// rings — the trace-plane analogue of `lockstat -top`.
    fn cmd_top(&mut self) -> Result<(), String> {
        let events = telemetry::snapshot_last(usize::MAX);
        if events.is_empty() {
            println!("  (no trace events — arm with `trace on` and drive load)");
            return Ok(());
        }
        // (acquires, contended, hook spans) per lock id.
        let mut by_lock: HashMap<u64, (u64, u64, u64)> = HashMap::new();
        for ev in &events {
            let row = by_lock.entry(ev.a).or_default();
            match ev.kind {
                telemetry::EventKind::LockAcquire => row.0 += 1,
                telemetry::EventKind::LockContended => row.1 += 1,
                telemetry::EventKind::HookSpan => row.2 += 1,
                _ => {}
            }
        }
        let mut names: HashMap<u64, String> = HashMap::new();
        for name in self.concord.registry().names() {
            if let Some(h) = self.concord.registry().get(&name) {
                names.insert(h.id(), name);
            }
        }
        let mut rows: Vec<_> = by_lock.into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse((r.1 .1, r.1 .0)));
        println!(
            "  {:<16} {:>10} {:>10} {:>10}",
            "lock", "acquires", "contended", "hook-spans"
        );
        for (id, (acq, cont, spans)) in rows {
            let name = names
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("#{id:x}"));
            println!("  {name:<16} {acq:>10} {cont:>10} {spans:>10}");
        }
        Ok(())
    }

    fn cmd_stats(&mut self, lock: Option<&str>) -> Result<(), String> {
        let name = lock.ok_or("usage: stats <lock>")?;
        if let Some(l) = self.shfl.get(name) {
            println!("  shuffle phases: {}", l.shuffle_count());
        } else if let Some(l) = self.mutexes.get(name) {
            println!("  parks: {}", l.park_count());
        } else {
            return Err(format!("no stats for `{name}`"));
        }
        Ok(())
    }
}

/// Renders a stepwise rollout outcome.
fn print_wave_outcome(out: &WaveOutcome) {
    match out {
        WaveOutcome::WaveHealthy { wave, remaining } => println!(
            "  wave {wave} healthy ({remaining} remaining; `rollout promote` to continue)"
        ),
        WaveOutcome::Committed => println!("  rollout committed"),
        WaveOutcome::Aborted(reason) => println!("  rollout aborted: {reason}"),
    }
}

fn main() {
    telemetry::arm_from_env();
    let mut ctl = Ctl::new();
    let args: Vec<String> = std::env::args().collect();
    if let Some(script) = args.get(1) {
        let content = std::fs::read_to_string(script).unwrap_or_else(|e| {
            eprintln!("{script}: {e}");
            std::process::exit(1);
        });
        for line in content.lines() {
            println!("c3> {line}");
            if !ctl.run_line(line) {
                break;
            }
        }
        // Legacy commands keep the always-exit-0 contract; only the
        // typed (rollout/quarantine) surface gates the exit code.
        std::process::exit(i32::from(ctl.failed));
    }
    println!("c3ctl — Concord control plane (type `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("c3> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        if !ctl.run_line(&line) {
            return;
        }
    }
}
