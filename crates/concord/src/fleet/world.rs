//! The simulated fleet: a control-plane daemon and many lock hosts
//! exchanging sealed policy artifacts over a lossy `ksim::net` transport
//! in virtual time.
//!
//! Everything here is deterministic per seed: the network's fault
//! schedule, the daemon's retry backoff jitter, the partition windows
//! and the crash point all derive from one seed, so a whole
//! distribution run — including its misbehavior — replays
//! bit-identically. That is what lets the fleet gate sweep *every*
//! crash point and partition schedule and compare fingerprints across
//! runs.
//!
//! Protocol (DESIGN.md §4.10):
//!
//! * the **writer** publishes deltas into the durable [`PolicyStore`]
//!   (CAS op-head, retry-merge);
//! * the **daemon** notices the head moved, broadcasts
//!   `Publish{head, snapshot}` to every host, and retransmits with
//!   capped exponential backoff until each host acknowledges the head;
//! * **hosts** apply a delivered snapshot with one whole-table swap iff
//!   it is newer than what they serve (generation-numbered idempotent
//!   apply: duplicates and stale reorders are dropped without effect),
//!   then acknowledge their applied version — at-least-once delivery
//!   composed with version-gated apply is exactly-once effect;
//! * **leases**: hosts heartbeat; a host the daemon hasn't heard from
//!   within the lease window is marked degraded (it keeps serving its
//!   last-known-good snapshot — fail-safe, never torn); a heartbeat
//!   from a degraded host renews the lease and the **anti-entropy
//!   reconcile sweep** pushes it back to the head;
//! * the **daemon may crash** at any protocol step boundary
//!   ([`ChaosInjector::barrier`]): it loses all volatile state (per-host
//!   acks, leases, backoffs), is offline for a restart delay (in-flight
//!   messages to it are lost), then re-derives everything from the
//!   durable store and incoming heartbeats.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use ksim::net::{Backoff, NetFaultPlan, NetStats, SimNet};
use ksim::{CpuId, SimBuilder};
use telemetry::{self, EventKind};

use super::store::{Delta, PolicyStore, Snapshot};
use crate::rollout::{ChaosInjector, ChaosPlan};

/// A message on the fleet wire. Snapshots travel by `Arc`, so a
/// duplicate costs a pointer, not a copy.
#[derive(Clone)]
pub enum FleetMsg {
    /// Daemon → host: install this snapshot.
    Publish {
        /// The snapshot's committed version.
        version: u64,
        /// The complete immutable state to serve.
        snapshot: Arc<Snapshot>,
    },
    /// Host → daemon: "I serve `version`". Cumulative: acknowledges
    /// every version up to it.
    Ack {
        /// Sending host id.
        host: usize,
        /// The version the host serves.
        version: u64,
    },
    /// Host → daemon: liveness beacon, carrying the served version so a
    /// restarted daemon re-learns fleet state from heartbeats alone.
    Heartbeat {
        /// Sending host id.
        host: usize,
        /// The version the host serves.
        applied: u64,
    },
}

/// What [`HostState::deliver`] did with a delivered snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliverOutcome {
    /// The snapshot was newer: the host swapped it in.
    Applied,
    /// Duplicate or stale (version ≤ served): dropped, zero effect.
    Duplicate,
}

/// One lock host's served policy state. The snapshot is immutable and
/// swapped whole, so a reader can never observe a half-applied table.
pub struct HostState {
    /// Host id (0-based; wire endpoint is `id + 1`).
    pub id: usize,
    /// The snapshot the host currently serves (last-known-good).
    pub served: Arc<Snapshot>,
    /// Whether the host considers itself cut off from the daemon (its
    /// lease lapsed): it keeps serving `served` fail-safe.
    pub degraded: bool,
    /// Every version this host applied, in apply order. The dedupe
    /// invariant — no version appears twice, strictly increasing — is
    /// property-checked in `tests/fleet_model.rs`.
    pub apply_log: Vec<u64>,
    /// Duplicate/stale deliveries dropped without effect.
    pub dedup_drops: u64,
}

impl HostState {
    /// A fresh host serving the genesis (empty) snapshot.
    pub fn new(id: usize, genesis: Arc<Snapshot>) -> HostState {
        HostState {
            id,
            served: genesis,
            degraded: false,
            apply_log: Vec::new(),
            dedup_drops: 0,
        }
    }

    /// Generation-numbered idempotent apply: installs `snapshot` iff
    /// `version` is strictly newer than what the host serves. This is
    /// the host half of the exactly-once argument — at-least-once
    /// delivery can hand the same version to this method any number of
    /// times, in any order, and the served state transitions once.
    pub fn deliver(&mut self, version: u64, snapshot: &Arc<Snapshot>) -> DeliverOutcome {
        if version <= self.served.version {
            self.dedup_drops += 1;
            return DeliverOutcome::Duplicate;
        }
        debug_assert_eq!(snapshot.version, version);
        self.served = Arc::clone(snapshot);
        self.apply_log.push(version);
        DeliverOutcome::Applied
    }
}

/// A partition schedule entry: cut or heal one host at a virtual time.
#[derive(Clone, Copy, Debug)]
pub struct PartitionEvent {
    /// When, virtual nanoseconds.
    pub at_ns: u64,
    /// Which host (0-based).
    pub host: usize,
    /// `false` = cut the host off, `true` = reconnect it.
    pub heal: bool,
}

/// Everything a fleet run is parameterized by. All times are virtual
/// nanoseconds.
#[derive(Clone)]
pub struct FleetConfig {
    /// Number of lock hosts.
    pub hosts: usize,
    /// Tenant ids bound by every publish (`0..tenants`).
    pub tenants: u64,
    /// Number of versions the writer publishes.
    pub versions: u64,
    /// Daemon/host loop tick.
    pub tick_ns: u64,
    /// Host heartbeat interval.
    pub heartbeat_ns: u64,
    /// Lease window: no heartbeat for this long → degraded.
    pub lease_ns: u64,
    /// Anti-entropy reconcile sweep interval.
    pub reconcile_ns: u64,
    /// Retransmit backoff base.
    pub backoff_base_ns: u64,
    /// Retransmit backoff cap.
    pub backoff_cap_ns: u64,
    /// Gap between writer publishes.
    pub publish_gap_ns: u64,
    /// Daemon downtime after a crash.
    pub restart_delay_ns: u64,
    /// Main-phase horizon; the run gets one more horizon after all
    /// partitions heal to converge, so the total virtual-time bound is
    /// `2 * horizon_ns`.
    pub horizon_ns: u64,
    /// Network fault plan (its seed is overridden by the chaos plan's).
    pub fault: NetFaultPlan,
    /// Partition schedule.
    pub partitions: Vec<PartitionEvent>,
    /// The sealed artifact every publish ships (see
    /// [`super::seal_demo_artifact`]).
    pub artifact: Arc<Vec<u8>>,
}

impl FleetConfig {
    /// The small adversarial world the tests and the gate sweep: 4
    /// hosts, 3 versions, lossy network, one seed-derived partition
    /// window long enough to lapse a lease.
    pub fn small(seed: u64, artifact: Arc<Vec<u8>>) -> FleetConfig {
        let mut cfg = FleetConfig {
            hosts: 4,
            tenants: 32,
            versions: 3,
            tick_ns: 20_000,
            heartbeat_ns: 100_000,
            lease_ns: 400_000,
            reconcile_ns: 300_000,
            backoff_base_ns: 40_000,
            backoff_cap_ns: 640_000,
            publish_gap_ns: 2_000_000,
            restart_delay_ns: 150_000,
            horizon_ns: 15_000_000,
            fault: NetFaultPlan::lossy(seed),
            partitions: Vec::new(),
            artifact,
        };
        // One seed-derived partition window per run: cut one host for
        // 2–6ms somewhere in the middle of the publish phase. Long
        // enough (≫ lease_ns) that the lease reliably lapses.
        let roll = |salt: u64| cfg.fault.rng(0xF1EE_7000 + salt);
        let host = (roll(1) % cfg.hosts as u64) as usize;
        let start = 2_500_000 + roll(2) % 3_000_000;
        let len = 2_000_000 + roll(3) % 4_000_000;
        cfg.partitions = vec![
            PartitionEvent {
                at_ns: start,
                host,
                heal: false,
            },
            PartitionEvent {
                at_ns: start + len,
                host,
                heal: true,
            },
        ];
        cfg
    }
}

/// Shared run counters (daemon, hosts and prober all bump these).
#[derive(Default)]
struct WorldCounters {
    retries: u64,
    lease_expiries: u64,
    lease_renewals: u64,
    reconciles: u64,
    crashes: u64,
    torn: u64,
    degraded_serves: u64,
}

/// What one fleet run reports. [`FleetReport::fingerprint`] folds every
/// observable of the run; two runs of the same seed must produce equal
/// fingerprints (the gate checks this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetReport {
    /// Store head at the end of the run.
    pub head: u64,
    /// Each host's served version at the end.
    pub host_versions: Vec<u64>,
    /// Every live host serves the head and the head saw all publishes.
    pub converged: bool,
    /// Prober-observed torn/partial applies (must be 0, always).
    pub torn: u64,
    /// Prober samples in which a degraded host successfully resolved
    /// every tenant from its last-known-good snapshot.
    pub degraded_serves: u64,
    /// Duplicate deliveries dropped by version-gated apply.
    pub dedup_drops: u64,
    /// Daemon retransmissions.
    pub retries: u64,
    /// Leases that lapsed.
    pub lease_expiries: u64,
    /// Anti-entropy pushes.
    pub reconciles: u64,
    /// Daemon crashes injected (0 or 1).
    pub crashes: u64,
    /// Chaos step boundaries the run crossed.
    pub steps: u64,
    /// Transport fault counters.
    pub net: NetStats,
    /// Per-(version, host) propagation lag samples, virtual ns from
    /// publish commit to host apply.
    pub propagation_ns: Vec<u64>,
    /// Replay fingerprint.
    pub fingerprint: u64,
}

fn fnv_fold(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Runs one fleet scenario to completion under `plan` and reports how
/// the world ended. Deterministic: same `cfg` + same plan ⇒ identical
/// [`FleetReport`], fingerprint included.
pub fn run_fleet(cfg: &FleetConfig, plan: ChaosPlan) -> FleetReport {
    let sim = SimBuilder::new().seed(plan.seed).build();
    let fault = NetFaultPlan {
        seed: plan.seed,
        ..cfg.fault
    };
    let net: SimNet<FleetMsg> = SimNet::new(fault, cfg.hosts + 1);
    let store = Arc::new(PolicyStore::new((cfg.tenants as usize).max(16) * 2));
    let chaos = Rc::new(ChaosInjector::new(plan));
    let done = Rc::new(Cell::new(false));
    let counters = Rc::new(RefCell::new(WorldCounters::default()));
    let genesis = store.head_snapshot();
    let hosts: Vec<Rc<RefCell<HostState>>> = (0..cfg.hosts)
        .map(|i| Rc::new(RefCell::new(HostState::new(i, Arc::clone(&genesis)))))
        .collect();
    // version → commit virtual time, for propagation-lag samples.
    let publish_times = Rc::new(RefCell::new(BTreeMap::<u64, u64>::new()));
    let propagation = Rc::new(RefCell::new(Vec::<u64>::new()));

    // --- writer: publishes `versions` deltas into the durable store.
    {
        let store = Arc::clone(&store);
        let cfg2 = cfg.clone();
        let done = Rc::clone(&done);
        let publish_times = Rc::clone(&publish_times);
        sim.spawn_on(CpuId(1), move |t| async move {
            let tenants: Vec<u64> = (0..cfg2.tenants).collect();
            for v in 0..cfg2.versions {
                t.advance(cfg2.publish_gap_ns).await;
                if done.get() {
                    return;
                }
                let delta =
                    Delta::bind_all(&tenants, 1000 + v, Arc::clone(&cfg2.artifact));
                let committed = store.publish(&delta).expect("writer delta is well-formed");
                publish_times.borrow_mut().insert(committed, t.now());
            }
        });
    }

    // --- partition schedule.
    {
        let net = net.clone();
        let done = Rc::clone(&done);
        let mut events = cfg.partitions.clone();
        events.sort_by_key(|e| e.at_ns);
        sim.spawn_on(CpuId(2), move |t| async move {
            for ev in events {
                let now = t.now();
                if ev.at_ns > now {
                    t.advance(ev.at_ns - now).await;
                }
                if done.get() {
                    return;
                }
                if ev.heal {
                    net.heal(ev.host + 1);
                } else {
                    net.partition(ev.host + 1);
                }
            }
        });
    }

    // --- hosts.
    for (i, host) in hosts.iter().enumerate() {
        let net = net.clone();
        let cfg2 = cfg.clone();
        let done = Rc::clone(&done);
        let host = Rc::clone(host);
        let publish_times = Rc::clone(&publish_times);
        let propagation = Rc::clone(&propagation);
        let ep = i + 1;
        sim.spawn_on(CpuId((3 + i as u32) % 8), move |t| async move {
            let mut last_beat = 0u64;
            let mut last_contact = 0u64;
            loop {
                if done.get() {
                    return;
                }
                let now = t.now();
                for msg in net.recv(now, ep) {
                    if let FleetMsg::Publish { version, snapshot } = msg {
                        last_contact = now;
                        let outcome = host.borrow_mut().deliver(version, &snapshot);
                        let dup = matches!(outcome, DeliverOutcome::Duplicate);
                        if dup {
                            telemetry::metrics()
                                .counter("c3_fleet_dedup_drops_total")
                                .inc();
                        } else if let Some(t0) =
                            publish_times.borrow().get(&version).copied()
                        {
                            propagation.borrow_mut().push(now.saturating_sub(t0));
                        }
                        if telemetry::armed() {
                            telemetry::emit(
                                EventKind::FleetDeliver,
                                now,
                                0,
                                i as u64,
                                version,
                                0,
                                u64::from(dup),
                            );
                        }
                        let served = host.borrow().served.version;
                        net.send(now, ep, 0, FleetMsg::Ack {
                            host: i,
                            version: served,
                        });
                    }
                }
                // Host-side lease view: silence from the daemon longer
                // than the lease window means "assume partitioned, keep
                // serving last-known-good".
                let applied = {
                    let mut h = host.borrow_mut();
                    h.degraded = now.saturating_sub(last_contact) > cfg2.lease_ns;
                    h.served.version
                };
                if now.saturating_sub(last_beat) >= cfg2.heartbeat_ns {
                    last_beat = now;
                    net.send(now, ep, 0, FleetMsg::Heartbeat { host: i, applied });
                }
                t.advance(cfg2.tick_ns).await;
            }
        });
    }

    // --- prober: checks the torn-free and degraded-serving invariants
    // continuously, not just at the end.
    {
        let store = Arc::clone(&store);
        let cfg2 = cfg.clone();
        let done = Rc::clone(&done);
        let hosts = hosts.clone();
        let counters = Rc::clone(&counters);
        sim.spawn_on(CpuId(0), move |t| async move {
            loop {
                if done.get() {
                    return;
                }
                for host in &hosts {
                    let h = host.borrow();
                    let v = h.served.version;
                    // The served snapshot must be *the* store snapshot
                    // for its version — same allocation, so a torn or
                    // stitched-together table is impossible to miss.
                    let intact = match store.snapshot(v) {
                        Some(s) => Arc::ptr_eq(&s, &h.served),
                        None => false,
                    };
                    // And every tenant it ever bound must resolve to a
                    // sealed artifact right now (fail-safe serving).
                    let resolvable = h
                        .served
                        .bindings
                        .values()
                        .all(|p| h.served.artifacts.contains_key(p));
                    if !intact || !resolvable {
                        counters.borrow_mut().torn += 1;
                    } else if h.degraded && v > 0 {
                        counters.borrow_mut().degraded_serves += 1;
                    }
                }
                t.advance(cfg2.tick_ns * 2).await;
            }
        });
    }

    // --- daemon: broadcast, retransmit with backoff, leases, reconcile.
    {
        let store = Arc::clone(&store);
        let net = net.clone();
        let cfg2 = cfg.clone();
        let done = Rc::clone(&done);
        let chaos = Rc::clone(&chaos);
        let counters = Rc::clone(&counters);
        sim.spawn_on(CpuId(0), move |t| async move {
            let n = cfg2.hosts;
            // Volatile daemon state: lost wholesale on a crash.
            let mut acked = vec![0u64; n];
            let mut last_hb = vec![t.now(); n];
            let mut degraded = vec![false; n];
            let mut backoff: Vec<Backoff> = (0..n)
                .map(|i| {
                    Backoff::new(
                        chaos.rng(0xB0FF_0000 + i as u64),
                        cfg2.backoff_base_ns,
                        cfg2.backoff_cap_ns,
                    )
                })
                .collect();
            let mut next_send = vec![0u64; n];
            let mut broadcast_head = 0u64;
            let mut last_reconcile = 0u64;
            let mut crashing = false;
            loop {
                if done.get() {
                    return;
                }
                if crashing {
                    // The crashed daemon is gone: offline for the
                    // restart delay (in-flight messages to it are
                    // lost), then a fresh process with zero volatile
                    // state re-derives the world from the durable
                    // store and incoming heartbeats.
                    crashing = false;
                    counters.borrow_mut().crashes += 1;
                    net.partition(0);
                    t.advance(cfg2.restart_delay_ns).await;
                    net.heal(0);
                    let now = t.now();
                    acked = vec![0u64; n];
                    last_hb = vec![now; n];
                    for d in degraded.iter_mut() {
                        if *d {
                            telemetry::metrics().gauge("c3_fleet_degraded_hosts").add(-1);
                        }
                        *d = false;
                    }
                    for b in &mut backoff {
                        b.reset();
                    }
                    next_send = vec![0u64; n];
                    broadcast_head = 0;
                    last_reconcile = now;
                    continue;
                }
                let now = t.now();
                for msg in net.recv(now, 0) {
                    match msg {
                        FleetMsg::Ack { host, version } => {
                            if version > acked[host] {
                                acked[host] = version;
                                backoff[host].reset();
                            }
                        }
                        FleetMsg::Heartbeat { host, applied } => {
                            last_hb[host] = now;
                            if applied > acked[host] {
                                acked[host] = applied;
                            }
                            if degraded[host] {
                                degraded[host] = false;
                                counters.borrow_mut().lease_renewals += 1;
                                telemetry::metrics()
                                    .gauge("c3_fleet_degraded_hosts")
                                    .add(-1);
                                if telemetry::armed() {
                                    telemetry::emit(
                                        EventKind::FleetLease,
                                        now,
                                        0,
                                        host as u64,
                                        applied,
                                        0,
                                        0,
                                    );
                                }
                            }
                        }
                        FleetMsg::Publish { .. } => {}
                    }
                }
                let head = store.head();
                // New head → broadcast to the whole fleet. One step
                // boundary per version: "publish dequeued".
                if head > broadcast_head {
                    if chaos.barrier().is_err() {
                        crashing = true;
                        continue;
                    }
                    let snapshot = store.head_snapshot();
                    for h in 0..n {
                        net.send(now, 0, h + 1, FleetMsg::Publish {
                            version: head,
                            snapshot: Arc::clone(&snapshot),
                        });
                        next_send[h] = now + backoff[h].next_delay();
                    }
                    broadcast_head = head;
                }
                // Retransmit to laggards whose backoff window elapsed.
                for h in 0..n {
                    if acked[h] < broadcast_head && now >= next_send[h] {
                        net.send(now, 0, h + 1, FleetMsg::Publish {
                            version: broadcast_head,
                            snapshot: store.head_snapshot(),
                        });
                        counters.borrow_mut().retries += 1;
                        telemetry::metrics().counter("c3_fleet_retries_total").inc();
                        next_send[h] = now + backoff[h].next_delay();
                    }
                }
                // Lease check. One step boundary per expiry.
                for h in 0..n {
                    if !degraded[h] && now.saturating_sub(last_hb[h]) > cfg2.lease_ns {
                        if chaos.barrier().is_err() {
                            crashing = true;
                            break;
                        }
                        degraded[h] = true;
                        counters.borrow_mut().lease_expiries += 1;
                        let m = telemetry::metrics();
                        m.counter("c3_fleet_lease_expired_total").inc();
                        m.gauge("c3_fleet_degraded_hosts").add(1);
                        if telemetry::armed() {
                            telemetry::emit(
                                EventKind::FleetLease,
                                now,
                                0,
                                h as u64,
                                acked[h],
                                0,
                                1,
                            );
                        }
                    }
                }
                if crashing {
                    continue;
                }
                // Anti-entropy sweep: push anyone behind (degraded or
                // not — the partition eats what it eats) back to head.
                // One step boundary per sweep that does work.
                if now.saturating_sub(last_reconcile) >= cfg2.reconcile_ns {
                    last_reconcile = now;
                    let behind: Vec<usize> =
                        (0..n).filter(|h| acked[*h] < head).collect();
                    if !behind.is_empty() {
                        if chaos.barrier().is_err() {
                            crashing = true;
                            continue;
                        }
                        let snapshot = store.head_snapshot();
                        for h in behind {
                            net.send(now, 0, h + 1, FleetMsg::Publish {
                                version: head,
                                snapshot: Arc::clone(&snapshot),
                            });
                            counters.borrow_mut().reconciles += 1;
                            telemetry::metrics()
                                .counter("c3_fleet_reconciles_total")
                                .inc();
                            if telemetry::armed() {
                                telemetry::emit(
                                    EventKind::FleetReconcile,
                                    now,
                                    0,
                                    h as u64,
                                    acked[h],
                                    head,
                                    0,
                                );
                            }
                        }
                    }
                }
                let min_acked = acked.iter().copied().min().unwrap_or(0);
                telemetry::metrics()
                    .gauge("c3_fleet_propagation_lag")
                    .set(head.saturating_sub(min_acked) as i64);
                t.advance(cfg2.tick_ns).await;
            }
        });
    }

    // Main phase: publishes, faults, partitions, possibly a crash.
    sim.run_until(cfg.horizon_ns);
    // Heal everything and give the protocol one more horizon to
    // converge — the bounded virtual-time convergence window.
    net.heal_all();
    sim.run_until(cfg.horizon_ns * 2);
    done.set(true);
    let stats = sim.run();

    let head = store.head();
    let host_versions: Vec<u64> = hosts.iter().map(|h| h.borrow().served.version).collect();
    let dedup_drops: u64 = hosts.iter().map(|h| h.borrow().dedup_drops).sum();
    let c = counters.borrow();
    let converged = head == cfg.versions && host_versions.iter().all(|v| *v == head);

    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    fnv_fold(&mut fp, head);
    for h in &hosts {
        let h = h.borrow();
        fnv_fold(&mut fp, h.served.version);
        fnv_fold(&mut fp, h.served.fingerprint());
        fnv_fold(&mut fp, h.dedup_drops);
        for v in &h.apply_log {
            fnv_fold(&mut fp, *v);
        }
    }
    let net_stats = net.stats();
    for v in [
        net_stats.sent,
        net_stats.delivered,
        net_stats.dropped,
        net_stats.duplicated,
        net_stats.reordered,
        net_stats.partitioned,
        c.retries,
        c.lease_expiries,
        c.reconciles,
        c.crashes,
        store.conflicts(),
        stats.trace_hash,
    ] {
        fnv_fold(&mut fp, v);
    }

    let propagation_ns = propagation.borrow().clone();
    FleetReport {
        head,
        host_versions,
        converged,
        torn: c.torn,
        degraded_serves: c.degraded_serves,
        dedup_drops,
        retries: c.retries,
        lease_expiries: c.lease_expiries,
        reconciles: c.reconciles,
        crashes: c.crashes,
        steps: chaos.steps_taken(),
        net: net_stats,
        propagation_ns,
        fingerprint: fp,
    }
}

/// Crash-sweeps a fleet scenario: an inert run measures the protocol's
/// step space, then one run per crash point, every one of which must end
/// with all live hosts at the store head and zero torn applies
/// (mapped onto [`crate::rollout::chaos::crash_sweep`]'s convergence
/// verdicts).
///
/// # Errors
///
/// The first non-converging run, as `"seed S crash-at K: ..."`.
pub fn fleet_sweep(
    seed: u64,
    cfg: &FleetConfig,
) -> Result<crate::rollout::chaos::SweepReport, String> {
    use crate::rollout::chaos::{crash_sweep, Convergence, SweepOutcome};
    crash_sweep(seed, |plan| {
        let report = run_fleet(cfg, plan);
        let converged = if report.torn > 0 {
            Convergence::Mixed(format!("{} torn applies observed", report.torn))
        } else if report.converged {
            Convergence::AllApplied
        } else {
            Convergence::Mixed(format!(
                "head {} vs hosts {:?}",
                report.head, report.host_versions
            ))
        };
        Ok(SweepOutcome {
            converged,
            steps: report.steps,
            fingerprint: report.fingerprint,
        })
    })
}
