//! The CAS-versioned fleet policy store.
//!
//! One op-head version counter coordinates every writer, tandem-style:
//! there is no application-level write lock around the *work* of a
//! publish. A writer reads the head, builds a merged snapshot against
//! what it read, and commits with a compare-and-swap on the head; if
//! another writer got there first the CAS fails and the writer
//! automatically retries against the new head, merging its delta into
//! the fresher state. Every delta therefore lands exactly once, commits
//! are totally ordered by version, and concurrent writers converge — the
//! property `tests/fleet_model.rs` checks against a reference model.
//!
//! Snapshots are immutable and `Arc`-shared: a reader (or the transport)
//! holding version `v` keeps a complete, internally consistent binding
//! table no matter what later writers do. That immutability is what
//! makes the host-side apply torn-free: a host installs a whole snapshot
//! with one pointer swap or not at all.
//!
//! Per-tenant resolution goes through a [`TenantIndex`]: the
//! `tenant → policy id` half of the head snapshot mirrored into sharded
//! `cbpf::map` hash slabs, so the hot lookup is O(1) slab probing rather
//! than a `BTreeMap` walk, and a 1M-tenant fleet spreads across
//! `ceil(tenants / 32768)` shards (each map caps at
//! [`cbpf::map::MAX_MAP_ENTRIES`] slots).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cbpf::map::{Map, MapDef, MapKind, MAX_MAP_ENTRIES};
use parking_lot::Mutex;
use telemetry::{self, EventKind};

/// One immutable published state of the fleet: the complete
/// `tenant → policy` binding table plus every sealed artifact those
/// bindings reference.
#[derive(Debug)]
pub struct Snapshot {
    /// The op-head value this snapshot committed as.
    pub version: u64,
    /// Complete binding table: tenant id → policy id.
    pub bindings: BTreeMap<u64, u64>,
    /// Sealed wire artifacts (`cbpf::wire`) by policy id.
    pub artifacts: BTreeMap<u64, Arc<Vec<u8>>>,
}

impl Snapshot {
    /// The empty pre-publish state (version 0).
    fn genesis() -> Arc<Snapshot> {
        Arc::new(Snapshot {
            version: 0,
            bindings: BTreeMap::new(),
            artifacts: BTreeMap::new(),
        })
    }

    /// Order- and content-sensitive fold of the snapshot, for replay
    /// fingerprints. Artifacts fold by length and a byte sample, not a
    /// full hash — fingerprints compare runs of the same binary, not
    /// worlds across builds.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.version);
        for (t, p) in &self.bindings {
            mix(*t);
            mix(*p);
        }
        for (p, a) in &self.artifacts {
            mix(*p);
            mix(a.len() as u64);
        }
        h
    }
}

/// A writer's intent: bindings to overwrite and artifacts to add. A
/// delta is position-independent — merging it into any base snapshot
/// yields a state containing the delta, which is why retry-merge
/// converges.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// `tenant → policy id` bindings this publish sets (last writer
    /// wins per tenant).
    pub bindings: Vec<(u64, u64)>,
    /// Sealed artifacts this publish introduces, by policy id.
    pub artifacts: Vec<(u64, Arc<Vec<u8>>)>,
}

impl Delta {
    /// A delta binding every tenant in `tenants` to `policy`, shipping
    /// `artifact` under that policy id.
    pub fn bind_all(tenants: &[u64], policy: u64, artifact: Arc<Vec<u8>>) -> Delta {
        Delta {
            bindings: tenants.iter().map(|t| (*t, policy)).collect(),
            artifacts: vec![(policy, artifact)],
        }
    }
}

/// Why a conditional publish was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The expected head was stale: someone published first. Carries the
    /// current head so the caller can merge and retry.
    StaleHead {
        /// What the writer expected.
        expected: u64,
        /// What the store is actually at.
        current: u64,
    },
    /// A delta referenced a policy id with no artifact in the delta or
    /// the base snapshot.
    MissingArtifact(u64),
    /// The tenant index shard rejected an insert (slab full).
    IndexFull(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::StaleHead { expected, current } => {
                write!(f, "stale head: expected {expected}, store is at {current}")
            }
            StoreError::MissingArtifact(p) => {
                write!(f, "binding references policy {p} but no artifact is published")
            }
            StoreError::IndexFull(d) => write!(f, "tenant index full: {d}"),
        }
    }
}

/// Sharded `tenant → policy id` index over `cbpf::map` hash slabs.
pub struct TenantIndex {
    shards: Vec<Map>,
    /// Power-of-two shard count, so routing is a mask.
    mask: u64,
}

/// Keep hash slabs at most half full: open addressing probe chains stay
/// short and inserts can't fail until genuinely past capacity.
const SHARD_BUDGET: usize = MAX_MAP_ENTRIES / 2;

impl TenantIndex {
    /// An index sized for `expected_tenants` concurrent bindings.
    pub fn new(expected_tenants: usize) -> TenantIndex {
        let n = expected_tenants.div_ceil(SHARD_BUDGET).max(1).next_power_of_two();
        let shards = (0..n)
            .map(|i| {
                Map::new(MapDef {
                    name: format!("fleet_tenants_{i}"),
                    kind: MapKind::Hash,
                    key_size: 8,
                    value_size: 8,
                    max_entries: MAX_MAP_ENTRIES,
                })
            })
            .collect();
        TenantIndex {
            shards,
            mask: (n - 1) as u64,
        }
    }

    /// Shard routing: splitmix finalize so sequential tenant ids spread
    /// evenly instead of striping one shard.
    fn shard(&self, tenant: u64) -> &Map {
        let mut x = tenant.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        &self.shards[((x ^ (x >> 31)) & self.mask) as usize]
    }

    /// Points `tenant` at `policy`.
    ///
    /// # Errors
    ///
    /// [`StoreError::IndexFull`] when the routed shard is out of slots.
    pub fn bind(&self, tenant: u64, policy: u64) -> Result<(), StoreError> {
        self.shard(tenant)
            .update(&tenant.to_le_bytes(), &policy.to_le_bytes(), 0)
            .map_err(|e| StoreError::IndexFull(format!("tenant {tenant}: {e:?}")))
    }

    /// The policy id `tenant` is bound to, if any. O(1): one shard
    /// probe.
    pub fn lookup(&self, tenant: u64) -> Option<u64> {
        let v = self.shard(tenant).lookup_copy(&tenant.to_le_bytes(), 0)?;
        Some(u64::from_le_bytes(v.try_into().ok()?))
    }

    /// Total bindings across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Map::len).sum()
    }

    /// Whether no tenant is bound.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slab shards backing the index.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// The fleet policy store: op-head version counter, immutable snapshot
/// history, sharded tenant index. See the module docs for the
/// concurrency story.
pub struct PolicyStore {
    /// The op-head: the single word every writer coordinates through.
    head: AtomicU64,
    /// Version → snapshot. Only the *commit* section holds this lock;
    /// merge work happens outside it against `Arc` snapshots.
    snapshots: Mutex<BTreeMap<u64, Arc<Snapshot>>>,
    index: TenantIndex,
    /// CAS conflicts observed (each one cost a writer a retry-merge).
    conflicts: AtomicU64,
    /// Successful publishes.
    publishes: AtomicU64,
}

impl PolicyStore {
    /// An empty store (head 0) whose index is sized for
    /// `expected_tenants`.
    pub fn new(expected_tenants: usize) -> PolicyStore {
        let mut snapshots = BTreeMap::new();
        snapshots.insert(0, Snapshot::genesis());
        PolicyStore {
            head: AtomicU64::new(0),
            snapshots: Mutex::new(snapshots),
            index: TenantIndex::new(expected_tenants),
            conflicts: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        }
    }

    /// The current op-head version.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// The snapshot committed as version `v`.
    pub fn snapshot(&self, v: u64) -> Option<Arc<Snapshot>> {
        self.snapshots.lock().get(&v).cloned()
    }

    /// The head snapshot.
    pub fn head_snapshot(&self) -> Arc<Snapshot> {
        let snaps = self.snapshots.lock();
        let head = self.head.load(Ordering::Acquire);
        Arc::clone(
            snaps
                .get(&head)
                .expect("op-head always has a committed snapshot"),
        )
    }

    /// CAS conflicts writers have hit so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Successful publishes so far.
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Resolves `tenant` to its bound policy id and sealed artifact at
    /// the head, via the sharded index (O(1) probe, then one artifact
    /// fetch from the head snapshot).
    pub fn resolve(&self, tenant: u64) -> Option<(u64, Arc<Vec<u8>>)> {
        let policy = self.index.lookup(tenant)?;
        let art = Arc::clone(self.head_snapshot().artifacts.get(&policy)?);
        Some((policy, art))
    }

    /// The index backing [`PolicyStore::resolve`].
    pub fn index(&self) -> &TenantIndex {
        &self.index
    }

    /// Builds the snapshot `delta` produces on top of `base`.
    fn merge(base: &Snapshot, delta: &Delta, version: u64) -> Result<Snapshot, StoreError> {
        let mut bindings = base.bindings.clone();
        let mut artifacts = base.artifacts.clone();
        for (p, a) in &delta.artifacts {
            artifacts.insert(*p, Arc::clone(a));
        }
        for (t, p) in &delta.bindings {
            if !artifacts.contains_key(p) {
                return Err(StoreError::MissingArtifact(*p));
            }
            bindings.insert(*t, *p);
        }
        Ok(Snapshot {
            version,
            bindings,
            artifacts,
        })
    }

    /// Publishes `delta` against an expected head, the conditional
    /// (no-retry) surface `c3ctl fleet publish … expect N` exposes.
    ///
    /// The merge work runs against the snapshot at `expected_head`
    /// without any lock; only the commit — CAS the head, insert the
    /// snapshot, mirror the bindings into the index — runs under the
    /// snapshot-map mutex (readers of published state never take it on
    /// the resolve path).
    ///
    /// # Errors
    ///
    /// [`StoreError::StaleHead`] when someone published first (the CAS
    /// lost); [`StoreError::MissingArtifact`] /
    /// [`StoreError::IndexFull`] on malformed or oversized deltas.
    pub fn try_publish(&self, expected_head: u64, delta: &Delta) -> Result<u64, StoreError> {
        let base = self
            .snapshot(expected_head)
            .ok_or(StoreError::StaleHead {
                expected: expected_head,
                current: self.head(),
            })?;
        let next = expected_head + 1;
        let merged = Arc::new(Self::merge(&base, delta, next)?);

        let mut snaps = self.snapshots.lock();
        if self
            .head
            .compare_exchange(expected_head, next, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            telemetry::metrics()
                .counter("c3_fleet_cas_conflicts_total")
                .inc();
            return Err(StoreError::StaleHead {
                expected: expected_head,
                current: self.head(),
            });
        }
        snaps.insert(next, Arc::clone(&merged));
        // Mirror the delta into the index while still inside the commit
        // section: binds land in commit order, so the index always
        // agrees with the head snapshot.
        for (t, p) in &delta.bindings {
            self.index.bind(*t, *p)?;
        }
        drop(snaps);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        let m = telemetry::metrics();
        m.counter("c3_fleet_publishes_total").inc();
        m.gauge("c3_fleet_store_head").set(next as i64);
        if telemetry::armed() {
            telemetry::emit(
                EventKind::FleetPublish,
                0,
                0,
                next,
                delta.bindings.len() as u64,
                delta.artifacts.len() as u64,
                self.conflicts(),
            );
        }
        Ok(next)
    }

    /// Publishes `delta`, automatically retry-merging on CAS conflict
    /// until it commits (tandem-style). Returns the committed version.
    ///
    /// # Errors
    ///
    /// Only delta errors ([`StoreError::MissingArtifact`],
    /// [`StoreError::IndexFull`]) — staleness is absorbed by the retry
    /// loop.
    pub fn publish(&self, delta: &Delta) -> Result<u64, StoreError> {
        loop {
            let head = self.head();
            match self.try_publish(head, delta) {
                Ok(v) => return Ok(v),
                Err(StoreError::StaleHead { .. }) => {
                    telemetry::metrics().counter("c3_fleet_retries_total").inc();
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(tag: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![tag; 8])
    }

    #[test]
    fn publish_advances_head_and_resolves() {
        let store = PolicyStore::new(64);
        let v = store
            .publish(&Delta::bind_all(&[1, 2, 3], 10, art(1)))
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(store.head(), 1);
        let (p, a) = store.resolve(2).unwrap();
        assert_eq!(p, 10);
        assert_eq!(*a, vec![1u8; 8]);
        assert_eq!(store.resolve(4), None);
    }

    #[test]
    fn stale_head_is_typed_and_carries_current() {
        let store = PolicyStore::new(16);
        store.publish(&Delta::bind_all(&[1], 10, art(1))).unwrap();
        let err = store
            .try_publish(0, &Delta::bind_all(&[2], 11, art(2)))
            .unwrap_err();
        assert_eq!(
            err,
            StoreError::StaleHead {
                expected: 0,
                current: 1
            }
        );
        assert_eq!(store.conflicts(), 1); // the CAS genuinely lost
    }

    #[test]
    fn concurrent_writers_converge() {
        let store = Arc::new(PolicyStore::new(1 << 10));
        let mut handles = Vec::new();
        for w in 0..8u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..16u64 {
                    let tenant = w * 16 + i;
                    store
                        .publish(&Delta::bind_all(&[tenant], 100 + w, art(w as u8)))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.head(), 128);
        assert_eq!(store.publishes(), 128);
        let head = store.head_snapshot();
        assert_eq!(head.bindings.len(), 128);
        for w in 0..8u64 {
            for i in 0..16u64 {
                let tenant = w * 16 + i;
                assert_eq!(store.index().lookup(tenant), Some(100 + w));
                assert_eq!(head.bindings.get(&tenant), Some(&(100 + w)));
            }
        }
    }

    #[test]
    fn missing_artifact_is_rejected() {
        let store = PolicyStore::new(16);
        let delta = Delta {
            bindings: vec![(1, 99)],
            artifacts: Vec::new(),
        };
        assert_eq!(store.publish(&delta), Err(StoreError::MissingArtifact(99)));
        assert_eq!(store.head(), 0);
    }

    #[test]
    fn index_shards_scale_with_expected_tenants() {
        assert_eq!(TenantIndex::new(1).shard_count(), 1);
        assert_eq!(TenantIndex::new(100_000).shard_count(), 4);
        assert_eq!(TenantIndex::new(1_000_000).shard_count(), 32);
        let idx = TenantIndex::new(1 << 12);
        for t in 0..4096u64 {
            idx.bind(t, t % 7).unwrap();
        }
        assert_eq!(idx.len(), 4096);
        for t in 0..4096u64 {
            assert_eq!(idx.lookup(t), Some(t % 7));
        }
    }
}
