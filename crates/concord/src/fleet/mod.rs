//! The fleet policy control plane: one CAS-versioned store, many lock
//! hosts, a lossy network in between.
//!
//! ROADMAP item 2 scales the paper's vision — operators pushing
//! context-specific policies into running kernels at will — from one
//! in-process [`Concord`](crate::Concord) to a *fleet* of lock hosts.
//! This module is that control plane, built to stay correct under the
//! failures a real deployment sees:
//!
//! * [`store`] — the durable heart: a CAS-versioned [`PolicyStore`]
//!   (single op-head counter, writers retry-merge on conflict and
//!   provably converge) holding immutable snapshots of the complete
//!   `tenant → policy → sealed artifact` state, with a sharded
//!   `cbpf::map` [`TenantIndex`] for O(1) per-tenant resolution;
//! * [`world`] — the simulated fleet: daemon and hosts as `ksim` tasks
//!   over a seeded lossy `ksim::net` transport, with leases, degraded
//!   mode, anti-entropy reconciliation and a crash-at-every-step chaos
//!   harness ([`fleet_sweep`]) extending `rollout::chaos::crash_sweep`;
//! * [`real`] — the host-side apply path: snapshots land on a live
//!   `Concord` as single livepatch transactions, re-verified from the
//!   wire, version-gated into exactly-once effect;
//! * [`rollout`](self::rollout) — batched cross-host attach through the
//!   staged-rollout controller: hosts as "locks", waves as cohorts,
//!   crash consistency inherited from the write-ahead intent log.
//!
//! Metrics: `c3_fleet_publishes_total`, `c3_fleet_cas_conflicts_total`,
//! `c3_fleet_retries_total`, `c3_fleet_dedup_drops_total`,
//! `c3_fleet_lease_expired_total`, `c3_fleet_reconciles_total`,
//! `c3_fleet_store_head`, `c3_fleet_degraded_hosts`,
//! `c3_fleet_propagation_lag`. Trace events: `fleet_publish`,
//! `fleet_deliver`, `fleet_lease`, `fleet_reconcile` (DESIGN.md §4.6).

pub mod real;
pub mod rollout;
pub mod store;
pub mod world;

pub use real::RealFleetHost;
pub use rollout::FleetTarget;
pub use store::{Delta, PolicyStore, Snapshot, StoreError, TenantIndex};
pub use world::{
    fleet_sweep, run_fleet, DeliverOutcome, FleetConfig, FleetMsg, FleetReport, HostState,
    PartitionEvent,
};

use std::sync::Arc;

/// Builds the sealed demo artifact the tests, the gate and `c3ctl`
/// distribute: the paper's NUMA-aware policy, compiled and verified in a
/// scratch world, sealed with `cbpf::wire::seal` under its hook's rules.
pub fn seal_demo_artifact() -> Arc<Vec<u8>> {
    let concord = crate::Concord::new();
    let loaded = concord
        .load(crate::policies::numa_aware())
        .expect("demo policy always verifies");
    Arc::new(cbpf::wire::seal(
        &loaded.prog,
        &crate::hookctx::rules_for(loaded.hook),
    ))
}
