//! Batched cross-host attach: fleet distribution driven by the rollout
//! controller's wave/intent-log machinery.
//!
//! A [`FleetTarget`] presents a set of [`RealFleetHost`]s to
//! `rollout::Rollout` as if each host were one "lock": waves become
//! host cohorts (canary host → 50% of the fleet → everyone), every wave
//! is recorded in the write-ahead `RolloutLog` before it runs, and a
//! crashed controller recovers by replaying the log — fleet rollouts
//! inherit the crash-consistency guarantees `tests/rollout_chaos.rs`
//! pins, without reimplementing any of it.
//!
//! The rollout *generation* is mapped to a store *version* on first
//! apply: the target snapshots the store head when generation `g` first
//! touches a host, and every later wave of `g` applies that same pinned
//! version — a rollout never smears across concurrent publishes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use super::real::RealFleetHost;
use super::store::PolicyStore;
use crate::rollout::RolloutTarget;

/// [`RolloutTarget`] over named fleet hosts ("locks" are host names).
pub struct FleetTarget<'a> {
    store: Arc<PolicyStore>,
    hosts: BTreeMap<String, RealFleetHost<'a>>,
    /// Rollout generation → pinned store version.
    versions: RefCell<BTreeMap<u64, u64>>,
}

impl<'a> FleetTarget<'a> {
    /// A target distributing from `store` to `hosts`.
    pub fn new(store: Arc<PolicyStore>, hosts: BTreeMap<String, RealFleetHost<'a>>) -> Self {
        FleetTarget {
            store,
            hosts,
            versions: RefCell::new(BTreeMap::new()),
        }
    }

    /// The store version generation `g` is pinned to (the head at the
    /// moment its first wave ran).
    pub fn version_of(&self, generation: u64) -> Option<u64> {
        self.versions.borrow().get(&generation).copied()
    }

    /// The host registered under `name`.
    pub fn host(&self, name: &str) -> Option<&RealFleetHost<'a>> {
        self.hosts.get(name)
    }
}

impl RolloutTarget for FleetTarget<'_> {
    fn apply_locks(&self, generation: u64, hosts: &[String]) -> Result<(), String> {
        let version = *self
            .versions
            .borrow_mut()
            .entry(generation)
            .or_insert_with(|| self.store.head());
        let snapshot = self
            .store
            .snapshot(version)
            .ok_or_else(|| format!("store lost snapshot {version}"))?;
        for name in hosts {
            let host = self
                .hosts
                .get(name)
                .ok_or_else(|| format!("unknown fleet host {name}"))?;
            host.apply(version, &snapshot)?;
        }
        Ok(())
    }

    fn applied_locks(&self, generation: u64, hosts: &[String]) -> Vec<String> {
        let Some(version) = self.version_of(generation) else {
            return Vec::new();
        };
        hosts
            .iter()
            .filter(|name| {
                self.hosts
                    .get(*name)
                    .is_some_and(|h| !h.patched_locks(version).is_empty())
            })
            .cloned()
            .collect()
    }

    fn revert_locks(&self, generation: u64, hosts: &[String]) -> Result<(), String> {
        let Some(version) = self.version_of(generation) else {
            return Ok(());
        };
        for name in hosts {
            if let Some(host) = self.hosts.get(name) {
                host.revert(version)?;
            }
        }
        Ok(())
    }
}
