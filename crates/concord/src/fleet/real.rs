//! The real-host side of fleet distribution: applying a store snapshot
//! to a live [`Concord`] world through the livepatch plane.
//!
//! A [`RealFleetHost`] owns a `tenant → lock` mapping (which registered
//! locks this host serves for which fleet tenants) and applies each
//! delivered snapshot as **one** `PatchManager::apply_transaction`: every
//! sealed artifact is re-opened through `cbpf::wire::open` (checksum,
//! digest, full re-verification — the host never trusts the wire), and
//! either every lock moves to the new version or none does. Combined
//! with the version gate (`version <= applied` ⇒ drop), at-least-once
//! delivery becomes exactly-once livepatch effect: N duplicate
//! deliveries of version `v` produce exactly one patch transaction, a
//! property `tests/fleet_chaos.rs` exercises directly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use locks::hooks::HookKind;

use super::store::Snapshot;
use super::world::DeliverOutcome;
use crate::hookctx::{layout_for, rules_for};
use crate::policy::BytecodePolicy;
use crate::workflow::Concord;

/// A lock host applying fleet snapshots to a real `Concord` world.
pub struct RealFleetHost<'a> {
    concord: &'a Concord,
    hook: HookKind,
    /// Fleet tenant id → registered lock name.
    locks: BTreeMap<u64, String>,
    /// Highest version applied (the generation gate).
    applied: AtomicU64,
}

impl<'a> RealFleetHost<'a> {
    /// A host serving `locks` (tenant id → registered lock name) on
    /// `hook`.
    pub fn new(concord: &'a Concord, hook: HookKind, locks: BTreeMap<u64, String>) -> Self {
        RealFleetHost {
            concord,
            hook,
            locks,
            applied: AtomicU64::new(0),
        }
    }

    /// The version this host serves.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// The patch name a fleet apply gives `lock` at `version`.
    fn patch_name(&self, version: u64, lock: &str) -> String {
        format!("fleet-v{version}:{lock}/{}", self.hook.name())
    }

    /// Applies `snapshot` if `version` is newer than what the host
    /// serves; otherwise drops it as a duplicate with zero effect.
    ///
    /// All of this host's bound locks move in one livepatch
    /// transaction — a mid-sequence failure (bad artifact, unknown
    /// lock) unwinds every lock already patched by this call and leaves
    /// the previous version serving. Never torn.
    ///
    /// # Errors
    ///
    /// The first artifact or patch error, after the transaction
    /// unwinds; the host still serves its previous version.
    pub fn apply(&self, version: u64, snapshot: &Snapshot) -> Result<DeliverOutcome, String> {
        if version <= self.applied.load(Ordering::Acquire) {
            telemetry::metrics()
                .counter("c3_fleet_dedup_drops_total")
                .inc();
            return Ok(DeliverOutcome::Duplicate);
        }
        let prefix = format!("fleet-v{version}:");
        let result = self.concord.patch_manager().apply_transaction(
            self.locks
                .iter()
                .filter_map(|(tenant, lock)| {
                    let policy = snapshot.bindings.get(tenant)?;
                    Some((lock, *policy))
                })
                .map(|(lock, policy)| {
                    let bytes = snapshot
                        .artifacts
                        .get(&policy)
                        .ok_or_else(|| format!("policy {policy} has no sealed artifact"))?;
                    // Re-verify on the load host: checksum, provenance
                    // digest, then the full verifier.
                    let prog =
                        cbpf::wire::open(bytes, layout_for(self.hook), &rules_for(self.hook))
                            .map_err(|e| format!("artifact for policy {policy}: {e}"))?;
                    let bytecode = BytecodePolicy::new(
                        prog,
                        self.hook,
                        Arc::clone(self.concord.env()),
                    );
                    self.concord
                        .build_bytecode_patch(lock, self.hook, &bytecode, Some(&prefix))
                        .map_err(|e| e.to_string())
                }),
        );
        match result {
            Ok(_) => {
                self.applied.store(version, Ordering::Release);
                Ok(DeliverOutcome::Applied)
            }
            Err(e) => Err(e),
        }
    }

    /// Locks of this host currently carrying a `version` fleet patch.
    pub fn patched_locks(&self, version: u64) -> Vec<String> {
        let mgr = self.concord.patch_manager();
        self.locks
            .values()
            .filter(|lock| mgr.find(&self.patch_name(version, lock)).is_some())
            .cloned()
            .collect()
    }

    /// Reverts every `version` fleet patch on this host and rolls the
    /// served version back to `version - 1`.
    ///
    /// # Errors
    ///
    /// The first revert error (remaining patches stay applied).
    pub fn revert(&self, version: u64) -> Result<(), String> {
        let mgr = self.concord.patch_manager();
        for lock in self.locks.values() {
            if let Some(handle) = mgr.find(&self.patch_name(version, lock)) {
                mgr.revert_transaction(handle).map_err(|e| e.to_string())?;
            }
        }
        let _ = self.applied.compare_exchange(
            version,
            version.saturating_sub(1),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        Ok(())
    }
}
