//! Policy-driven schedule exploration (DESIGN.md §4.8).
//!
//! A systematic concurrency-testing subsystem: the hook sites that Concord
//! already intercepts for policy dispatch double as *injection points* for a
//! schedule explorer. A pluggable [`ScheduleStrategy`] decides at every
//! [`SchedPoint`] whether the arriving task proceeds, is delayed, or has its
//! CPU preempted — turning one deterministic simulation into a family of
//! adversarial schedules indexed by seed.
//!
//! Three strategy families are provided:
//!
//! - **random** — bounded delay injection with probability `p` per point;
//! - **pct** — PCT-style randomized priorities with `d` change points
//!   (Burckhardt et al.): each task gets a priority bucket, lower-priority
//!   tasks are slowed by a fixed unit per bucket, and priorities reshuffle
//!   at `d` randomly-drawn points;
//! - **policy** — a verified `cbpf` program decides from the same kind of
//!   context a production policy sees; the *test schedule itself* is a
//!   policy, closing the paper's loop (the mechanism that customizes locks
//!   also stress-tests them).
//!
//! Each schedule runs a fixture workload under `ksim` and is judged by
//! oracles: mutual exclusion, lock-order cycles (lockdep-style), deadlock
//! (stuck tasks at drain), starvation bounds, and the three Table 1 hazard
//! classes via [`watchdog::detect`]. On failure the injection list is
//! shrunk ddmin-style to a minimal [`Repro`] that replays bit-identically
//! (trace-hash pinned, like `chaos::crash_sweep`).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::sync::OnceLock;

use cbpf::helpers::{HelperId, PolicyEnv};
use cbpf::verifier::{verify_with_rules, HookRules};
use cbpf::{compile_dsl, CtxLayout, FieldAccess, JitMode, OptConfig, PreparedProgram};
use ksim::{
    CpuId, Histogram, Injection, PctStrategy, RandomDelayStrategy, ReplayStrategy, SchedAction,
    SchedController, SchedPoint, ScheduleStrategy, SimBuilder, SplitMix64,
};
use simlocks::{
    BrokenTicketLock, InversionPair, SimBravo, SimMcsLock, SimNeutralRwLock, SimPhaseFairRwLock,
    SimShflLock, SimTasLock, SimTicketLock, UnfairStealLock,
};

use crate::watchdog::{detect, WatchdogConfig, WindowStats};

/// Seed used for the uninjected baseline run of fixtures whose hazard
/// oracle compares against a clean window. Fixed (not derived from the
/// exploration seed) so `explore` and [`Repro::replay`] agree.
pub const BASELINE_SEED: u64 = 0xba5e;

/// Budget for one policy-strategy decision (instructions).
const POLICY_DECIDE_BUDGET: u64 = 8_192;

/// High bit of a policy-strategy return value selects Preempt over Delay.
pub const PREEMPT_BIT: u64 = 1 << 63;

/// Starvation bound for the `steal` fixture: the longest single wait the
/// victim may see under an uninjected schedule, with margin. Exceeding it
/// under injection is the planted unfairness surfacing.
const STEAL_STARVATION_BOUND_NS: u64 = 250_000;

// ---------------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------------

/// What an oracle observed. `kind()` is the stable identity used by the
/// shrinker (a candidate schedule must reproduce the same kind) and by the
/// replay artifact.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Two owners inside one critical section.
    Mutex { lock: u64, holder: u32, intruder: u32 },
    /// The lock-order graph acquired a cycle (lockdep-style).
    LockOrder { first: u64, then: u64 },
    /// Tasks still suspended when the event heap drained.
    Deadlock { stuck: usize },
    /// A single wait exceeded the fixture's starvation bound.
    Starvation { task: u32, wait_ns: u64, bound_ns: u64 },
    /// A Table 1 hazard class fired against the baseline window.
    Hazard { class: &'static str, detail: String },
}

impl Violation {
    /// Stable kind name (artifact files, shrink equivalence).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Mutex { .. } => "mutex",
            Violation::LockOrder { .. } => "lock_order",
            Violation::Deadlock { .. } => "deadlock",
            Violation::Starvation { .. } => "starvation",
            Violation::Hazard { .. } => "hazard",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Mutex {
                lock,
                holder,
                intruder,
            } => write!(
                f,
                "mutual exclusion broken on lock {lock}: task {intruder} entered while task {holder} held it"
            ),
            Violation::LockOrder { first, then } => write!(
                f,
                "lock-order cycle: acquiring {then} while holding {first} closes a cycle"
            ),
            Violation::Deadlock { stuck } => write!(f, "deadlock: {stuck} task(s) stuck at drain"),
            Violation::Starvation {
                task,
                wait_ns,
                bound_ns,
            } => write!(
                f,
                "starvation: task {task} waited {wait_ns}ns (bound {bound_ns}ns)"
            ),
            Violation::Hazard { class, detail } => write!(f, "hazard ({class}): {detail}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Monitor: the oracles that watch a fixture run
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MonState {
    /// lock -> (exclusive owner, shared owners).
    owners: HashMap<u64, (Option<u32>, HashSet<u32>)>,
    /// task -> locks currently held (for order edges).
    held: HashMap<u32, Vec<u64>>,
    /// Directed lock-order edges `held -> wanted`.
    edges: HashMap<u64, HashSet<u64>>,
    wait_from: HashMap<(u32, u64), u64>,
    held_from: HashMap<(u32, u64), u64>,
    wait: Histogram,
    hold: Histogram,
    max_wait: u64,
    max_wait_task: u32,
    violation: Option<Violation>,
}

/// Records lock events from a fixture workload and checks the safety
/// oracles inline. Non-async: workloads call it around their lock ops with
/// `t.now()` in hand, so it charges no virtual time and perturbs nothing.
#[derive(Default)]
pub struct Monitor {
    s: RefCell<MonState>,
}

impl Monitor {
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Task `task` starts waiting for `lock` at `now`. Adds lock-order
    /// edges from every lock it already holds and cycle-checks.
    pub fn acquiring(&self, lock: u64, task: u32, now: u64) {
        let mut s = self.s.borrow_mut();
        s.wait_from.insert((task, lock), now);
        let held = s.held.get(&task).cloned().unwrap_or_default();
        for h in held {
            if h == lock {
                continue;
            }
            s.edges.entry(h).or_default().insert(lock);
            // Edge h -> lock just landed; a path lock ->* h closes a cycle.
            if s.violation.is_none() && has_path(&s.edges, lock, h) {
                s.violation = Some(Violation::LockOrder {
                    first: h,
                    then: lock,
                });
            }
        }
    }

    /// Task `task` entered the critical section of `lock` at `now`.
    pub fn acquired(&self, lock: u64, task: u32, now: u64, exclusive: bool) {
        let mut s = self.s.borrow_mut();
        let (excl, shared) = s.owners.entry(lock).or_default();
        let conflict = if exclusive {
            excl.or_else(|| shared.iter().next().copied())
        } else {
            *excl
        };
        if let Some(holder) = conflict {
            if s.violation.is_none() {
                s.violation = Some(Violation::Mutex {
                    lock,
                    holder,
                    intruder: task,
                });
            }
        }
        let (excl, shared) = s.owners.entry(lock).or_default();
        if exclusive {
            *excl = Some(task);
        } else {
            shared.insert(task);
        }
        s.held.entry(task).or_default().push(lock);
        if let Some(from) = s.wait_from.remove(&(task, lock)) {
            let w = now.saturating_sub(from);
            s.wait.record(w);
            if w > s.max_wait {
                s.max_wait = w;
                s.max_wait_task = task;
            }
        }
        s.held_from.insert((task, lock), now);
    }

    /// Task `task` left the critical section of `lock` at `now`.
    pub fn released(&self, lock: u64, task: u32, now: u64) {
        let mut s = self.s.borrow_mut();
        if let Some(from) = s.held_from.remove(&(task, lock)) {
            s.hold.record(now.saturating_sub(from));
        }
        if let Some((excl, shared)) = s.owners.get_mut(&lock) {
            if *excl == Some(task) {
                *excl = None;
            }
            shared.remove(&task);
        }
        if let Some(v) = s.held.get_mut(&task) {
            if let Some(pos) = v.iter().rposition(|l| *l == lock) {
                v.remove(pos);
            }
        }
    }

    fn take_violation(&self) -> Option<Violation> {
        self.s.borrow_mut().violation.take()
    }

    fn max_wait(&self) -> (u64, u32) {
        let s = self.s.borrow();
        (s.max_wait, s.max_wait_task)
    }

    fn window(&self) -> WindowStats {
        let s = self.s.borrow();
        WindowStats::from_hists(&s.wait, &s.hold)
    }
}

/// BFS reachability over the lock-order edge set.
fn has_path(edges: &HashMap<u64, HashSet<u64>>, from: u64, to: u64) -> bool {
    if from == to {
        return true;
    }
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = edges.get(&n) {
            for &m in next {
                if m == to {
                    return true;
                }
                stack.push(m);
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Fixtures: workloads the explorer drives
// ---------------------------------------------------------------------------

/// A lock from the correct simlocks zoo, for sweep testing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ZooLock {
    Mcs,
    Ticket,
    Tas,
    Shfl,
    PhaseFair,
    Bravo,
    Rw,
}

impl ZooLock {
    pub const ALL: [ZooLock; 7] = [
        ZooLock::Mcs,
        ZooLock::Ticket,
        ZooLock::Tas,
        ZooLock::Shfl,
        ZooLock::PhaseFair,
        ZooLock::Bravo,
        ZooLock::Rw,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ZooLock::Mcs => "mcs",
            ZooLock::Ticket => "ticket",
            ZooLock::Tas => "tas",
            ZooLock::Shfl => "shfl",
            ZooLock::PhaseFair => "phasefair",
            ZooLock::Bravo => "bravo",
            ZooLock::Rw => "rw",
        }
    }
}

/// A workload + oracle configuration the explorer can run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fixture {
    /// Planted bug: ticket take is a non-atomic load/store pair.
    BrokenTicket,
    /// Planted bug: two lock orders for the same pair (AB vs BA).
    Inversion,
    /// Planted bug: barging lock that always lets stealers win.
    Steal,
    /// A correct zoo lock under generic contention (no planted bug).
    Zoo(ZooLock),
}

impl Fixture {
    /// The three deliberately buggy fixtures the CI gate must catch.
    pub const BROKEN: [Fixture; 3] = [Fixture::BrokenTicket, Fixture::Inversion, Fixture::Steal];

    pub fn name(&self) -> String {
        match self {
            Fixture::BrokenTicket => "broken_ticket".to_string(),
            Fixture::Inversion => "inversion".to_string(),
            Fixture::Steal => "steal".to_string(),
            Fixture::Zoo(z) => format!("zoo_{}", z.name()),
        }
    }

    pub fn from_name(name: &str) -> Option<Fixture> {
        match name {
            "broken_ticket" => Some(Fixture::BrokenTicket),
            "inversion" => Some(Fixture::Inversion),
            "steal" => Some(Fixture::Steal),
            _ => {
                let z = name.strip_prefix("zoo_")?;
                ZooLock::ALL
                    .into_iter()
                    .find(|l| l.name() == z)
                    .map(Fixture::Zoo)
            }
        }
    }

    /// Largest single wait tolerated before the starvation oracle fires.
    fn starvation_bound_ns(&self) -> Option<u64> {
        match self {
            Fixture::Steal => Some(STEAL_STARVATION_BOUND_NS),
            _ => None,
        }
    }

    /// Whether the Table 1 hazard oracle compares against a baseline window.
    fn uses_hazard_oracle(&self) -> bool {
        matches!(self, Fixture::Steal)
    }

    /// Runs the fixture's uninjected baseline and returns its window, for
    /// fixtures whose hazard oracle needs one.
    pub fn baseline_window(&self) -> Option<WindowStats> {
        if !self.uses_hazard_oracle() {
            return None;
        }
        Some(self.run(BASELINE_SEED, None, None).window)
    }

    /// Runs one schedule of this fixture: `seed` seeds the simulator,
    /// `strategy` (if any) drives the injection points, and `baseline`
    /// feeds the hazard oracle. Fully deterministic in its arguments.
    pub fn run(
        &self,
        seed: u64,
        strategy: Option<Box<dyn ScheduleStrategy>>,
        baseline: Option<&WindowStats>,
    ) -> RunOutcome {
        let sim = SimBuilder::new().seed(seed).build();
        let controller = strategy.map(|s| Rc::new(SchedController::new(s)));
        if let Some(c) = &controller {
            sim.set_sched_hook(Some(Rc::clone(c)));
        }
        let monitor = Rc::new(Monitor::new());
        self.spawn_workload(&sim, &monitor);
        let stats = sim.run();

        let mut violation = monitor.take_violation();
        if violation.is_none() && !stats.stuck_tasks.is_empty() {
            violation = Some(Violation::Deadlock {
                stuck: stats.stuck_tasks.len(),
            });
        }
        if violation.is_none() {
            if let Some(bound) = self.starvation_bound_ns() {
                let (w, task) = monitor.max_wait();
                if w > bound {
                    violation = Some(Violation::Starvation {
                        task,
                        wait_ns: w,
                        bound_ns: bound,
                    });
                }
            }
        }
        let window = monitor.window();
        if violation.is_none() && self.uses_hazard_oracle() {
            if let Some(base) = baseline {
                let cfg = WatchdogConfig {
                    min_acquisitions: 50,
                    ..WatchdogConfig::default()
                };
                if let Some(report) = detect(base, &window, &cfg) {
                    let class = match report.hazard {
                        locks::hooks::Hazard::Fairness => "fairness",
                        locks::hooks::Hazard::Performance => "performance",
                        locks::hooks::Hazard::CriticalSection => "critical_section",
                    };
                    violation = Some(Violation::Hazard {
                        class,
                        detail: report.detail,
                    });
                }
            }
        }
        RunOutcome {
            violation,
            trace_hash: stats.trace_hash,
            final_time_ns: stats.final_time_ns,
            points: controller.as_ref().map(|c| c.points()).unwrap_or(0),
            injections: controller
                .as_ref()
                .map(|c| c.injections())
                .unwrap_or_default(),
            window,
        }
    }

    fn spawn_workload(&self, sim: &ksim::Sim, monitor: &Rc<Monitor>) {
        match self {
            Fixture::BrokenTicket => {
                let lock = Rc::new(BrokenTicketLock::new(sim));
                for i in 0..6u32 {
                    let lock = Rc::clone(&lock);
                    let mon = Rc::clone(monitor);
                    sim.spawn_on(CpuId(i * 10), move |t| async move {
                        t.advance(u64::from(i) * 5_000).await;
                        for _ in 0..6 {
                            mon.acquiring(lock.lock_id(), t.id().0, t.now());
                            lock.acquire(&t).await;
                            mon.acquired(lock.lock_id(), t.id().0, t.now(), true);
                            t.advance(150).await;
                            mon.released(lock.lock_id(), t.id().0, t.now());
                            lock.release(&t).await;
                            t.advance(40_000).await;
                        }
                    });
                }
            }
            Fixture::Inversion => {
                let pair = Rc::new(InversionPair::new(sim));
                for i in 0..4u32 {
                    let pair = Rc::clone(&pair);
                    let mon = Rc::clone(monitor);
                    // Tasks 0-1 take A then B; tasks 2-3 take B then A.
                    let ab = i < 2;
                    sim.spawn_on(CpuId(i * 10), move |t| async move {
                        t.advance(u64::from(i) * 1_000).await;
                        let (a, b) = (pair.a(), pair.b());
                        let (first, second) = if ab { (a, b) } else { (b, a) };
                        for _ in 0..8 {
                            mon.acquiring(first.lock_id(), t.id().0, t.now());
                            first.acquire(&t).await;
                            mon.acquired(first.lock_id(), t.id().0, t.now(), true);
                            t.advance(80).await;
                            mon.acquiring(second.lock_id(), t.id().0, t.now());
                            second.acquire(&t).await;
                            mon.acquired(second.lock_id(), t.id().0, t.now(), true);
                            t.advance(120).await;
                            mon.released(second.lock_id(), t.id().0, t.now());
                            second.release(&t).await;
                            mon.released(first.lock_id(), t.id().0, t.now());
                            first.release(&t).await;
                            t.advance(900).await;
                        }
                    });
                }
            }
            Fixture::Steal => {
                let lock = Rc::new(UnfairStealLock::new(sim));
                for i in 0..4u32 {
                    let lock = Rc::clone(&lock);
                    let mon = Rc::clone(monitor);
                    sim.spawn_on(CpuId(i), move |t| async move {
                        t.advance(u64::from(i) * 350).await;
                        for _ in 0..50 {
                            mon.acquiring(lock.lock_id(), t.id().0, t.now());
                            lock.acquire(&t).await;
                            mon.acquired(lock.lock_id(), t.id().0, t.now(), true);
                            t.advance(400).await;
                            mon.released(lock.lock_id(), t.id().0, t.now());
                            lock.release(&t).await;
                            t.advance(900).await;
                        }
                    });
                }
                let victim = Rc::clone(&lock);
                let mon = Rc::clone(monitor);
                sim.spawn_on(CpuId(79), move |t| async move {
                    for _ in 0..8 {
                        t.advance(700).await;
                        mon.acquiring(victim.lock_id(), t.id().0, t.now());
                        victim.acquire(&t).await;
                        mon.acquired(victim.lock_id(), t.id().0, t.now(), true);
                        t.advance(100).await;
                        mon.released(victim.lock_id(), t.id().0, t.now());
                        victim.release(&t).await;
                    }
                });
            }
            Fixture::Zoo(z) => spawn_zoo(*z, sim, monitor),
        }
    }
}

/// Exclusive-lock sweep workload shared by the mutex-style zoo locks.
macro_rules! zoo_mutex_workload {
    ($sim:expr, $monitor:expr, $lock_ty:ty) => {{
        let lock = Rc::new(<$lock_ty>::new($sim));
        for i in 0..8u32 {
            let lock = Rc::clone(&lock);
            let mon = Rc::clone($monitor);
            $sim.spawn_on(CpuId(i * 10), move |t| async move {
                t.advance(u64::from(i) * 300).await;
                for _ in 0..10 {
                    mon.acquiring(lock.lock_id(), t.id().0, t.now());
                    lock.acquire(&t).await;
                    mon.acquired(lock.lock_id(), t.id().0, t.now(), true);
                    t.advance(200).await;
                    mon.released(lock.lock_id(), t.id().0, t.now());
                    lock.release(&t).await;
                    t.advance(250).await;
                }
            });
        }
    }};
}

/// Reader/writer sweep workload shared by the rw-style zoo locks.
macro_rules! zoo_rw_workload {
    ($sim:expr, $monitor:expr, $lock_ty:ty) => {{
        let lock = Rc::new(<$lock_ty>::new($sim));
        for i in 0..8u32 {
            let lock = Rc::clone(&lock);
            let mon = Rc::clone($monitor);
            let writer = i < 2;
            $sim.spawn_on(CpuId(i * 10), move |t| async move {
                t.advance(u64::from(i) * 300).await;
                for _ in 0..10 {
                    mon.acquiring(lock.lock_id(), t.id().0, t.now());
                    if writer {
                        lock.write_acquire(&t).await;
                        mon.acquired(lock.lock_id(), t.id().0, t.now(), true);
                        t.advance(200).await;
                        mon.released(lock.lock_id(), t.id().0, t.now());
                        lock.write_release(&t).await;
                    } else {
                        lock.read_acquire(&t).await;
                        mon.acquired(lock.lock_id(), t.id().0, t.now(), false);
                        t.advance(150).await;
                        mon.released(lock.lock_id(), t.id().0, t.now());
                        lock.read_release(&t).await;
                    }
                    t.advance(250).await;
                }
            });
        }
    }};
}

fn spawn_zoo(z: ZooLock, sim: &ksim::Sim, monitor: &Rc<Monitor>) {
    match z {
        ZooLock::Mcs => zoo_mutex_workload!(sim, monitor, SimMcsLock),
        ZooLock::Ticket => zoo_mutex_workload!(sim, monitor, SimTicketLock),
        ZooLock::Tas => zoo_mutex_workload!(sim, monitor, SimTasLock),
        ZooLock::Shfl => {
            let lock = Rc::new(SimShflLock::new(sim));
            for i in 0..8u32 {
                let lock = Rc::clone(&lock);
                let mon = Rc::clone(monitor);
                sim.spawn_on(CpuId(i * 10), move |t| async move {
                    t.advance(u64::from(i) * 300).await;
                    for _ in 0..10 {
                        mon.acquiring(lock.id(), t.id().0, t.now());
                        lock.acquire(&t).await;
                        mon.acquired(lock.id(), t.id().0, t.now(), true);
                        t.advance(200).await;
                        mon.released(lock.id(), t.id().0, t.now());
                        lock.release(&t).await;
                        t.advance(250).await;
                    }
                });
            }
        }
        ZooLock::PhaseFair => zoo_rw_workload!(sim, monitor, SimPhaseFairRwLock),
        ZooLock::Bravo => zoo_rw_workload!(sim, monitor, SimBravo),
        ZooLock::Rw => zoo_rw_workload!(sim, monitor, SimNeutralRwLock),
    }
}

/// Everything one schedule produced.
pub struct RunOutcome {
    pub violation: Option<Violation>,
    pub trace_hash: u64,
    pub final_time_ns: u64,
    /// Schedule points visited (0 when run uninjected).
    pub points: u64,
    /// Non-Proceed decisions the strategy made, in visit order.
    pub injections: Vec<Injection>,
    /// Wait/hold window the monitor observed (hazard-oracle input).
    pub window: WindowStats,
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Serializable description of a strategy; `build(seed)` instantiates it.
#[derive(Clone, Debug, PartialEq)]
pub enum StrategySpec {
    Random { p_mille: u32, max_delay_ns: u64 },
    Pct { buckets: u64, change_points: u32 },
    Policy { src: String },
    Replay(Vec<Injection>),
}

impl StrategySpec {
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::Random { .. } => "random",
            StrategySpec::Pct { .. } => "pct",
            StrategySpec::Policy { .. } => "policy",
            StrategySpec::Replay(_) => "replay",
        }
    }

    /// Default parameterization by strategy name (the c3ctl surface).
    pub fn from_name(name: &str) -> Option<StrategySpec> {
        match name {
            "random" => Some(StrategySpec::Random {
                p_mille: 120,
                max_delay_ns: 60_000,
            }),
            "pct" => Some(StrategySpec::Pct {
                buckets: 8,
                change_points: 3,
            }),
            "policy" => Some(StrategySpec::Policy {
                src: default_policy_src().to_string(),
            }),
            _ => None,
        }
    }

    /// Instantiates the strategy for one schedule. Policy sources are
    /// compiled and verified here; a rejected program is an error, not a
    /// silent no-op.
    pub fn build(&self, seed: u64) -> Result<Box<dyn ScheduleStrategy>, ExploreError> {
        match self {
            StrategySpec::Random {
                p_mille,
                max_delay_ns,
            } => Ok(Box::new(RandomDelayStrategy::new(
                seed,
                *p_mille,
                *max_delay_ns,
            ))),
            StrategySpec::Pct {
                buckets,
                change_points,
            } => Ok(Box::new(PctStrategy::new(
                seed,
                *buckets,
                *change_points,
                4_096,
            ))),
            StrategySpec::Policy { src } => {
                Ok(Box::new(PolicySchedStrategy::compile(src, seed)?))
            }
            StrategySpec::Replay(injections) => Ok(Box::new(ReplayStrategy::new(injections))),
        }
    }
}

/// Context layout a schedule policy sees at each point. All fields are
/// read-only: the program's influence flows only through its return value.
pub fn sched_ctx_layout() -> &'static CtxLayout {
    static LAYOUT: OnceLock<CtxLayout> = OnceLock::new();
    LAYOUT.get_or_init(|| {
        CtxLayout::builder()
            .field("lock_id", 8, FieldAccess::ReadOnly)
            .field("now_ns", 8, FieldAccess::ReadOnly)
            .field("point_index", 8, FieldAccess::ReadOnly)
            .field("task_seq", 8, FieldAccess::ReadOnly)
            .field("rnd", 8, FieldAccess::ReadOnly)
            .field("site", 4, FieldAccess::ReadOnly)
            .field("task", 4, FieldAccess::ReadOnly)
            .field("cpu", 4, FieldAccess::ReadOnly)
            .field("socket", 4, FieldAccess::ReadOnly)
            .build()
    })
}

/// Verifier rules for schedule policies: decision-hook strictness (128
/// insns, no ctx writes) plus the `sched_hint` introspection helper.
pub fn sched_rules() -> HookRules {
    HookRules {
        max_insns: Some(128),
        allowed_helpers: Some(vec![
            HelperId::MapLookup,
            HelperId::MapUpdate,
            HelperId::KtimeNs,
            HelperId::CpuId,
            HelperId::NumaId,
            HelperId::Pid,
            HelperId::Prandom,
            HelperId::TaskPriority,
            HelperId::CpuToNode,
            HelperId::CpuOnline,
            HelperId::TraceEmit,
            HelperId::SchedHint,
        ]),
        allow_ctx_writes: false,
    }
}

/// The default schedule-steering policy, in the cbpf DSL. Concentrates
/// pressure on race windows (site 6) and contended arrivals (site 1); the
/// return encoding is `0` = proceed, high bit = preempt, else delay ns.
pub fn default_policy_src() -> &'static str {
    "let r = sched_hint(2);\n\
     if (site == 6 && (r % 3) != 2)\n\
         return 4000 + (r % 120000);\n\
     if (site == 1 && (r % 5) == 0)\n\
         return 9223372036854775808 + 30000;\n\
     return 0;\n"
}

/// Per-point environment a schedule policy's helpers read.
#[derive(Default)]
struct SchedEnv {
    cpu: Cell<u32>,
    socket: Cell<u32>,
    time: Cell<u64>,
    pid: Cell<u64>,
    rnd: Cell<u64>,
    points: Cell<u64>,
    injections: Cell<u64>,
}

impl PolicyEnv for SchedEnv {
    fn cpu_id(&self) -> u32 {
        self.cpu.get()
    }
    fn numa_id(&self) -> u32 {
        self.socket.get()
    }
    fn ktime_ns(&self) -> u64 {
        self.time.get()
    }
    fn pid(&self) -> u64 {
        self.pid.get()
    }
    fn prandom(&self) -> u64 {
        self.rnd.get()
    }
    fn sched_hint(&self, code: u64) -> u64 {
        match code {
            0 => self.points.get(),
            1 => self.injections.get(),
            2 => self.rnd.get(),
            _ => 0,
        }
    }
}

/// A [`ScheduleStrategy`] whose decisions come from a verified cbpf
/// program: the test schedule is itself a policy.
pub struct PolicySchedStrategy {
    prepared: PreparedProgram,
    env: SchedEnv,
    rng: SplitMix64,
}

impl PolicySchedStrategy {
    /// Compiles `src` (cbpf DSL), verifies it under [`sched_rules`], and
    /// prepares it for per-point execution.
    pub fn compile(src: &str, seed: u64) -> Result<PolicySchedStrategy, ExploreError> {
        let layout = sched_ctx_layout();
        let prog = compile_dsl("sched_policy", src, layout)
            .map_err(|e| ExploreError::Policy(e.to_string()))?;
        verify_with_rules(&prog, layout, &sched_rules())
            .map_err(|e| ExploreError::Policy(e.to_string()))?;
        Ok(PolicySchedStrategy {
            // Eager jit: a schedule campaign invokes the policy at every
            // decision point of every schedule, so the compile cost
            // amortizes within the first schedule.
            prepared: prog.prepare_with_jit(layout, OptConfig::default(), JitMode::Eager),
            env: SchedEnv::default(),
            rng: SplitMix64::new(seed ^ 0x9051_c7ed_0bad_f00d),
        })
    }

    fn marshal(&self, p: &SchedPoint, rnd: u64) -> Vec<u8> {
        struct Offs {
            size: usize,
            now: usize,
            index: usize,
            seq: usize,
            rnd: usize,
            site: usize,
            task: usize,
            cpu: usize,
            socket: usize,
        }
        static OFFS: OnceLock<Offs> = OnceLock::new();
        let o = OFFS.get_or_init(|| {
            let l = sched_ctx_layout();
            let f = |n: &str| l.field(n).expect("declared").offset;
            Offs {
                size: l.size(),
                now: f("now_ns"),
                index: f("point_index"),
                seq: f("task_seq"),
                rnd: f("rnd"),
                site: f("site"),
                task: f("task"),
                cpu: f("cpu"),
                socket: f("socket"),
            }
        });
        let mut buf = vec![0u8; o.size];
        buf[0..8].copy_from_slice(&p.lock_id.to_le_bytes());
        buf[o.now..o.now + 8].copy_from_slice(&p.now_ns.to_le_bytes());
        buf[o.index..o.index + 8].copy_from_slice(&p.index.to_le_bytes());
        buf[o.seq..o.seq + 8].copy_from_slice(&p.task_seq.to_le_bytes());
        buf[o.rnd..o.rnd + 8].copy_from_slice(&rnd.to_le_bytes());
        buf[o.site..o.site + 4].copy_from_slice(&p.site.code().to_le_bytes());
        buf[o.task..o.task + 4].copy_from_slice(&p.task.0.to_le_bytes());
        buf[o.cpu..o.cpu + 4].copy_from_slice(&p.cpu.to_le_bytes());
        buf[o.socket..o.socket + 4].copy_from_slice(&p.socket.to_le_bytes());
        buf
    }
}

impl ScheduleStrategy for PolicySchedStrategy {
    fn decide(&mut self, p: &SchedPoint) -> SchedAction {
        let rnd = self.rng.next_u64();
        self.env.cpu.set(p.cpu);
        self.env.socket.set(p.socket);
        self.env.time.set(p.now_ns);
        self.env.pid.set(u64::from(p.task.0));
        self.env.rnd.set(rnd);
        self.env.points.set(p.index);
        let mut ctx = self.marshal(p, rnd);
        let ret = match self.prepared.run(&mut ctx, &self.env, POLICY_DECIDE_BUDGET) {
            Ok(report) => report.ret,
            // A verified program can only fail by budget; treat as Proceed.
            Err(_) => 0,
        };
        if ret == 0 {
            return SchedAction::Proceed;
        }
        self.env.injections.set(self.env.injections.get() + 1);
        if ret & PREEMPT_BIT != 0 {
            SchedAction::Preempt(ret & !PREEMPT_BIT)
        } else {
            SchedAction::Delay(ret)
        }
    }

    fn name(&self) -> &'static str {
        "policy"
    }
}

// ---------------------------------------------------------------------------
// Explorer + shrinker
// ---------------------------------------------------------------------------

/// Errors from the exploration surface (typed for `c3ctl`).
#[derive(Clone, Debug, PartialEq)]
pub enum ExploreError {
    /// Fixture name not recognized.
    UnknownFixture(String),
    /// Strategy name not recognized.
    UnknownStrategy(String),
    /// Schedule policy rejected by compiler or verifier.
    Policy(String),
    /// Replay artifact malformed.
    BadArtifact(String),
    /// Replaying the recorded injections did not reproduce the violation.
    ReplayDiverged { expected: String, got: String },
    /// Two replays of the shrunk schedule disagreed on trace hash.
    NondeterministicReplay { first: u64, second: u64 },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::UnknownFixture(n) => write!(f, "unknown fixture '{n}'"),
            ExploreError::UnknownStrategy(n) => write!(f, "unknown strategy '{n}'"),
            ExploreError::Policy(e) => write!(f, "schedule policy rejected: {e}"),
            ExploreError::BadArtifact(e) => write!(f, "bad repro artifact: {e}"),
            ExploreError::ReplayDiverged { expected, got } => {
                write!(f, "replay diverged: expected {expected}, got {got}")
            }
            ExploreError::NondeterministicReplay { first, second } => write!(
                f,
                "nondeterministic replay: trace hashes {first:#x} vs {second:#x}"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Schedules to try before giving up.
    pub schedules: u32,
    /// Base seed; schedule `i` derives its seed deterministically from it.
    pub base_seed: u64,
    /// Replay budget for the shrinker.
    pub shrink_budget: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            schedules: 64,
            base_seed: 0x5eed,
            shrink_budget: 400,
        }
    }
}

/// Result of an exploration campaign.
pub struct ExploreReport {
    pub fixture: String,
    pub strategy: String,
    /// Schedules actually run (≤ configured budget).
    pub schedules_run: u32,
    /// 0-based index of the first failing schedule, if any.
    pub first_bug_schedule: Option<u32>,
    /// The violation the first failing schedule produced.
    pub violation: Option<Violation>,
    /// Minimal replayable artifact (present iff a bug was found).
    pub repro: Option<Repro>,
}

/// Deterministic per-schedule seed derivation.
fn schedule_seed(base: u64, i: u32) -> u64 {
    let mut r = SplitMix64::new(base ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    r.next_u64()
}

/// Runs up to `cfg.schedules` seeded schedules of `fixture` under `spec`,
/// stopping at the first oracle violation, which is then shrunk to a
/// minimal [`Repro`].
pub fn explore(
    fixture: Fixture,
    spec: &StrategySpec,
    cfg: &ExploreConfig,
) -> Result<ExploreReport, ExploreError> {
    let baseline = fixture.baseline_window();
    for i in 0..cfg.schedules {
        let seed = schedule_seed(cfg.base_seed, i);
        let strat = spec.build(seed)?;
        let out = fixture.run(seed, Some(strat), baseline.as_ref());
        if let Some(v) = out.violation {
            let repro = shrink(
                fixture,
                seed,
                spec,
                &v,
                out.injections,
                baseline.as_ref(),
                cfg.shrink_budget,
            )?;
            return Ok(ExploreReport {
                fixture: fixture.name(),
                strategy: spec.name().to_string(),
                schedules_run: i + 1,
                first_bug_schedule: Some(i),
                violation: Some(v),
                repro: Some(repro),
            });
        }
    }
    Ok(ExploreReport {
        fixture: fixture.name(),
        strategy: spec.name().to_string(),
        schedules_run: cfg.schedules,
        first_bug_schedule: None,
        violation: None,
        repro: None,
    })
}

/// ddmin-style shrink: greedily drop chunks of the injection list (halves
/// down to singles), keeping a candidate iff its deterministic replay
/// reproduces the same violation *kind*. Ends with a double replay whose
/// trace hashes must match — the repro is pinned bit-identically.
fn shrink(
    fixture: Fixture,
    seed: u64,
    spec: &StrategySpec,
    violation: &Violation,
    injections: Vec<Injection>,
    baseline: Option<&WindowStats>,
    budget: u32,
) -> Result<Repro, ExploreError> {
    let kind = violation.kind();
    let attempts = Cell::new(0u32);
    let replay = |inj: &[Injection]| -> RunOutcome {
        attempts.set(attempts.get() + 1);
        fixture.run(
            seed,
            Some(Box::new(ReplayStrategy::new(inj))),
            baseline,
        )
    };
    let reproduces =
        |out: &RunOutcome| out.violation.as_ref().map(Violation::kind) == Some(kind);

    // The recorded injections must reproduce under replay before shrinking
    // means anything.
    let full = replay(&injections);
    if !reproduces(&full) {
        return Err(ExploreError::ReplayDiverged {
            expected: kind.to_string(),
            got: full
                .violation
                .as_ref()
                .map(|v| v.kind().to_string())
                .unwrap_or_else(|| "none".to_string()),
        });
    }

    let mut current = injections;
    if reproduces(&replay(&[])) {
        // Schedule-independent bug (e.g. a static ordering violation).
        current = Vec::new();
    } else {
        let mut chunk = (current.len() / 2).max(1);
        loop {
            let mut removed = false;
            let mut i = 0;
            while i < current.len() && attempts.get() < budget {
                let end = (i + chunk).min(current.len());
                let mut cand = current.clone();
                cand.drain(i..end);
                if reproduces(&replay(&cand)) {
                    current = cand;
                    removed = true;
                } else {
                    i = end;
                }
            }
            if attempts.get() >= budget || (chunk == 1 && !removed) {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }

    // Pin the artifact: two fresh replays must agree bit-for-bit.
    let first = replay(&current);
    let second = replay(&current);
    if first.trace_hash != second.trace_hash {
        return Err(ExploreError::NondeterministicReplay {
            first: first.trace_hash,
            second: second.trace_hash,
        });
    }
    if !reproduces(&first) {
        return Err(ExploreError::ReplayDiverged {
            expected: kind.to_string(),
            got: first
                .violation
                .as_ref()
                .map(|v| v.kind().to_string())
                .unwrap_or_else(|| "none".to_string()),
        });
    }
    Ok(Repro {
        fixture: fixture.name(),
        seed,
        strategy: spec.name().to_string(),
        violation: kind.to_string(),
        trace_hash: first.trace_hash,
        injections: current,
    })
}

// ---------------------------------------------------------------------------
// Replay artifact
// ---------------------------------------------------------------------------

/// A minimal, self-contained, bit-identical repro of one schedule bug:
/// `(fixture, seed, injection list)` plus the pinned trace hash.
///
/// Text format (`c3-schedule-repro v1`):
///
/// ```text
/// c3-schedule-repro v1
/// fixture broken_ticket
/// seed 12345
/// strategy random
/// violation mutex
/// trace_hash 0x1a2b3c4d
/// inj 3 7 delay 60000
/// inj 2 4 preempt 30000
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    pub fixture: String,
    pub seed: u64,
    pub strategy: String,
    /// Violation kind the artifact reproduces.
    pub violation: String,
    /// Trace hash both pinning replays produced.
    pub trace_hash: u64,
    pub injections: Vec<Injection>,
}

impl Repro {
    /// Serializes to the `c3-schedule-repro v1` text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("c3-schedule-repro v1\n");
        s.push_str(&format!("fixture {}\n", self.fixture));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("strategy {}\n", self.strategy));
        s.push_str(&format!("violation {}\n", self.violation));
        s.push_str(&format!("trace_hash {:#x}\n", self.trace_hash));
        for inj in &self.injections {
            let (verb, ns) = match inj.action {
                SchedAction::Delay(ns) => ("delay", ns),
                SchedAction::Preempt(ns) => ("preempt", ns),
                SchedAction::Proceed => continue,
            };
            s.push_str(&format!("inj {} {} {} {}\n", inj.task, inj.task_seq, verb, ns));
        }
        s
    }

    /// Parses the `c3-schedule-repro v1` text format.
    pub fn from_text(text: &str) -> Result<Repro, ExploreError> {
        let bad = |m: &str| ExploreError::BadArtifact(m.to_string());
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        match lines.next() {
            Some("c3-schedule-repro v1") => {}
            _ => return Err(bad("missing 'c3-schedule-repro v1' header")),
        }
        let mut fixture = None;
        let mut seed = None;
        let mut strategy = None;
        let mut violation = None;
        let mut trace_hash = None;
        let mut injections = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or_default();
            match key {
                "fixture" => fixture = parts.next().map(str::to_string),
                "strategy" => strategy = parts.next().map(str::to_string),
                "violation" => violation = parts.next().map(str::to_string),
                "seed" => {
                    seed = Some(
                        parts
                            .next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .ok_or_else(|| bad("bad seed"))?,
                    )
                }
                "trace_hash" => {
                    let v = parts.next().ok_or_else(|| bad("bad trace_hash"))?;
                    let v = v.strip_prefix("0x").unwrap_or(v);
                    trace_hash =
                        Some(u64::from_str_radix(v, 16).map_err(|_| bad("bad trace_hash"))?);
                }
                "inj" => {
                    let task = parts
                        .next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| bad("bad inj task"))?;
                    let task_seq = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| bad("bad inj task_seq"))?;
                    let verb = parts.next().ok_or_else(|| bad("bad inj verb"))?;
                    let ns = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| bad("bad inj ns"))?;
                    let action = match verb {
                        "delay" => SchedAction::Delay(ns),
                        "preempt" => SchedAction::Preempt(ns),
                        _ => return Err(bad("inj verb must be delay|preempt")),
                    };
                    injections.push(Injection {
                        task,
                        task_seq,
                        action,
                    });
                }
                _ => return Err(bad(&format!("unknown key '{key}'"))),
            }
        }
        Ok(Repro {
            fixture: fixture.ok_or_else(|| bad("missing fixture"))?,
            seed: seed.ok_or_else(|| bad("missing seed"))?,
            strategy: strategy.ok_or_else(|| bad("missing strategy"))?,
            violation: violation.ok_or_else(|| bad("missing violation"))?,
            trace_hash: trace_hash.ok_or_else(|| bad("missing trace_hash"))?,
            injections,
        })
    }

    /// Replays the artifact once and checks it still reproduces: same
    /// violation kind, same trace hash. Returns the run for inspection.
    pub fn replay(&self) -> Result<RunOutcome, ExploreError> {
        let fixture = Fixture::from_name(&self.fixture)
            .ok_or_else(|| ExploreError::UnknownFixture(self.fixture.clone()))?;
        let baseline = fixture.baseline_window();
        let out = fixture.run(
            self.seed,
            Some(Box::new(ReplayStrategy::new(&self.injections))),
            baseline.as_ref(),
        );
        let got = out
            .violation
            .as_ref()
            .map(|v| v.kind().to_string())
            .unwrap_or_else(|| "none".to_string());
        if got != self.violation {
            return Err(ExploreError::ReplayDiverged {
                expected: self.violation.clone(),
                got,
            });
        }
        if out.trace_hash != self.trace_hash {
            return Err(ExploreError::NondeterministicReplay {
                first: self.trace_hash,
                second: out.trace_hash,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_baselines_clean() {
        for z in ZooLock::ALL {
            let out = Fixture::Zoo(z).run(7, None, None);
            assert!(
                out.violation.is_none(),
                "zoo {} baseline violated: {:?}",
                z.name(),
                out.violation
            );
        }
    }

    #[test]
    fn broken_ticket_baseline_clean_but_explorable() {
        let out = Fixture::BrokenTicket.run(7, None, None);
        assert!(out.violation.is_none(), "baseline must be race-free");
    }

    #[test]
    fn fixture_names_round_trip() {
        for f in Fixture::BROKEN
            .into_iter()
            .chain(ZooLock::ALL.into_iter().map(Fixture::Zoo))
        {
            assert_eq!(Fixture::from_name(&f.name()), Some(f));
        }
        assert_eq!(Fixture::from_name("no_such"), None);
    }

    #[test]
    fn repro_text_round_trips() {
        let r = Repro {
            fixture: "broken_ticket".to_string(),
            seed: 99,
            strategy: "random".to_string(),
            violation: "mutex".to_string(),
            trace_hash: 0xdead_beef,
            injections: vec![
                Injection {
                    task: 3,
                    task_seq: 7,
                    action: SchedAction::Delay(60_000),
                },
                Injection {
                    task: 2,
                    task_seq: 4,
                    action: SchedAction::Preempt(30_000),
                },
            ],
        };
        let text = r.to_text();
        assert_eq!(Repro::from_text(&text).unwrap(), r);
        assert!(Repro::from_text("garbage").is_err());
    }

    #[test]
    fn default_policy_compiles_and_verifies() {
        PolicySchedStrategy::compile(default_policy_src(), 1).unwrap();
    }

    #[test]
    fn policy_strategy_rejects_bad_source() {
        assert!(matches!(
            PolicySchedStrategy::compile("return foo(", 1),
            Err(ExploreError::Policy(_))
        ));
    }

    #[test]
    fn monitor_flags_mutex_violation() {
        let m = Monitor::new();
        m.acquiring(1, 0, 0);
        m.acquired(1, 0, 10, true);
        m.acquiring(1, 1, 12);
        m.acquired(1, 1, 15, true);
        assert!(matches!(
            m.take_violation(),
            Some(Violation::Mutex {
                lock: 1,
                holder: 0,
                intruder: 1
            })
        ));
    }

    #[test]
    fn monitor_flags_lock_order_cycle() {
        let m = Monitor::new();
        // Task 0: A then B. Task 1: B then A.
        m.acquiring(10, 0, 0);
        m.acquired(10, 0, 1, true);
        m.acquiring(20, 0, 2);
        m.acquired(20, 0, 3, true);
        m.released(20, 0, 4);
        m.released(10, 0, 5);
        m.acquiring(20, 1, 6);
        m.acquired(20, 1, 7, true);
        m.acquiring(10, 1, 8);
        assert!(matches!(
            m.take_violation(),
            Some(Violation::LockOrder {
                first: 20,
                then: 10
            })
        ));
    }

    #[test]
    fn shared_owners_do_not_conflict() {
        let m = Monitor::new();
        m.acquiring(1, 0, 0);
        m.acquired(1, 0, 1, false);
        m.acquiring(1, 1, 2);
        m.acquired(1, 1, 3, false);
        assert!(m.take_violation().is_none());
    }
}
