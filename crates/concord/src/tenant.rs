//! Tenant-aware policy management — the §6 "Safety" discussion as code.
//!
//! The paper's model "allows a privileged user to modify kernel locks …
//! only applicable to one user using the whole system"; for clouds it
//! calls for "a tenant-aware policy composer that does not violate
//! isolation among users". This module is that composer's enforcement
//! half: every attach is performed *on behalf of a tenant*, and the
//! manager refuses combinations that would let one tenant's policy distort
//! another tenant's locks:
//!
//! * a **decision hook** (`cmp_node`, `skip_shuffle`, `schedule_waiter`)
//!   on a given lock is exclusive to one tenant at a time — the later
//!   attach would silently shadow the earlier tenant's policy;
//! * **event hooks** stack freely (observers do not conflict);
//! * each tenant has an **attach quota** so no tenant can monopolize the
//!   patch stack.

use std::collections::HashMap;

use locks::hooks::HookKind;
use parking_lot::Mutex;

use crate::workflow::{AttachHandle, Concord, ConcordError, LoadedPolicy};

/// Identifies a tenant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TenantId(pub u32);

/// Why a tenant-scoped operation was refused.
#[derive(Debug)]
pub enum TenantError {
    /// Another tenant already drives this decision hook on this lock.
    Conflict {
        /// The lock in question.
        lock: String,
        /// The contested hook.
        hook: HookKind,
        /// Its current owner.
        owner: TenantId,
    },
    /// The tenant reached its attach quota.
    QuotaExceeded {
        /// The quota that was hit.
        quota: usize,
    },
    /// The handle belongs to a different tenant.
    NotOwner,
    /// The underlying framework refused the operation.
    Concord(ConcordError),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Conflict { lock, hook, owner } => write!(
                f,
                "tenant {} already drives {}/{}",
                owner.0,
                lock,
                hook.name()
            ),
            TenantError::QuotaExceeded { quota } => {
                write!(f, "attach quota of {quota} reached")
            }
            TenantError::NotOwner => write!(f, "patch belongs to another tenant"),
            TenantError::Concord(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TenantError {}

impl From<ConcordError> for TenantError {
    fn from(e: ConcordError) -> Self {
        TenantError::Concord(e)
    }
}

/// A tenant-scoped attachment, detachable only by its owner.
#[derive(Debug)]
pub struct TenantAttachment {
    tenant: TenantId,
    handle: AttachHandle,
}

impl TenantAttachment {
    /// The owning tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }
}

#[derive(Default)]
struct State {
    /// (lock, decision hook) → owning tenant.
    decision_owners: HashMap<(String, HookKind), TenantId>,
    /// Live attach count per tenant.
    counts: HashMap<TenantId, usize>,
}

/// Tenant-aware attach/detach arbiter over a [`Concord`] instance.
pub struct TenantManager {
    quota: usize,
    state: Mutex<State>,
}

fn is_decision(kind: HookKind) -> bool {
    matches!(
        kind,
        HookKind::CmpNode | HookKind::SkipShuffle | HookKind::ScheduleWaiter
    )
}

impl TenantManager {
    /// Creates a manager with a per-tenant live-attach quota.
    ///
    /// # Panics
    ///
    /// Panics on a zero quota.
    pub fn new(quota: usize) -> Self {
        assert!(quota > 0, "quota must be positive");
        TenantManager {
            quota,
            state: Mutex::new(State::default()),
        }
    }

    /// Attaches `policy` to `lock` on behalf of `tenant`, enforcing
    /// isolation and quota.
    ///
    /// # Errors
    ///
    /// [`TenantError::Conflict`] when another tenant drives the decision
    /// hook, [`TenantError::QuotaExceeded`] past the quota, or the
    /// underlying [`ConcordError`].
    pub fn attach(
        &self,
        concord: &Concord,
        tenant: TenantId,
        lock: &str,
        policy: &LoadedPolicy,
    ) -> Result<TenantAttachment, TenantError> {
        {
            let mut st = self.state.lock();
            let st = &mut *st;
            let count = st.counts.entry(tenant).or_insert(0);
            if *count >= self.quota {
                return Err(TenantError::QuotaExceeded { quota: self.quota });
            }
            if is_decision(policy.hook) {
                let key = (lock.to_string(), policy.hook);
                match st.decision_owners.get(&key) {
                    Some(owner) if *owner != tenant => {
                        return Err(TenantError::Conflict {
                            lock: lock.to_string(),
                            hook: policy.hook,
                            owner: *owner,
                        })
                    }
                    _ => {
                        st.decision_owners.insert(key, tenant);
                    }
                }
            }
            *count += 1;
        }
        match concord.attach(lock, policy) {
            Ok(handle) => Ok(TenantAttachment { tenant, handle }),
            Err(e) => {
                // Roll the reservation back.
                let mut st = self.state.lock();
                if let Some(c) = st.counts.get_mut(&tenant) {
                    *c = c.saturating_sub(1);
                }
                if is_decision(policy.hook) {
                    st.decision_owners.remove(&(lock.to_string(), policy.hook));
                }
                Err(e.into())
            }
        }
    }

    /// Detaches a tenant's attachment; only the owner may do so.
    ///
    /// # Errors
    ///
    /// [`TenantError::NotOwner`] for a foreign handle, or the underlying
    /// patch-stack error.
    pub fn detach(
        &self,
        concord: &Concord,
        tenant: TenantId,
        attachment: TenantAttachment,
    ) -> Result<(), TenantError> {
        if attachment.tenant != tenant {
            return Err(TenantError::NotOwner);
        }
        let lock = attachment.handle.lock.clone();
        let hook = attachment.handle.hook;
        concord.detach(attachment.handle)?;
        let mut st = self.state.lock();
        if let Some(c) = st.counts.get_mut(&tenant) {
            *c = c.saturating_sub(1);
        }
        if is_decision(hook) {
            st.decision_owners.remove(&(lock, hook));
        }
        Ok(())
    }

    /// Live attachments of `tenant`.
    pub fn live_count(&self, tenant: TenantId) -> usize {
        self.state.lock().counts.get(&tenant).copied().unwrap_or(0)
    }

    /// Owner of a decision hook, if claimed.
    pub fn decision_owner(&self, lock: &str, hook: HookKind) -> Option<TenantId> {
        self.state
            .lock()
            .decision_owners
            .get(&(lock.to_string(), hook))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::PolicySpec;
    use std::sync::Arc;

    fn setup() -> (Concord, TenantManager) {
        let c = Concord::new();
        c.registry()
            .register_shfl("shared_lock", Arc::new(locks::ShflLock::new()));
        (c, TenantManager::new(3))
    }

    fn policy(c: &Concord, name: &str, hook: HookKind) -> LoadedPolicy {
        c.load(PolicySpec::from_c(name, hook, "return 1;")).unwrap()
    }

    #[test]
    fn decision_hooks_are_exclusive_across_tenants() {
        let (c, mgr) = setup();
        let p = policy(&c, "p1", HookKind::CmpNode);
        let a = mgr
            .attach(&c, TenantId(1), "shared_lock", &p)
            .expect("first tenant attaches");
        assert_eq!(
            mgr.decision_owner("shared_lock", HookKind::CmpNode),
            Some(TenantId(1))
        );
        // A second tenant is refused.
        let p2 = policy(&c, "p2", HookKind::CmpNode);
        match mgr.attach(&c, TenantId(2), "shared_lock", &p2) {
            Err(TenantError::Conflict { owner, .. }) => assert_eq!(owner, TenantId(1)),
            other => panic!("expected conflict, got {other:?}"),
        }
        // The owner may stack its own (e.g. replace).
        let a2 = mgr
            .attach(&c, TenantId(1), "shared_lock", &p2)
            .expect("same tenant may layer");
        mgr.detach(&c, TenantId(1), a2).unwrap();
        mgr.detach(&c, TenantId(1), a).unwrap();
        // Freed: tenant 2 can now claim it.
        let a3 = mgr.attach(&c, TenantId(2), "shared_lock", &p2).unwrap();
        mgr.detach(&c, TenantId(2), a3).unwrap();
    }

    #[test]
    fn event_hooks_stack_across_tenants() {
        let (c, mgr) = setup();
        let p1 = policy(&c, "e1", HookKind::LockAcquired);
        let p2 = policy(&c, "e2", HookKind::LockAcquired);
        let a1 = mgr.attach(&c, TenantId(1), "shared_lock", &p1).unwrap();
        let a2 = mgr.attach(&c, TenantId(2), "shared_lock", &p2).unwrap();
        assert_eq!(mgr.live_count(TenantId(1)), 1);
        assert_eq!(mgr.live_count(TenantId(2)), 1);
        mgr.detach(&c, TenantId(2), a2).unwrap();
        mgr.detach(&c, TenantId(1), a1).unwrap();
    }

    #[test]
    fn quota_enforced_and_released() {
        let (c, mgr) = setup();
        let mut handles = Vec::new();
        for i in 0..3 {
            let p = policy(&c, &format!("e{i}"), HookKind::LockAcquired);
            handles.push(mgr.attach(&c, TenantId(7), "shared_lock", &p).unwrap());
        }
        let p = policy(&c, "over", HookKind::LockAcquired);
        assert!(matches!(
            mgr.attach(&c, TenantId(7), "shared_lock", &p),
            Err(TenantError::QuotaExceeded { quota: 3 })
        ));
        // Other tenants are unaffected.
        let other = mgr.attach(&c, TenantId(8), "shared_lock", &p).unwrap();
        mgr.detach(&c, TenantId(8), other).unwrap();
        // Releasing frees quota (LIFO patch order).
        let last = handles.pop().unwrap();
        mgr.detach(&c, TenantId(7), last).unwrap();
        let again = mgr.attach(&c, TenantId(7), "shared_lock", &p).unwrap();
        mgr.detach(&c, TenantId(7), again).unwrap();
        while let Some(h) = handles.pop() {
            mgr.detach(&c, TenantId(7), h).unwrap();
        }
        assert_eq!(mgr.live_count(TenantId(7)), 0);
    }

    #[test]
    fn foreign_detach_refused() {
        let (c, mgr) = setup();
        let p = policy(&c, "p", HookKind::CmpNode);
        let a = mgr.attach(&c, TenantId(1), "shared_lock", &p).unwrap();
        match mgr.detach(&c, TenantId(2), a) {
            Err(TenantError::NotOwner) => {}
            other => panic!("expected NotOwner, got {other:?}"),
        }
        // NOTE: the attachment was consumed by the failed detach attempt;
        // production code would return it — keep the state assertion only.
        assert_eq!(
            mgr.decision_owner("shared_lock", HookKind::CmpNode),
            Some(TenantId(1))
        );
    }

    #[test]
    fn failed_underlying_attach_rolls_back_reservation() {
        let (c, mgr) = setup();
        let p = policy(&c, "p", HookKind::CmpNode);
        assert!(matches!(
            mgr.attach(&c, TenantId(1), "ghost_lock", &p),
            Err(TenantError::Concord(ConcordError::UnknownLock(_)))
        ));
        assert_eq!(mgr.live_count(TenantId(1)), 0);
        assert_eq!(mgr.decision_owner("ghost_lock", HookKind::CmpNode), None);
    }
}
