//! Policy fault containment: fail-safe defaults, circuit breakers and
//! quarantine bookkeeping.
//!
//! The verifier proves memory and termination safety *before* a policy is
//! patched in (§4.2), but Table 1 is explicit that a verified policy can
//! still hazard fairness, performance or critical-section length at
//! runtime. This module is the runtime half of that safety story:
//!
//! * **fail-safe defaults** — when a policy invocation faults, the hook
//!   site degrades to the unpatched lock's decision instead of
//!   propagating an error into a lock acquisition;
//! * **circuit breakers** — per-(lock, hook, tenant) fault counters; a
//!   configurable run of consecutive faults trips the breaker, which
//!   either bypasses the policy until a virtual-time cooldown elapses
//!   (half-open probe) or marks it for permanent quarantine;
//! * **quarantine records** — why a policy was pulled, kept in the lock
//!   registry for the administrator (`c3ctl quarantines`).
//!
//! The breaker is all atomics, so one implementation serves the real
//! multi-threaded locks and the single-threaded simulator.

use std::rc::Rc;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use cbpf::error::FaultKind;
use cbpf::fault::FaultInjector;
use ksim::Sim;
use locks::hooks::{CmpNodeCtx, HookKind, LockEventCtx, ScheduleWaiterCtx, SkipShuffleCtx};
use simlocks::policy::{Decision, SimPolicy};

use crate::policy::HOOK_CALL_NS;

/// Modeled cost of the armed-containment check on a hook invocation: one
/// relaxed state load plus a counter update. This is what the
/// `containment_overhead` ablation charges on the Fig. 2(c) worst case.
pub const BREAKER_CHECK_NS: u64 = 2;

/// The default decision each hook degrades to on a policy fault — the
/// unpatched lock's behavior (`locks::hooks` vacant-slot semantics):
/// `cmp_node` → 0 (no reorder), `skip_shuffle` → 1 (skip, plain FIFO),
/// `schedule_waiter` → 1 (parking allowed), events → 0 (no-op).
pub fn fail_safe_default(hook: HookKind) -> u64 {
    match hook {
        HookKind::CmpNode => 0,
        HookKind::SkipShuffle => 1,
        HookKind::ScheduleWaiter => 1,
        _ => 0,
    }
}

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive faults that trip the breaker.
    pub threshold: u32,
    /// Virtual-time cooldown after which an open breaker lets one probe
    /// invocation through (half-open). `None` marks the policy for
    /// permanent quarantine instead: [`Concord::sweep_breakers`]
    /// (crate::Concord::sweep_breakers) detaches it via a livepatch
    /// revert transaction.
    pub cooldown_ns: Option<u64>,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown_ns: None,
        }
    }
}

/// Breaker state machine position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakerState {
    /// Policy runs; consecutive faults are being counted.
    Closed,
    /// Policy bypassed; hooks serve fail-safe defaults.
    Open,
    /// Cooldown elapsed; the next invocation probes the policy.
    HalfOpen,
}

const STATE_CLOSED: u8 = 0;
const STATE_OPEN: u8 = 1;
const STATE_HALF_OPEN: u8 = 2;

/// How many flight-recorder events a quarantine captures from the trace
/// plane (the most recent records still resident in the rings).
pub const FLIGHT_RECORDER_EVENTS: usize = 64;

/// Per-(lock, hook, tenant) fault accounting and trip logic.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: AtomicU8,
    consecutive: AtomicU32,
    opened_at: AtomicU64,
    trips: AtomicU64,
    by_kind: [AtomicU64; 4],
    /// Telemetry identity: FNV hash of the guarded lock's name and the
    /// hook bit, carried by `BreakerTrip` trace records (0 = untagged).
    tag_lock: AtomicU64,
    tag_hook: AtomicU64,
}

impl Breaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            state: AtomicU8::new(STATE_CLOSED),
            consecutive: AtomicU32::new(0),
            opened_at: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            by_kind: Default::default(),
            tag_lock: AtomicU64::new(0),
            tag_hook: AtomicU64::new(0),
        }
    }

    /// Tags the breaker with the guarded lock (name hash) and hook bit so
    /// trip trace records identify the policy being contained.
    pub fn set_tag(&self, lock_hash: u64, hook_bit: u64) {
        self.tag_lock.store(lock_hash, Ordering::Relaxed);
        self.tag_hook.store(hook_bit, Ordering::Relaxed);
    }

    /// The configuration.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Current state (transitions Open → HalfOpen only happen inside
    /// [`Breaker::allow`], so this is a pure read).
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            STATE_OPEN => BreakerState::Open,
            STATE_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Whether the policy may run this invocation. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits one probe.
    pub fn allow(&self, now_ns: u64) -> bool {
        match self.state.load(Ordering::Acquire) {
            STATE_CLOSED | STATE_HALF_OPEN => true,
            _ => match self.cfg.cooldown_ns {
                Some(cd) if now_ns >= self.opened_at.load(Ordering::Acquire).saturating_add(cd) => {
                    // One winner flips to half-open and probes; racing
                    // losers stay bypassed this invocation.
                    self.state
                        .compare_exchange(
                            STATE_OPEN,
                            STATE_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                }
                _ => false,
            },
        }
    }

    /// Records a successful policy invocation. A half-open probe that
    /// succeeds re-closes (re-arms) the breaker.
    pub fn record_ok(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
        let _ = self.state.compare_exchange(
            STATE_HALF_OPEN,
            STATE_CLOSED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Records a policy fault; returns `true` when this fault trips the
    /// breaker (closed threshold reached, or a half-open probe failing).
    pub fn record_fault(&self, kind: FaultKind, now_ns: u64) -> bool {
        self.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        let tripped = match self.state.load(Ordering::Acquire) {
            STATE_OPEN => false,
            STATE_HALF_OPEN => {
                self.trip(now_ns);
                true
            }
            _ => {
                let run = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
                if run >= self.cfg.threshold {
                    self.trip(now_ns);
                    true
                } else {
                    false
                }
            }
        };
        if tripped {
            telemetry::metrics().counter("c3_breaker_trips_total").inc();
        }
        if tripped && telemetry::armed() {
            telemetry::emit(
                telemetry::EventKind::BreakerTrip,
                now_ns,
                0,
                self.tag_lock.load(Ordering::Relaxed),
                self.tag_hook.load(Ordering::Relaxed),
                u64::from(self.cfg.threshold),
                kind.index() as u64,
            );
        }
        tripped
    }

    fn trip(&self, now_ns: u64) {
        self.opened_at.store(now_ns, Ordering::Release);
        self.consecutive.store(0, Ordering::Relaxed);
        self.trips.fetch_add(1, Ordering::Relaxed);
        self.state.store(STATE_OPEN, Ordering::Release);
    }

    /// Times the breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Fault counts in [`FaultKind::ALL`] order.
    pub fn faults_by_kind(&self) -> [u64; 4] {
        [
            self.by_kind[0].load(Ordering::Relaxed),
            self.by_kind[1].load(Ordering::Relaxed),
            self.by_kind[2].load(Ordering::Relaxed),
            self.by_kind[3].load(Ordering::Relaxed),
        ]
    }

    /// Total faults across kinds.
    pub fn total_faults(&self) -> u64 {
        self.faults_by_kind().iter().sum()
    }

    /// True when the breaker is open with no cooldown configured — the
    /// policy is waiting for [`Concord::sweep_breakers`]
    /// (crate::Concord::sweep_breakers) to quarantine it permanently.
    pub fn wants_quarantine(&self) -> bool {
        self.cfg.cooldown_ns.is_none() && self.state() == BreakerState::Open
    }

    /// Renders the fault tally as a quarantine reason.
    pub fn reason(&self) -> String {
        let counts = self.faults_by_kind();
        let mut parts = Vec::new();
        for kind in FaultKind::ALL {
            let n = counts[kind.index()];
            if n > 0 {
                parts.push(format!("{kind}:{n}"));
            }
        }
        format!(
            "breaker tripped after {} consecutive faults ({})",
            self.cfg.threshold,
            parts.join(", ")
        )
    }
}

/// Why and when a policy was quarantined (kept in [`crate::LockRegistry`]).
#[derive(Clone, Debug)]
pub struct QuarantineRecord {
    /// The lock the policy was attached to.
    pub lock: String,
    /// The patched hook.
    pub hook: HookKind,
    /// The policy (patch) name.
    pub policy: String,
    /// Human-readable cause (fault tally or watchdog hazard).
    pub reason: String,
    /// Timestamp of the quarantine (ns; virtual time under the DES).
    pub at_ns: u64,
    /// Owning tenant, when the attach was tenant-scoped.
    pub tenant: Option<u32>,
    /// Flight recorder: the last [`FLIGHT_RECORDER_EVENTS`] trace records
    /// still resident in the telemetry rings when the policy was pulled —
    /// what the lock was doing right before the quarantine. Empty when the
    /// trace plane was disarmed.
    pub events: Vec<telemetry::TraceEvent>,
}

/// Drains the flight recorder for a quarantine record: the most recent
/// trace records when armed, nothing when disarmed.
pub(crate) fn flight_record() -> Vec<telemetry::TraceEvent> {
    if telemetry::armed() {
        telemetry::snapshot_last(FLIGHT_RECORDER_EVENTS)
    } else {
        Vec::new()
    }
}

/// Containment wrapper for simulated locks: a [`SimPolicy`] that guards
/// an inner policy with a breaker and optional deterministic fault
/// injection, charging [`BREAKER_CHECK_NS`] of virtual time per guarded
/// invocation. An open breaker serves fail-safe defaults instead of
/// consulting the inner policy — graceful degradation between the trip
/// and the quarantine sweep (or the cooldown re-arm).
pub struct ContainedPolicy {
    inner: Rc<dyn SimPolicy>,
    breaker: Arc<Breaker>,
    injector: Option<Arc<FaultInjector>>,
    sim: Sim,
}

impl ContainedPolicy {
    /// Wraps `inner` with `breaker`; `injector` optionally schedules
    /// deterministic faults at guarded invocations.
    pub fn new(
        sim: &Sim,
        inner: Rc<dyn SimPolicy>,
        breaker: Arc<Breaker>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        ContainedPolicy {
            inner,
            breaker,
            injector,
            sim: sim.clone(),
        }
    }

    /// The breaker guarding the inner policy.
    pub fn breaker(&self) -> &Arc<Breaker> {
        &self.breaker
    }

    /// Runs the guard for one invocation of `hook`. `Some(cost)` means
    /// the invocation is absorbed (bypassed or faulted) at that cost;
    /// `None` means the inner policy should run.
    fn guard(&self, _hook: HookKind) -> Option<u64> {
        let now = self.sim.now();
        if !self.breaker.allow(now) {
            return Some(BREAKER_CHECK_NS);
        }
        if let Some(inj) = &self.injector {
            if let Some(fault) = inj.invocation_fault() {
                self.breaker.record_fault(fault.fault_kind(), now);
                // A faulting invocation still paid the call indirection.
                return Some(BREAKER_CHECK_NS + HOOK_CALL_NS);
            }
        }
        None
    }
}

impl SimPolicy for ContainedPolicy {
    fn cmp_node(&self, ctx: &CmpNodeCtx) -> Decision {
        if let Some(cost) = self.guard(HookKind::CmpNode) {
            return (fail_safe_default(HookKind::CmpNode) != 0, cost);
        }
        let (d, c) = self.inner.cmp_node(ctx);
        self.breaker.record_ok();
        (d, c + BREAKER_CHECK_NS)
    }

    fn skip_shuffle(&self, ctx: &SkipShuffleCtx) -> Decision {
        if let Some(cost) = self.guard(HookKind::SkipShuffle) {
            return (fail_safe_default(HookKind::SkipShuffle) != 0, cost);
        }
        let (d, c) = self.inner.skip_shuffle(ctx);
        self.breaker.record_ok();
        (d, c + BREAKER_CHECK_NS)
    }

    fn schedule_waiter(&self, ctx: &ScheduleWaiterCtx) -> Decision {
        if let Some(cost) = self.guard(HookKind::ScheduleWaiter) {
            return (fail_safe_default(HookKind::ScheduleWaiter) != 0, cost);
        }
        let (d, c) = self.inner.schedule_waiter(ctx);
        self.breaker.record_ok();
        (d, c + BREAKER_CHECK_NS)
    }

    fn on_event(&self, kind: HookKind, ctx: &LockEventCtx) -> u64 {
        if let Some(cost) = self.guard(kind) {
            return cost;
        }
        let c = self.inner.on_event(kind, ctx);
        self.breaker.record_ok();
        c + BREAKER_CHECK_NS
    }

    fn wants_event(&self, kind: HookKind) -> bool {
        self.inner.wants_event(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbpf::fault::FaultPlan;
    use locks::hooks::NodeView;
    use simlocks::policy::FifoPolicy;

    fn view() -> NodeView {
        NodeView {
            tid: 1,
            cpu: 0,
            socket: 0,
            prio: 0,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        }
    }

    #[test]
    fn fail_safe_defaults_match_vacant_hook_semantics() {
        assert_eq!(fail_safe_default(HookKind::CmpNode), 0);
        assert_eq!(fail_safe_default(HookKind::SkipShuffle), 1);
        assert_eq!(fail_safe_default(HookKind::ScheduleWaiter), 1);
        assert_eq!(fail_safe_default(HookKind::LockAcquired), 0);
    }

    #[test]
    fn breaker_trips_on_consecutive_faults_only() {
        let b = Breaker::new(BreakerConfig {
            threshold: 3,
            cooldown_ns: None,
        });
        assert!(!b.record_fault(FaultKind::Trap, 10));
        assert!(!b.record_fault(FaultKind::Trap, 20));
        b.record_ok(); // Run broken: counter resets.
        assert!(!b.record_fault(FaultKind::Budget, 30));
        assert!(!b.record_fault(FaultKind::Budget, 40));
        assert!(b.record_fault(FaultKind::Budget, 50), "third in a row trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(60), "no cooldown: stays open");
        assert!(b.wants_quarantine());
        assert_eq!(b.trips(), 1);
        assert_eq!(b.total_faults(), 5);
        assert_eq!(b.faults_by_kind()[FaultKind::Budget.index()], 3);
        assert!(b.reason().contains("budget:3"));
    }

    #[test]
    fn cooldown_half_open_probe_rearms_or_reopens() {
        let b = Breaker::new(BreakerConfig {
            threshold: 1,
            cooldown_ns: Some(100),
        });
        assert!(b.record_fault(FaultKind::Helper, 1_000));
        assert!(!b.allow(1_050), "cooldown not elapsed");
        assert!(b.allow(1_100), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe faults: re-open with a fresh cooldown window.
        assert!(b.record_fault(FaultKind::Helper, 1_110));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(1_150));
        assert!(b.allow(1_210));
        // Probe succeeds: breaker re-arms.
        b.record_ok();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(1_220));
        assert!(!b.wants_quarantine());
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn contained_policy_degrades_then_bypasses() {
        let sim = ksim::SimBuilder::new().build();
        let breaker = Arc::new(Breaker::new(BreakerConfig {
            threshold: 2,
            cooldown_ns: None,
        }));
        let inj = Arc::new(FaultInjector::new(FaultPlan::from_invocation(
            1,
            FaultKind::Trap,
        )));
        let p = ContainedPolicy::new(
            &sim,
            Rc::new(FifoPolicy::new()),
            Arc::clone(&breaker),
            Some(inj),
        );
        let ctx = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(),
            curr: view(),
        };
        // Every invocation faults → fail-safe decision, breaker counts.
        let (d, c) = p.cmp_node(&ctx);
        assert!(!d);
        assert_eq!(c, BREAKER_CHECK_NS + HOOK_CALL_NS);
        assert_eq!(breaker.state(), BreakerState::Closed);
        let _ = p.cmp_node(&ctx);
        assert_eq!(breaker.state(), BreakerState::Open, "threshold 2 tripped");
        // Open: inner never consulted, cost is the bare check.
        let (d, c) = p.cmp_node(&ctx);
        assert!(!d);
        assert_eq!(c, BREAKER_CHECK_NS);
        // Decision hooks degrade to the vacant-slot defaults.
        let (skip, _) = p.skip_shuffle(&SkipShuffleCtx {
            lock_id: 1,
            shuffler: view(),
        });
        assert!(skip, "fail-safe skip_shuffle is FIFO");
        let (park, _) = p.schedule_waiter(&ScheduleWaiterCtx {
            lock_id: 1,
            curr: view(),
            waited_ns: 0,
        });
        assert!(park, "fail-safe schedule_waiter allows parking");
    }
}
