//! Hook context layouts, marshalling and per-hook safety rules.
//!
//! This module is the contract between the lock side (crate `locks`'s hook
//! contexts) and the policy side (crate `cbpf`'s verifier and interpreter):
//! for each Table 1 hook it defines the byte layout a policy sees, the
//! field permissions, and the extra [`HookRules`] the verifier enforces —
//! the "more safety properties with respect to locks" of §4.2.

use std::sync::OnceLock;

use cbpf::ctx::{CtxLayout, FieldAccess};
use cbpf::helpers::HelperId;
use cbpf::verifier::HookRules;
use locks::hooks::{
    CmpNodeCtx, HookKind, LockEventCtx, NodeView, ScheduleWaiterCtx, SkipShuffleCtx,
};

fn node_fields(
    b: cbpf::ctx::CtxLayoutBuilder,
    prefix: &'static str,
) -> cbpf::ctx::CtxLayoutBuilder {
    // Field names are `<prefix>_<field>`; all read-only: decision hooks
    // return decisions, they never mutate lock state (§4.2).
    let names: [(&'static str, usize); 7] = match prefix {
        "shuffler" => [
            ("shuffler_tid", 8),
            ("shuffler_cpu", 4),
            ("shuffler_socket", 4),
            ("shuffler_prio", 8),
            ("shuffler_cs_hint", 8),
            ("shuffler_held", 4),
            ("shuffler_wait_ns", 8),
        ],
        "curr" => [
            ("curr_tid", 8),
            ("curr_cpu", 4),
            ("curr_socket", 4),
            ("curr_prio", 8),
            ("curr_cs_hint", 8),
            ("curr_held", 4),
            ("curr_wait_ns", 8),
        ],
        _ => unreachable!("prefix is a compile-time constant"),
    };
    let mut b = b;
    for (name, size) in names {
        b = b.field(name, size, FieldAccess::ReadOnly);
    }
    b
}

/// Layout of the `cmp_node` context: lock id + shuffler view + curr view.
pub fn cmp_node_layout() -> &'static CtxLayout {
    static L: OnceLock<CtxLayout> = OnceLock::new();
    L.get_or_init(|| {
        let b = CtxLayout::builder().field("lock_id", 8, FieldAccess::ReadOnly);
        let b = node_fields(b, "shuffler");
        let b = node_fields(b, "curr");
        b.build()
    })
}

/// Layout of the `skip_shuffle` context: lock id + shuffler view.
pub fn skip_shuffle_layout() -> &'static CtxLayout {
    static L: OnceLock<CtxLayout> = OnceLock::new();
    L.get_or_init(|| {
        let b = CtxLayout::builder().field("lock_id", 8, FieldAccess::ReadOnly);
        node_fields(b, "shuffler").build()
    })
}

/// Layout of the `schedule_waiter` context: lock id + curr view + waited_ns.
pub fn schedule_waiter_layout() -> &'static CtxLayout {
    static L: OnceLock<CtxLayout> = OnceLock::new();
    L.get_or_init(|| {
        let b = CtxLayout::builder().field("lock_id", 8, FieldAccess::ReadOnly);
        node_fields(b, "curr")
            .field("waited_ns", 8, FieldAccess::ReadOnly)
            .build()
    })
}

/// Layout of the four profiling-event contexts.
pub fn event_layout() -> &'static CtxLayout {
    static L: OnceLock<CtxLayout> = OnceLock::new();
    L.get_or_init(|| {
        CtxLayout::builder()
            .field("lock_id", 8, FieldAccess::ReadOnly)
            .field("tid", 8, FieldAccess::ReadOnly)
            .field("cpu", 4, FieldAccess::ReadOnly)
            .field("socket", 4, FieldAccess::ReadOnly)
            .field("now_ns", 8, FieldAccess::ReadOnly)
            // Appended after the original five fields so their offsets (and
            // every compiled policy's instruction stream) stay unchanged.
            .field("owner_tid", 8, FieldAccess::ReadOnly)
            .build()
    })
}

/// The layout for a hook.
pub fn layout_for(kind: HookKind) -> &'static CtxLayout {
    match kind {
        HookKind::CmpNode => cmp_node_layout(),
        HookKind::SkipShuffle => skip_shuffle_layout(),
        HookKind::ScheduleWaiter => schedule_waiter_layout(),
        _ => event_layout(),
    }
}

/// Lock-safety verifier rules for a hook (§4.2).
///
/// Decision hooks sit on the shuffler's path: they get a tight instruction
/// budget and may not call `trace_printk` (unbounded critical-section
/// growth belongs to the profiling hooks, where Table 1 declares that
/// hazard). `trace_emit` *is* allowed everywhere: its payload is bounded
/// at 16 bytes, its cost is a fixed instruction weight charged to the
/// budget, and it lands in a lock-free ring — safe even on the shuffler's
/// path. No hook may write its context.
pub fn rules_for(kind: HookKind) -> HookRules {
    let decision_helpers = vec![
        HelperId::MapLookup,
        HelperId::MapUpdate,
        HelperId::KtimeNs,
        HelperId::CpuId,
        HelperId::NumaId,
        HelperId::Pid,
        HelperId::Prandom,
        HelperId::TaskPriority,
        HelperId::CpuToNode,
        HelperId::CpuOnline,
        HelperId::TraceEmit,
    ];
    match kind {
        HookKind::CmpNode | HookKind::SkipShuffle | HookKind::ScheduleWaiter => HookRules {
            max_insns: Some(128),
            allowed_helpers: Some(decision_helpers),
            allow_ctx_writes: false,
        },
        _ => HookRules {
            max_insns: Some(512),
            allowed_helpers: None, // Profiling may trace and delete.
            allow_ctx_writes: false,
        },
    }
}

/// Precomputed byte offsets of one node view's fields (marshalling runs
/// on lock paths; name lookups and allocation are too slow there).
#[derive(Clone, Copy)]
struct NodeOffsets {
    tid: usize,
    cpu: usize,
    socket: usize,
    prio: usize,
    cs_hint: usize,
    held: usize,
    wait_ns: usize,
}

impl NodeOffsets {
    fn of(layout: &CtxLayout, prefix: &str) -> NodeOffsets {
        let off = |name: &str| {
            layout
                .field(&format!("{prefix}_{name}"))
                .expect("layouts declare all node fields")
                .offset
        };
        NodeOffsets {
            tid: off("tid"),
            cpu: off("cpu"),
            socket: off("socket"),
            prio: off("prio"),
            cs_hint: off("cs_hint"),
            held: off("held"),
            wait_ns: off("wait_ns"),
        }
    }
}

#[inline]
fn put64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn put32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn write_node(buf: &mut [u8], o: &NodeOffsets, v: &NodeView) {
    put64(buf, o.tid, v.tid);
    put32(buf, o.cpu, v.cpu);
    put32(buf, o.socket, v.socket);
    put64(buf, o.prio, v.prio as u64);
    put64(buf, o.cs_hint, v.cs_hint);
    put32(buf, o.held, v.held_locks);
    put64(buf, o.wait_ns, v.wait_start_ns);
}

/// Marshals a `cmp_node` context to bytes.
pub fn marshal_cmp_node(ctx: &CmpNodeCtx) -> Vec<u8> {
    struct Offs {
        size: usize,
        shuffler: NodeOffsets,
        curr: NodeOffsets,
    }
    static OFFS: OnceLock<Offs> = OnceLock::new();
    let o = OFFS.get_or_init(|| {
        let l = cmp_node_layout();
        Offs {
            size: l.size(),
            shuffler: NodeOffsets::of(l, "shuffler"),
            curr: NodeOffsets::of(l, "curr"),
        }
    });
    let mut buf = vec![0u8; o.size];
    put64(&mut buf, 0, ctx.lock_id); // lock_id is always field 0.
    write_node(&mut buf, &o.shuffler, &ctx.shuffler);
    write_node(&mut buf, &o.curr, &ctx.curr);
    buf
}

/// Marshals a `skip_shuffle` context to bytes.
pub fn marshal_skip_shuffle(ctx: &SkipShuffleCtx) -> Vec<u8> {
    struct Offs {
        size: usize,
        shuffler: NodeOffsets,
    }
    static OFFS: OnceLock<Offs> = OnceLock::new();
    let o = OFFS.get_or_init(|| {
        let l = skip_shuffle_layout();
        Offs {
            size: l.size(),
            shuffler: NodeOffsets::of(l, "shuffler"),
        }
    });
    let mut buf = vec![0u8; o.size];
    put64(&mut buf, 0, ctx.lock_id);
    write_node(&mut buf, &o.shuffler, &ctx.shuffler);
    buf
}

/// Marshals a `schedule_waiter` context to bytes.
pub fn marshal_schedule_waiter(ctx: &ScheduleWaiterCtx) -> Vec<u8> {
    struct Offs {
        size: usize,
        curr: NodeOffsets,
        waited: usize,
    }
    static OFFS: OnceLock<Offs> = OnceLock::new();
    let o = OFFS.get_or_init(|| {
        let l = schedule_waiter_layout();
        Offs {
            size: l.size(),
            curr: NodeOffsets::of(l, "curr"),
            waited: l.field("waited_ns").expect("declared").offset,
        }
    });
    let mut buf = vec![0u8; o.size];
    put64(&mut buf, 0, ctx.lock_id);
    write_node(&mut buf, &o.curr, &ctx.curr);
    put64(&mut buf, o.waited, ctx.waited_ns);
    buf
}

/// Marshals an event context to bytes.
pub fn marshal_event(ctx: &LockEventCtx) -> Vec<u8> {
    struct Offs {
        size: usize,
        tid: usize,
        cpu: usize,
        socket: usize,
        now: usize,
        owner: usize,
    }
    static OFFS: OnceLock<Offs> = OnceLock::new();
    let o = OFFS.get_or_init(|| {
        let l = event_layout();
        let f = |n: &str| l.field(n).expect("declared").offset;
        Offs {
            size: l.size(),
            tid: f("tid"),
            cpu: f("cpu"),
            socket: f("socket"),
            now: f("now_ns"),
            owner: f("owner_tid"),
        }
    });
    let mut buf = vec![0u8; o.size];
    put64(&mut buf, 0, ctx.lock_id);
    put64(&mut buf, o.tid, ctx.tid);
    put32(&mut buf, o.cpu, ctx.cpu);
    put32(&mut buf, o.socket, ctx.socket);
    put64(&mut buf, o.now, ctx.now_ns);
    put64(&mut buf, o.owner, ctx.owner_tid);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(tid: u64, cpu: u32) -> NodeView {
        NodeView {
            tid,
            cpu,
            socket: cpu / 10,
            prio: -7,
            cs_hint: 1234,
            held_locks: 2,
            wait_start_ns: 99,
        }
    }

    #[test]
    fn cmp_node_marshal_roundtrip() {
        let ctx = CmpNodeCtx {
            lock_id: 42,
            shuffler: view(10, 31),
            curr: view(11, 55),
        };
        let buf = marshal_cmp_node(&ctx);
        let l = cmp_node_layout();
        assert_eq!(l.read(&buf, "lock_id"), 42);
        assert_eq!(l.read(&buf, "shuffler_tid"), 10);
        assert_eq!(l.read(&buf, "shuffler_socket"), 3);
        assert_eq!(l.read(&buf, "curr_cpu"), 55);
        assert_eq!(l.read(&buf, "curr_prio") as i64, -7);
        assert_eq!(l.read(&buf, "curr_cs_hint"), 1234);
        assert_eq!(l.read(&buf, "curr_held"), 2);
    }

    #[test]
    fn layouts_have_expected_fields() {
        assert!(skip_shuffle_layout().field("shuffler_wait_ns").is_some());
        assert!(skip_shuffle_layout().field("curr_tid").is_none());
        assert!(schedule_waiter_layout().field("waited_ns").is_some());
        assert!(event_layout().field("now_ns").is_some());
        for kind in HookKind::ALL {
            assert!(layout_for(kind).size() > 0);
        }
    }

    #[test]
    fn decision_rules_are_tight() {
        let r = rules_for(HookKind::CmpNode);
        assert_eq!(r.max_insns, Some(128));
        assert!(!r.allow_ctx_writes);
        let allowed = r.allowed_helpers.unwrap();
        assert!(!allowed.contains(&HelperId::TracePrintk));
        assert!(allowed.contains(&HelperId::NumaId));
        assert!(
            allowed.contains(&HelperId::TraceEmit),
            "bounded trace_emit is decision-hook safe"
        );
        let e = rules_for(HookKind::LockAcquired);
        assert_eq!(e.max_insns, Some(512));
        assert!(e.allowed_helpers.is_none());
    }

    #[test]
    fn event_marshal() {
        let ctx = LockEventCtx {
            lock_id: 7,
            tid: 3,
            cpu: 12,
            socket: 1,
            now_ns: 500,
            owner_tid: 9,
        };
        let buf = marshal_event(&ctx);
        let l = event_layout();
        assert_eq!(l.read(&buf, "lock_id"), 7);
        assert_eq!(l.read(&buf, "cpu"), 12);
        assert_eq!(l.read(&buf, "now_ns"), 500);
        assert_eq!(l.read(&buf, "owner_tid"), 9);
    }
}
