//! Concord — the C3 (contextual concurrency control) framework.
//!
//! Reproduction of the system described in *Contextual Concurrency
//! Control* (Park, Calciu, Kim, Kashyap — HotOS '21): a framework that
//! lets a privileged userspace process tune kernel locks on the fly,
//! without recompiling the code base.
//!
//! The pipeline mirrors Fig. 1 of the paper:
//!
//! 1. the user writes a **policy** (assembly text or the builder API) and
//!    wraps it in a [`PolicySpec`] naming the target hook (Table 1);
//! 2. [`Concord::load`] compiles it and runs the **verifier** — core eBPF
//!    safety plus per-hook lock-safety rules ([`hookctx`]);
//! 3. the outcome is reported to the user (a `Result`);
//! 4. on success the program is pinned in the **object store**;
//! 5. [`Concord::attach`] **livepatches** the lock's hook table, swapping
//!    the policy into the running lock; [`Concord::detach`] reverts it.
//!
//! Policies run against real locks (crate `locks`, through epoch-swapped
//! patch points) and against the simulated machine (crate `simlocks`,
//! where each policy invocation charges its interpreter cost to virtual
//! time — the mechanism behind the Fig. 2(c) overhead reproduction).
//!
//! The crate also provides the paper's §3 use-case library
//! ([`policies`]) and the dynamic lock profiler (§3.2, [`profiler`]).
//!
//! # Examples
//!
//! Attach a NUMA-aware shuffling policy to a running lock:
//!
//! ```
//! use concord::{Concord, PolicySpec};
//! use locks::hooks::HookKind;
//! use locks::{RawLock, ShflLock};
//! use std::sync::Arc;
//!
//! let concord = Concord::new();
//! let lock = Arc::new(ShflLock::new());
//! concord.registry().register_shfl("demo_lock", Arc::clone(&lock));
//!
//! let spec = concord::policies::numa_aware();
//! let loaded = concord.load(spec).unwrap();           // Verify + store.
//! let handle = concord.attach("demo_lock", &loaded).unwrap();
//!
//! let _g = lock.lock();                               // Policy is live.
//! drop(_g);
//!
//! concord.detach(handle).unwrap();                    // Revert.
//! ```

pub mod compose;
pub mod containment;
pub mod env;
pub mod explore;
pub mod fleet;
pub mod hookctx;
pub mod policies;
pub mod policy;
pub mod profiler;
pub mod registry;
pub mod rollout;
pub mod tenant;
pub mod watchdog;
mod workflow;

pub use compose::{Combinator, ComposeError};
pub use explore::{
    explore, ExploreConfig, ExploreError, ExploreReport, Fixture, Monitor, PolicySchedStrategy,
    Repro, RunOutcome, StrategySpec, Violation, ZooLock,
};
pub use containment::{
    Breaker, BreakerConfig, BreakerState, ContainedPolicy, QuarantineRecord, BREAKER_CHECK_NS,
};
pub use policy::{BytecodePolicy, SimBytecodePolicy, HOOK_CALL_NS, NS_PER_INSN, TRAMPOLINE_NS};
pub use registry::{LockClass, LockHandle, LockRegistry};
pub use rollout::{
    ChaosInjector, ChaosPlan, HealthEvaluator, HealthVerdict, MetricsHealth, RealTarget,
    RecoverOutcome, Rollout, RolloutError, RolloutLog, RolloutOutcome, RolloutPlan, RolloutTarget,
    SimTarget, WaveOutcome,
};
pub use tenant::{TenantError, TenantId, TenantManager};
pub use watchdog::{EnforceOutcome, HazardReport, LockWatchdog, WatchdogConfig, WindowStats};
pub use workflow::{AttachHandle, Concord, ConcordError, LoadedPolicy, PolicySource, PolicySpec};
