//! Prebuilt policy library — the §3 use cases as loadable programs.
//!
//! Every builder returns a [`PolicySpec`] whose program is generated
//! against the hook layouts of [`crate::hookctx`]; for each bytecode
//! policy there is a `*_native` twin used by the differential test suite
//! (bytecode and native must make identical decisions on identical
//! contexts).

use std::sync::Arc;

use cbpf::insn::{AluOp, JmpOp, MemSize, Reg};
use cbpf::map::{Map, MapDef, MapKind};
use cbpf::program::ProgramBuilder;
use locks::hooks::{CmpNodeFn, HookKind, ScheduleWaiterFn};

use crate::hookctx::{cmp_node_layout, schedule_waiter_layout};
use crate::workflow::{PolicySource, PolicySpec};

fn cmp_field(name: &str) -> i16 {
    cmp_node_layout()
        .field(name)
        .unwrap_or_else(|| panic!("no cmp_node field {name}"))
        .offset as i16
}

/// Builds a cmp_node program `return f(shuffler_field, curr_field)` where
/// `f` is a single comparison.
fn cmp_two_fields(
    name: &str,
    a: &str,
    size_a: MemSize,
    b: &str,
    size_b: MemSize,
    op: JmpOp,
) -> PolicySpec {
    let mut p = ProgramBuilder::new(name);
    p.load(size_a, Reg::R2, Reg::R1, cmp_field(a));
    p.load(size_b, Reg::R3, Reg::R1, cmp_field(b));
    p.mov_imm(Reg::R0, 1);
    p.jmp(op, Reg::R2, Reg::R3, "yes");
    p.mov_imm(Reg::R0, 0);
    p.label("yes");
    p.exit();
    PolicySpec::from_program(name, HookKind::CmpNode, p.build().expect("labels resolve"))
}

/// NUMA-aware shuffling: group waiters from the shuffler's socket
/// (§3.1.1 "Lock switching"; the policy evaluated in Fig. 2(b)).
pub fn numa_aware() -> PolicySpec {
    cmp_two_fields(
        "numa_aware",
        "curr_socket",
        MemSize::W,
        "shuffler_socket",
        MemSize::W,
        JmpOp::Eq,
    )
}

/// Native twin of [`numa_aware`].
pub fn numa_aware_native() -> CmpNodeFn {
    Arc::new(|c| c.curr.socket == c.shuffler.socket)
}

/// Priority boosting: waiters with higher declared priority move forward
/// (§3.1.1 "Lock priority boosting").
pub fn priority_boost() -> PolicySpec {
    cmp_two_fields(
        "priority_boost",
        "curr_prio",
        MemSize::Dw,
        "shuffler_prio",
        MemSize::Dw,
        JmpOp::Sgt,
    )
}

/// Native twin of [`priority_boost`].
pub fn priority_boost_native() -> CmpNodeFn {
    Arc::new(|c| c.curr.prio > c.shuffler.prio)
}

/// Lock inheritance: a waiter already holding other locks is boosted, so
/// it cannot stall a whole lock chain at the back of a FIFO queue
/// (§3.1.1 "Lock inheritance").
pub fn lock_inheritance() -> PolicySpec {
    cmp_two_fields(
        "lock_inheritance",
        "curr_held",
        MemSize::W,
        "shuffler_held",
        MemSize::W,
        JmpOp::Gt,
    )
}

/// Native twin of [`lock_inheritance`].
pub fn lock_inheritance_native() -> CmpNodeFn {
    Arc::new(|c| c.curr.held_locks > c.shuffler.held_locks)
}

/// Scheduler-cooperative shuffling: prefer waiters that declared a
/// critical section shorter than `threshold_ns` — the SCL-style antidote
/// to scheduler subversion (§3.1.2), applied "only when needed".
pub fn scheduler_cooperative(threshold_ns: u64) -> PolicySpec {
    let name = "scheduler_cooperative";
    let mut p = ProgramBuilder::new(name);
    p.load(MemSize::Dw, Reg::R2, Reg::R1, cmp_field("curr_cs_hint"));
    p.ld_imm64(Reg::R3, threshold_ns);
    p.mov_imm(Reg::R0, 1);
    p.jmp(JmpOp::Lt, Reg::R2, Reg::R3, "yes");
    p.mov_imm(Reg::R0, 0);
    p.label("yes");
    p.exit();
    PolicySpec::from_program(name, HookKind::CmpNode, p.build().expect("labels resolve"))
}

/// Native twin of [`scheduler_cooperative`].
pub fn scheduler_cooperative_native(threshold_ns: u64) -> CmpNodeFn {
    Arc::new(move |c| c.curr.cs_hint < threshold_ns)
}

/// AMP-aware shuffling: waiters on fast cores (cpu < `fast_cores`) move
/// forward so slow cores do not pace the lock (§3.1.2 "Task-fair locks on
/// AMP machines").
pub fn amp_aware(fast_cores: u32) -> PolicySpec {
    let name = "amp_aware";
    let mut p = ProgramBuilder::new(name);
    p.load(MemSize::W, Reg::R2, Reg::R1, cmp_field("curr_cpu"));
    p.mov_imm(Reg::R0, 1);
    p.jmp_imm(JmpOp::Lt, Reg::R2, fast_cores as i32, "yes");
    p.mov_imm(Reg::R0, 0);
    p.label("yes");
    p.exit();
    PolicySpec::from_program(name, HookKind::CmpNode, p.build().expect("labels resolve"))
}

/// Native twin of [`amp_aware`].
pub fn amp_aware_native(fast_cores: u32) -> CmpNodeFn {
    Arc::new(move |c| c.curr.cpu < fast_cores)
}

/// Adaptive parking: a waiter may park only after spinning `spin_ns` —
/// the "adaptable parking/wake-up strategy" knob of §3.1.1.
pub fn adaptive_parking(spin_ns: u64) -> PolicySpec {
    let name = "adaptive_parking";
    let layout = schedule_waiter_layout();
    let waited = layout.field("waited_ns").unwrap().offset as i16;
    let mut p = ProgramBuilder::new(name);
    p.load(MemSize::Dw, Reg::R2, Reg::R1, waited);
    p.ld_imm64(Reg::R3, spin_ns);
    p.mov_imm(Reg::R0, 1);
    p.jmp(JmpOp::Ge, Reg::R2, Reg::R3, "yes");
    p.mov_imm(Reg::R0, 0);
    p.label("yes");
    p.exit();
    PolicySpec::from_program(
        name,
        HookKind::ScheduleWaiter,
        p.build().expect("labels resolve"),
    )
}

/// Native twin of [`adaptive_parking`].
pub fn adaptive_parking_native(spin_ns: u64) -> ScheduleWaiterFn {
    Arc::new(move |c| c.waited_ns >= spin_ns)
}

/// Creates the per-CPU counter map used by [`event_counter`].
pub fn counter_map(name: &str) -> Arc<Map> {
    Arc::new(Map::new(MapDef {
        name: name.to_string(),
        kind: MapKind::PerCpuArray,
        key_size: 4,
        value_size: 8,
        max_entries: 1,
    }))
}

/// An event-hook policy that bumps a per-CPU counter — the bytecode
/// building block of dynamic lock profiling (§3.2). Attach one per event
/// of interest and read the map from userspace.
pub fn event_counter(hook: HookKind, map: Arc<Map>) -> PolicySpec {
    assert!(
        matches!(
            hook,
            HookKind::LockAcquire
                | HookKind::LockContended
                | HookKind::LockAcquired
                | HookKind::LockRelease
        ),
        "counter policies attach to event hooks"
    );
    let name = format!("count_{}", hook.name());
    let mut p = ProgramBuilder::new(name.clone());
    let mid = p.register_map(Arc::clone(&map));
    p.ldmap(Reg::R1, mid);
    p.store_imm(MemSize::W, Reg::R10, -4, 0);
    p.mov(Reg::R2, Reg::R10);
    p.alu_imm(AluOp::Add, Reg::R2, -4);
    p.call(cbpf::helpers::HelperId::MapLookup);
    p.jmp_imm(JmpOp::Eq, Reg::R0, 0, "out");
    p.load(MemSize::Dw, Reg::R1, Reg::R0, 0);
    p.alu_imm(AluOp::Add, Reg::R1, 1);
    p.store(MemSize::Dw, Reg::R0, 0, Reg::R1);
    p.label("out");
    p.mov_imm(Reg::R0, 0);
    p.exit();
    PolicySpec {
        name,
        hook,
        source: PolicySource::Program(p.build().expect("labels resolve")),
        maps: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Concord;

    #[test]
    fn all_prebuilt_policies_verify() {
        let c = Concord::new();
        for spec in [
            numa_aware(),
            priority_boost(),
            lock_inheritance(),
            scheduler_cooperative(10_000),
            amp_aware(16),
            adaptive_parking(50_000),
            event_counter(HookKind::LockAcquired, counter_map("acq")),
        ] {
            let name = spec.name.clone();
            c.load(spec)
                .unwrap_or_else(|e| panic!("{name} rejected: {e}"));
        }
    }

    #[test]
    fn event_counter_counts() {
        use crate::env::RealEnv;
        use crate::policy::BytecodePolicy;
        use locks::hooks::LockEventCtx;

        let c = Concord::new();
        let map = counter_map("acq");
        let loaded = c
            .load(event_counter(HookKind::LockAcquired, Arc::clone(&map)))
            .unwrap();
        let p = BytecodePolicy::new(loaded.prog, loaded.hook, Arc::new(RealEnv::new()));
        let f = p.as_event().unwrap();
        for i in 0..5 {
            f(&LockEventCtx {
                lock_id: 1,
                tid: 1,
                cpu: 0,
                socket: 0,
                now_ns: i,
                owner_tid: 0,
            });
        }
        assert_eq!(map.percpu_sum(&0u32.to_le_bytes()), 5);
        assert_eq!(p.stats().1, 0, "no faults");
    }

    #[test]
    #[should_panic(expected = "event hooks")]
    fn event_counter_rejects_decision_hooks() {
        event_counter(HookKind::CmpNode, counter_map("x"));
    }
}
