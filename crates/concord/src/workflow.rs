//! The Concord facade: the Fig. 1 workflow end to end.
//!
//! `specify → compile → verify → notify → store → patch` — plus the
//! reverse direction (detach/revert) and the simulated-machine variants
//! used by the figure benchmarks.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use cbpf::asm::assemble_named;
use cbpf::error::{AsmError, VerifyError};
use cbpf::fault::FaultInjector;
use cbpf::helpers::PolicyEnv;
use cbpf::map::Map;
use cbpf::program::Program;
use cbpf::store::{ObjectStore, VerifiedProgram};
use ksim::Sim;
use livepatch::{Patch, PatchError, PatchHandle, PatchManager, ShadowStore};
use locks::hooks::{CmpNodeFn, HookKind, LockEventFn, ScheduleWaiterFn, ShflHooks};
use parking_lot::Mutex;
use simlocks::policy::SimPolicy;
use simlocks::SimShflLock;

use crate::containment::{flight_record, Breaker, BreakerConfig, QuarantineRecord};
use crate::env::RealEnv;
use crate::hookctx;
use crate::policy::{BytecodePolicy, HookMismatch, SimBytecodePolicy};
use crate::registry::LockRegistry;

/// Errors surfaced to the user — the "notify user" arrow of Fig. 1.
#[derive(Debug)]
pub enum ConcordError {
    /// The policy source failed to assemble.
    Asm(AsmError),
    /// The verifier rejected the policy.
    Verify(VerifyError),
    /// No lock registered under this name.
    UnknownLock(String),
    /// The target lock kind does not expose hooks.
    NotHookable(String),
    /// A loaded policy was requested as the wrong hook shape.
    HookMismatch(HookMismatch),
    /// Patch stack violation on detach.
    Patch(PatchError),
}

impl fmt::Display for ConcordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcordError::Asm(e) => write!(f, "assembly error: {e}"),
            ConcordError::Verify(e) => write!(f, "verifier rejected policy: {e}"),
            ConcordError::UnknownLock(n) => write!(f, "no lock named `{n}`"),
            ConcordError::NotHookable(n) => write!(f, "lock `{n}` does not expose hooks"),
            ConcordError::HookMismatch(e) => write!(f, "hook mismatch: {e}"),
            ConcordError::Patch(e) => write!(f, "patch error: {e}"),
        }
    }
}

impl std::error::Error for ConcordError {}

impl From<HookMismatch> for ConcordError {
    fn from(e: HookMismatch) -> Self {
        ConcordError::HookMismatch(e)
    }
}

impl From<AsmError> for ConcordError {
    fn from(e: AsmError) -> Self {
        ConcordError::Asm(e)
    }
}

impl From<VerifyError> for ConcordError {
    fn from(e: VerifyError) -> Self {
        ConcordError::Verify(e)
    }
}

impl From<PatchError> for ConcordError {
    fn from(e: PatchError) -> Self {
        ConcordError::Patch(e)
    }
}

/// Where a policy's instructions come from.
pub enum PolicySource {
    /// Assembly text.
    Asm(String),
    /// Restricted C-style source (the paper's §4.2 authoring surface);
    /// context fields appear as bare identifiers, helpers as calls.
    CStyle(String),
    /// A pre-built program (the builder API / prebuilt library).
    Program(Program),
}

/// A user-specified policy: Fig. 1 step 1.
pub struct PolicySpec {
    /// Name (object-store path component).
    pub name: String,
    /// The Table 1 hook this policy targets.
    pub hook: HookKind,
    /// Instruction source.
    pub source: PolicySource,
    /// Maps the policy references (`ldmap` by name for assembly sources).
    pub maps: Vec<Arc<Map>>,
}

impl PolicySpec {
    /// Convenience constructor from assembly text.
    pub fn from_asm(name: &str, hook: HookKind, asm: &str) -> Self {
        PolicySpec {
            name: name.to_string(),
            hook,
            source: PolicySource::Asm(asm.to_string()),
            maps: Vec::new(),
        }
    }

    /// Convenience constructor from C-style source.
    pub fn from_c(name: &str, hook: HookKind, src: &str) -> Self {
        PolicySpec {
            name: name.to_string(),
            hook,
            source: PolicySource::CStyle(src.to_string()),
            maps: Vec::new(),
        }
    }

    /// Convenience constructor from a built program.
    pub fn from_program(name: &str, hook: HookKind, prog: Program) -> Self {
        PolicySpec {
            name: name.to_string(),
            hook,
            source: PolicySource::Program(prog),
            maps: Vec::new(),
        }
    }

    /// Adds a referenced map.
    pub fn with_map(mut self, map: Arc<Map>) -> Self {
        self.maps.push(map);
        self
    }
}

/// A verified, stored policy ready to attach: the product of Fig. 1
/// steps 2–5.
#[derive(Clone)]
pub struct LoadedPolicy {
    /// Policy name.
    pub name: String,
    /// Bound hook.
    pub hook: HookKind,
    /// The verified program.
    pub prog: VerifiedProgram,
}

/// Handle for detaching an attached policy.
#[derive(Debug)]
pub struct AttachHandle {
    pub(crate) patch: PatchHandle,
    /// Target lock name.
    pub lock: String,
    /// Patched hook.
    pub hook: HookKind,
}

/// A contained attach the framework still tracks: the breaker decides
/// whether the quarantine sweep pulls its patch.
struct ContainedAttach {
    patch: PatchHandle,
    lock: String,
    hook: HookKind,
    policy: String,
    breaker: Arc<Breaker>,
    tenant: Option<u32>,
}

/// The framework object: registry + verifier + object store + livepatch.
pub struct Concord {
    registry: LockRegistry,
    store: ObjectStore,
    patches: PatchManager,
    shadows: ShadowStore,
    env: Arc<RealEnv>,
    contained: Mutex<Vec<ContainedAttach>>,
}

impl Default for Concord {
    fn default() -> Self {
        Concord::new()
    }
}

impl Concord {
    /// Creates a framework instance.
    pub fn new() -> Self {
        Concord {
            registry: LockRegistry::new(),
            store: ObjectStore::new(),
            patches: PatchManager::new(),
            shadows: ShadowStore::new(),
            env: Arc::new(RealEnv::new()),
            contained: Mutex::new(Vec::new()),
        }
    }

    /// The lock registry.
    pub fn registry(&self) -> &LockRegistry {
        &self.registry
    }

    /// The pinned-object store (Fig. 1 step 5's "file system").
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The policy execution environment for real locks.
    pub fn env(&self) -> &Arc<RealEnv> {
        &self.env
    }

    /// The shadow-variable store (livepatch shadow data, §4.2).
    pub fn shadows(&self) -> &ShadowStore {
        &self.shadows
    }

    /// Compiles, verifies and pins a policy (Fig. 1 steps 1–5).
    ///
    /// # Errors
    ///
    /// Returns [`ConcordError::Asm`] or [`ConcordError::Verify`] — the
    /// "notify user" outcome.
    pub fn load(&self, spec: PolicySpec) -> Result<LoadedPolicy, ConcordError> {
        let layout = hookctx::layout_for(spec.hook);
        let program = match spec.source {
            PolicySource::Asm(src) => assemble_named(&spec.name, &src, &spec.maps)?,
            PolicySource::CStyle(src) => cbpf::dsl::compile(&spec.name, &src, layout)?,
            PolicySource::Program(p) => {
                if spec.maps.is_empty() {
                    p
                } else {
                    Program::new(
                        p.name().to_string(),
                        p.insns().to_vec(),
                        p.maps().iter().cloned().chain(spec.maps).collect(),
                    )
                }
            }
        };
        let rules = hookctx::rules_for(spec.hook);
        let prog = VerifiedProgram::new(program, layout, &rules)?;
        let path = format!("policies/{}/{}", spec.name, spec.hook.name());
        self.store.pin_program(&path, prog.clone());
        for map in prog.program().maps() {
            self.store.pin_map(
                &format!("maps/{}/{}", spec.name, map.def().name),
                Arc::clone(map),
            );
        }
        Ok(LoadedPolicy {
            name: spec.name,
            hook: spec.hook,
            prog,
        })
    }

    fn hooks_of(&self, lock: &str) -> Result<Arc<ShflHooks>, ConcordError> {
        let handle = self
            .registry
            .get(lock)
            .ok_or_else(|| ConcordError::UnknownLock(lock.to_string()))?;
        handle
            .hooks()
            .cloned()
            .ok_or_else(|| ConcordError::NotHookable(lock.to_string()))
    }

    /// Attaches a loaded policy to a lock's hook via livepatch (Fig. 1
    /// step 6).
    ///
    /// # Errors
    ///
    /// Returns [`ConcordError::UnknownLock`] / [`ConcordError::NotHookable`].
    pub fn attach(&self, lock: &str, policy: &LoadedPolicy) -> Result<AttachHandle, ConcordError> {
        let bytecode = BytecodePolicy::new(policy.prog.clone(), policy.hook, Arc::clone(&self.env));
        self.attach_bytecode(lock, policy.hook, &bytecode)
    }

    /// Attaches a policy under a circuit breaker configured by `cfg`:
    /// runtime faults degrade to the lock's default decision, and
    /// `cfg.threshold` consecutive faults trip the breaker. With
    /// `cfg.cooldown_ns: None`, a tripped policy waits for
    /// [`Concord::sweep_breakers`] to quarantine it; with a cooldown, it
    /// re-probes (half-open) after the cooldown elapses.
    ///
    /// Returns the attach handle plus the breaker for observation.
    ///
    /// # Errors
    ///
    /// See [`Concord::attach`].
    pub fn attach_contained(
        &self,
        lock: &str,
        policy: &LoadedPolicy,
        cfg: BreakerConfig,
    ) -> Result<(AttachHandle, Arc<Breaker>), ConcordError> {
        self.attach_contained_with_injector(lock, policy, cfg, None)
    }

    /// [`Concord::attach_contained`] with a deterministic fault injector
    /// armed — the containment test harness entry point.
    ///
    /// # Errors
    ///
    /// See [`Concord::attach`].
    pub fn attach_contained_with_injector(
        &self,
        lock: &str,
        policy: &LoadedPolicy,
        cfg: BreakerConfig,
        injector: Option<Arc<FaultInjector>>,
    ) -> Result<(AttachHandle, Arc<Breaker>), ConcordError> {
        let breaker = Arc::new(Breaker::new(cfg));
        breaker.set_tag(
            telemetry::event::fnv64(lock),
            u64::from(policy.hook.bit()),
        );
        let bytecode = BytecodePolicy::contained(
            policy.prog.clone(),
            policy.hook,
            Arc::clone(&self.env),
            Some(Arc::clone(&breaker)),
            injector,
        );
        let handle = self.attach_bytecode(lock, policy.hook, &bytecode)?;
        self.contained.lock().push(ContainedAttach {
            patch: handle.patch,
            lock: lock.to_string(),
            hook: policy.hook,
            policy: policy.name.clone(),
            breaker: Arc::clone(&breaker),
            tenant: None,
        });
        Ok((handle, breaker))
    }

    fn attach_bytecode(
        &self,
        lock: &str,
        hook: HookKind,
        bytecode: &Arc<BytecodePolicy>,
    ) -> Result<AttachHandle, ConcordError> {
        let patch = self.build_bytecode_patch(lock, hook, bytecode, None)?;
        Ok(self.finish_attach(lock, hook, patch))
    }

    /// Builds (without applying) the livepatch that installs `bytecode`
    /// on `lock`'s `hook`. `name_prefix` lets a rollout tag the patch
    /// with its generation so crash recovery can probe it by name.
    ///
    /// This is the fallible half of an attach; [`Concord::attach_many`]
    /// and the rollout controller feed a sequence of these into
    /// [`PatchManager::apply_transaction`] so a mid-sequence error
    /// unwinds every lock already patched.
    pub(crate) fn build_bytecode_patch(
        &self,
        lock: &str,
        hook: HookKind,
        bytecode: &Arc<BytecodePolicy>,
        name_prefix: Option<&str>,
    ) -> Result<Patch, ConcordError> {
        let hooks = self.hooks_of(lock)?;
        let name = match name_prefix {
            Some(p) => format!("{p}{lock}/{}", hook.name()),
            None => format!("{lock}/{}", hook.name()),
        };
        let mut patch = Patch::new(name);
        match hook {
            HookKind::CmpNode => {
                let point = Arc::clone(&hooks.cmp_node);
                let old = point.get().clone();
                patch.swap(&point, Some(bytecode.as_cmp_node()?), old);
            }
            HookKind::SkipShuffle => {
                let point = Arc::clone(&hooks.skip_shuffle);
                let old = point.get().clone();
                patch.swap(&point, Some(bytecode.as_skip_shuffle()?), old);
            }
            HookKind::ScheduleWaiter => {
                let point = Arc::clone(&hooks.schedule_waiter);
                let old = point.get().clone();
                patch.swap(&point, Some(bytecode.as_schedule_waiter()?), old);
            }
            kind => {
                let point = match kind {
                    HookKind::LockAcquire => &hooks.lock_acquire,
                    HookKind::LockContended => &hooks.lock_contended,
                    HookKind::LockAcquired => &hooks.lock_acquired,
                    HookKind::LockRelease => &hooks.lock_release,
                    _ => {
                        return Err(ConcordError::NotHookable(format!(
                            "{} is not an event hook",
                            kind.name()
                        )))
                    }
                };
                let f = bytecode.as_event()?;
                let point = Arc::clone(point);
                let old = point.get().clone();
                let installed: LockEventFn = match &old {
                    Some(prev) => {
                        let prev = Arc::clone(prev);
                        Arc::new(move |ctx| {
                            prev(ctx);
                            f(ctx);
                        })
                    }
                    None => f,
                };
                patch.swap(&point, Some(installed), old);
            }
        }
        self.add_active_flag_ops(&mut patch, hooks, hook);
        Ok(patch)
    }

    /// Attaches `policy` to every lock in `locks` as one all-or-nothing
    /// livepatch transaction: if any lock is unknown, un-hookable, or
    /// hook-mismatched, the locks already patched by this call are
    /// unwound and nothing changes.
    ///
    /// # Errors
    ///
    /// The first per-lock error, after unwinding.
    pub fn attach_many(
        &self,
        locks: &[&str],
        policy: &LoadedPolicy,
    ) -> Result<Vec<AttachHandle>, ConcordError> {
        let bytecode = BytecodePolicy::new(policy.prog.clone(), policy.hook, Arc::clone(&self.env));
        let handles = self.patches.apply_transaction(
            locks
                .iter()
                .map(|lock| self.build_bytecode_patch(lock, policy.hook, &bytecode, None)),
        )?;
        Ok(handles
            .into_iter()
            .zip(locks)
            .map(|(patch, lock)| AttachHandle {
                patch,
                lock: lock.to_string(),
                hook: policy.hook,
            })
            .collect())
    }

    /// [`Concord::attach_many`] over every registered lock in `class`.
    ///
    /// # Errors
    ///
    /// See [`Concord::attach_many`]; also [`ConcordError::UnknownLock`]
    /// when the class is empty.
    pub fn attach_class(
        &self,
        class: &str,
        policy: &LoadedPolicy,
    ) -> Result<Vec<AttachHandle>, ConcordError> {
        let names = self.registry.names_in_class(class);
        if names.is_empty() {
            return Err(ConcordError::UnknownLock(format!("class {class}")));
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.attach_many(&refs, policy)
    }

    /// The underlying patch manager (rollout controller / recovery use
    /// this to run transactions and probe live patch names).
    pub(crate) fn patch_manager(&self) -> &PatchManager {
        &self.patches
    }

    /// Attaches a native `cmp_node` closure (profiler and tests use this).
    ///
    /// # Errors
    ///
    /// See [`Concord::attach`].
    pub fn attach_native_cmp_node(
        &self,
        lock: &str,
        f: CmpNodeFn,
    ) -> Result<AttachHandle, ConcordError> {
        let hooks = self.hooks_of(lock)?;
        self.attach_cmp_node_fn(lock, HookKind::CmpNode, f, hooks)
    }

    /// Attaches a native `schedule_waiter` closure.
    ///
    /// # Errors
    ///
    /// See [`Concord::attach`].
    pub fn attach_native_schedule_waiter(
        &self,
        lock: &str,
        f: ScheduleWaiterFn,
    ) -> Result<AttachHandle, ConcordError> {
        let hooks = self.hooks_of(lock)?;
        self.attach_schedule_fn(lock, HookKind::ScheduleWaiter, f, hooks)
    }

    /// Attaches a native event closure.
    ///
    /// # Errors
    ///
    /// See [`Concord::attach`]; also fails on a decision-hook `kind`.
    pub fn attach_native_event(
        &self,
        lock: &str,
        kind: HookKind,
        f: LockEventFn,
    ) -> Result<AttachHandle, ConcordError> {
        let hooks = self.hooks_of(lock)?;
        self.attach_event_fn(lock, kind, f, hooks)
    }

    fn attach_cmp_node_fn(
        &self,
        lock: &str,
        kind: HookKind,
        f: CmpNodeFn,
        hooks: Arc<ShflHooks>,
    ) -> Result<AttachHandle, ConcordError> {
        let point = Arc::clone(&hooks.cmp_node);
        let old = point.get().clone();
        let mut patch = Patch::new(format!("{lock}/{}", kind.name()));
        patch.swap(&point, Some(f), old);
        self.add_active_flag_ops(&mut patch, hooks, kind);
        Ok(self.finish_attach(lock, kind, patch))
    }

    fn attach_schedule_fn(
        &self,
        lock: &str,
        kind: HookKind,
        f: ScheduleWaiterFn,
        hooks: Arc<ShflHooks>,
    ) -> Result<AttachHandle, ConcordError> {
        let point = Arc::clone(&hooks.schedule_waiter);
        let old = point.get().clone();
        let mut patch = Patch::new(format!("{lock}/{}", kind.name()));
        patch.swap(&point, Some(f), old);
        self.add_active_flag_ops(&mut patch, hooks, kind);
        Ok(self.finish_attach(lock, kind, patch))
    }

    fn attach_event_fn(
        &self,
        lock: &str,
        kind: HookKind,
        f: LockEventFn,
        hooks: Arc<ShflHooks>,
    ) -> Result<AttachHandle, ConcordError> {
        let point = match kind {
            HookKind::LockAcquire => &hooks.lock_acquire,
            HookKind::LockContended => &hooks.lock_contended,
            HookKind::LockAcquired => &hooks.lock_acquired,
            HookKind::LockRelease => &hooks.lock_release,
            _ => {
                return Err(ConcordError::NotHookable(format!(
                    "{} is not an event hook",
                    kind.name()
                )))
            }
        };
        let point = Arc::clone(point);
        let old = point.get().clone();
        // Event hooks are observers with no return value, so they chain
        // (tracepoint-style): the previous subscriber keeps running ahead
        // of the new one. Decision hooks stay replace-only — there is one
        // decision maker. Reverting restores the previous chain.
        let installed: LockEventFn = match &old {
            Some(prev) => {
                let prev = Arc::clone(prev);
                Arc::new(move |ctx| {
                    prev(ctx);
                    f(ctx);
                })
            }
            None => f,
        };
        let mut patch = Patch::new(format!("{lock}/{}", kind.name()));
        patch.swap(&point, Some(installed), old);
        self.add_active_flag_ops(&mut patch, hooks, kind);
        Ok(self.finish_attach(lock, kind, patch))
    }

    fn add_active_flag_ops(&self, patch: &mut Patch, hooks: Arc<ShflHooks>, kind: HookKind) {
        let was_active = hooks.is_active(kind);
        let h1 = Arc::clone(&hooks);
        patch.action(
            move || h1.set_active(kind, true),
            move || hooks.set_active(kind, was_active),
        );
    }

    fn finish_attach(&self, lock: &str, kind: HookKind, patch: Patch) -> AttachHandle {
        let handle = self.patches.apply(patch);
        AttachHandle {
            patch: handle,
            lock: lock.to_string(),
            hook: kind,
        }
    }

    /// Reverts an attached policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConcordError::Patch`] on a stack-order violation (patches
    /// revert LIFO, like kernel livepatch).
    pub fn detach(&self, handle: AttachHandle) -> Result<(), ConcordError> {
        self.patches.revert(handle.patch)?;
        self.contained.lock().retain(|c| c.patch != handle.patch);
        Ok(())
    }

    /// Quarantines tripped breakers: every contained attach whose breaker
    /// is open with no cooldown is detached via a livepatch revert
    /// transaction (unrelated patches stacked above it survive), and a
    /// [`QuarantineRecord`] lands in the registry. Returns the records for
    /// the policies pulled by this sweep.
    ///
    /// Hook closures run inside lock acquisitions and cannot detach
    /// themselves; the sweep is the deferred half of the breaker, called
    /// from the control plane (`c3ctl`, a watchdog loop, or a test).
    pub fn sweep_breakers(&self) -> Vec<QuarantineRecord> {
        let tripped: Vec<ContainedAttach> = {
            let mut tracked = self.contained.lock();
            let mut tripped = Vec::new();
            tracked.retain_mut(|c| {
                if c.breaker.wants_quarantine() {
                    tripped.push(ContainedAttach {
                        patch: c.patch,
                        lock: std::mem::take(&mut c.lock),
                        hook: c.hook,
                        policy: std::mem::take(&mut c.policy),
                        breaker: Arc::clone(&c.breaker),
                        tenant: c.tenant,
                    });
                    false
                } else {
                    true
                }
            });
            tripped
        };
        let mut records = Vec::new();
        for entry in tripped {
            // Already reverted by hand → nothing to pull, no record.
            if self.patches.revert_transaction(entry.patch).is_err() {
                continue;
            }
            let at_ns = self.env.ktime_ns();
            telemetry::metrics().counter("c3_quarantines_total").inc();
            telemetry::emit(
                telemetry::EventKind::Quarantine,
                at_ns,
                0,
                telemetry::event::fnv64(&entry.lock),
                u64::from(entry.hook.bit()),
                entry.breaker.total_faults(),
                0,
            );
            let record = QuarantineRecord {
                lock: entry.lock,
                hook: entry.hook,
                policy: entry.policy,
                reason: entry.breaker.reason(),
                at_ns,
                tenant: entry.tenant,
                events: flight_record(),
            };
            self.registry.record_quarantine(record.clone());
            records.push(record);
        }
        records
    }

    /// Forcibly quarantines an attached policy (the watchdog's auto-revert
    /// path): reverts its patch as a transaction and records `reason`.
    ///
    /// # Errors
    ///
    /// Returns [`ConcordError::Patch`] when the patch is no longer live.
    pub fn quarantine(
        &self,
        handle: AttachHandle,
        reason: String,
    ) -> Result<QuarantineRecord, ConcordError> {
        self.patches.revert_transaction(handle.patch)?;
        let policy = {
            let mut tracked = self.contained.lock();
            let named = tracked
                .iter()
                .find(|c| c.patch == handle.patch)
                .map(|c| c.policy.clone());
            tracked.retain(|c| c.patch != handle.patch);
            // Untracked (plain) attaches are recorded under the patch name.
            named.unwrap_or_else(|| format!("{}/{}", handle.lock, handle.hook.name()))
        };
        let at_ns = self.env.ktime_ns();
        telemetry::metrics().counter("c3_quarantines_total").inc();
        telemetry::emit(
            telemetry::EventKind::Quarantine,
            at_ns,
            0,
            telemetry::event::fnv64(&handle.lock),
            u64::from(handle.hook.bit()),
            0,
            0,
        );
        let record = QuarantineRecord {
            lock: handle.lock,
            hook: handle.hook,
            policy,
            reason,
            at_ns,
            tenant: None,
            events: flight_record(),
        };
        self.registry.record_quarantine(record.clone());
        Ok(record)
    }

    /// Names of live patches, bottom to top.
    pub fn live_patches(&self) -> Vec<String> {
        self.patches.live()
    }

    /// Flips BRAVO reader-bias on a registered lock — the lock-switching
    /// use case of §3.1.1 (neutral rwlock ⇄ distributed readers).
    ///
    /// # Errors
    ///
    /// Returns [`ConcordError::UnknownLock`] / [`ConcordError::NotHookable`].
    pub fn switch_bravo_bias(&self, lock: &str, enabled: bool) -> Result<(), ConcordError> {
        match self.registry.get(lock) {
            Some(crate::registry::LockHandle::Bravo(b)) => {
                b.set_bias_enabled(enabled);
                Ok(())
            }
            Some(_) => Err(ConcordError::NotHookable(lock.to_string())),
            None => Err(ConcordError::UnknownLock(lock.to_string())),
        }
    }

    /// Builds a simulated-machine policy set from loaded policies.
    pub fn make_sim_policy(&self, sim: &Sim, loaded: &[&LoadedPolicy]) -> SimBytecodePolicy {
        let mut p = SimBytecodePolicy::new(sim);
        for l in loaded {
            p = p.install(l.hook, l.prog.clone());
        }
        p
    }

    /// Attaches a policy set to a simulated lock (the sim analog of the
    /// livepatch step; the simulator is single-threaded, so the swap is a
    /// plain replace).
    pub fn attach_sim(&self, lock: &SimShflLock, policy: Rc<dyn SimPolicy>) {
        lock.set_policy(policy);
    }

    /// Restores a simulated lock to its unpatched FIFO behavior.
    pub fn detach_sim(&self, lock: &SimShflLock) {
        lock.set_policy(Rc::new(simlocks::FifoPolicy::new()));
    }

    /// The sim analog of a quarantine: restores the lock to FIFO and
    /// records why. `at_ns` is the virtual time of the decision.
    pub fn quarantine_sim(
        &self,
        lock: &SimShflLock,
        name: &str,
        hook: HookKind,
        policy: &str,
        reason: String,
        at_ns: u64,
    ) -> QuarantineRecord {
        self.detach_sim(lock);
        telemetry::metrics().counter("c3_quarantines_total").inc();
        telemetry::emit(
            telemetry::EventKind::Quarantine,
            at_ns,
            0,
            telemetry::event::fnv64(name),
            u64::from(hook.bit()),
            0,
            0,
        );
        let record = QuarantineRecord {
            lock: name.to_string(),
            hook,
            policy: policy.to_string(),
            reason,
            at_ns,
            tenant: None,
            events: flight_record(),
        };
        self.registry.record_quarantine(record.clone());
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locks::{RawLock, ShflLock};

    fn trivial_spec(name: &str, hook: HookKind, ret: i32) -> PolicySpec {
        PolicySpec::from_asm(name, hook, &format!("mov r0, {ret}\nexit"))
    }

    #[test]
    fn load_verifies_and_pins() {
        let c = Concord::new();
        let loaded = c.load(trivial_spec("p1", HookKind::CmpNode, 0)).unwrap();
        assert_eq!(loaded.hook, HookKind::CmpNode);
        assert!(c.store().get_program("policies/p1/cmp_node").is_some());
    }

    #[test]
    fn load_rejects_bad_asm_and_unsafe_programs() {
        let c = Concord::new();
        let bad_asm = PolicySpec::from_asm("x", HookKind::CmpNode, "bogus r0");
        assert!(matches!(c.load(bad_asm), Err(ConcordError::Asm(_))));
        // Loop: rejected by the verifier.
        let looping =
            PolicySpec::from_asm("y", HookKind::CmpNode, "start:\nmov r0, 0\nja start\nexit");
        assert!(matches!(c.load(looping), Err(ConcordError::Verify(_))));
        // trace_printk is banned in decision hooks.
        let tracing = PolicySpec::from_asm(
            "z",
            HookKind::CmpNode,
            "stb [r10-1], 65\nmov r1, r10\nadd r1, -1\nmov r2, 1\ncall trace_printk\nexit",
        );
        assert!(matches!(c.load(tracing), Err(ConcordError::Verify(_))));
        // …but allowed in profiling hooks.
        let tracing_ok = PolicySpec::from_asm(
            "w",
            HookKind::LockAcquired,
            "stb [r10-1], 65\nmov r1, r10\nadd r1, -1\nmov r2, 1\ncall trace_printk\nexit",
        );
        assert!(c.load(tracing_ok).is_ok());
    }

    #[test]
    fn attach_detach_roundtrip() {
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("l", Arc::clone(&lock));
        assert!(!lock.hooks().is_active(HookKind::CmpNode));

        let loaded = c.load(trivial_spec("p", HookKind::CmpNode, 1)).unwrap();
        let h = c.attach("l", &loaded).unwrap();
        assert!(lock.hooks().is_active(HookKind::CmpNode));
        assert_eq!(c.live_patches(), vec!["l/cmp_node"]);
        {
            let _g = lock.lock();
        }
        c.detach(h).unwrap();
        assert!(!lock.hooks().is_active(HookKind::CmpNode));
        assert!(c.live_patches().is_empty());
    }

    #[test]
    fn attach_unknown_lock_fails() {
        let c = Concord::new();
        let loaded = c.load(trivial_spec("p", HookKind::CmpNode, 1)).unwrap();
        assert!(matches!(
            c.attach("ghost", &loaded),
            Err(ConcordError::UnknownLock(_))
        ));
    }

    #[test]
    fn detach_out_of_order_is_rejected() {
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("l", lock);
        let p1 = c.load(trivial_spec("p1", HookKind::CmpNode, 1)).unwrap();
        let p2 = c
            .load(trivial_spec("p2", HookKind::LockAcquired, 0))
            .unwrap();
        let h1 = c.attach("l", &p1).unwrap();
        let h2 = c.attach("l", &p2).unwrap();
        assert!(matches!(c.detach(h1), Err(ConcordError::Patch(_))));
        // LIFO order works.
        let h1 = AttachHandle {
            patch: h2.patch,
            lock: h2.lock,
            hook: h2.hook,
        };
        c.detach(h1).unwrap();
    }

    #[test]
    fn contained_attach_sweeps_tripped_breaker_into_quarantine() {
        use crate::containment::BreakerState;
        use cbpf::fault::{FaultInjector, FaultPlan};
        use cbpf::FaultKind;

        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("l", Arc::clone(&lock));
        // A profiling patch below, the contained policy above, another
        // event patch on top: the sweep must pull only the middle one.
        let below = c
            .load(trivial_spec("below", HookKind::LockAcquire, 0))
            .unwrap();
        let _hb = c.attach("l", &below).unwrap();
        let loaded = c.load(trivial_spec("p", HookKind::CmpNode, 1)).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::from_invocation(
            1,
            FaultKind::Trap,
        )));
        let (_h, breaker) = c
            .attach_contained_with_injector(
                "l",
                &loaded,
                BreakerConfig {
                    threshold: 2,
                    cooldown_ns: None,
                },
                Some(inj),
            )
            .unwrap();
        let above = c
            .load(trivial_spec("above", HookKind::LockRelease, 0))
            .unwrap();
        let _ha = c.attach("l", &above).unwrap();
        assert_eq!(
            c.live_patches(),
            vec!["l/lock_acquire", "l/cmp_node", "l/lock_release"]
        );

        assert!(c.sweep_breakers().is_empty(), "nothing tripped yet");
        // Drive the installed cmp_node slot exactly as a shuffle phase
        // would (the phase itself only runs when >=2 waiters queue behind
        // the head inside its bounded rounds — a race, so we call the hook
        // table directly for determinism). Every invocation faults; the
        // decision degrades to the fail-safe `false` and the breaker trips
        // at the threshold.
        let view = locks::hooks::NodeView {
            tid: 1,
            cpu: 0,
            socket: 0,
            prio: 0,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        };
        let ctx = locks::hooks::CmpNodeCtx {
            lock_id: lock.id(),
            shuffler: view,
            curr: view,
        };
        for _ in 0..3 {
            assert!(!lock.hooks().eval_cmp_node(&ctx), "fail-safe decision");
        }
        assert_eq!(breaker.state(), BreakerState::Open);

        let records = c.sweep_breakers();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].lock, "l");
        assert_eq!(records[0].policy, "p");
        assert!(records[0].reason.contains("trap"));
        assert_eq!(
            c.live_patches(),
            vec!["l/lock_acquire", "l/lock_release"],
            "quarantine pulled only the faulting policy"
        );
        assert!(!lock.hooks().is_active(HookKind::CmpNode));
        assert_eq!(c.registry().quarantines("l").len(), 1);
        assert!(c.sweep_breakers().is_empty(), "sweep is idempotent");
    }

    #[test]
    fn quarantine_reverts_and_records() {
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("l", Arc::clone(&lock));
        let loaded = c.load(trivial_spec("p", HookKind::CmpNode, 1)).unwrap();
        let h = c.attach("l", &loaded).unwrap();
        let rec = c.quarantine(h, "manual pull".to_string()).unwrap();
        assert_eq!(rec.lock, "l");
        assert!(c.live_patches().is_empty());
        assert_eq!(c.registry().all_quarantines().len(), 1);
    }

    #[test]
    fn bravo_switching() {
        use locks::{Bravo, NeutralRwLock};
        let c = Concord::new();
        let b = Arc::new(Bravo::new(NeutralRwLock::new()));
        c.registry().register_bravo("rw", Arc::clone(&b));
        c.switch_bravo_bias("rw", false).unwrap();
        assert!(!b.is_biased());
        c.switch_bravo_bias("rw", true).unwrap();
        assert!(matches!(
            c.switch_bravo_bias("none", true),
            Err(ConcordError::UnknownLock(_))
        ));
        // A hookable lock is not a BRAVO lock.
        c.registry().register_shfl("s", Arc::new(ShflLock::new()));
        assert!(matches!(
            c.switch_bravo_bias("s", true),
            Err(ConcordError::NotHookable(_))
        ));
    }
}
