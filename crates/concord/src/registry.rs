//! The lock registry: named lock instances and classes.
//!
//! Concord's replacement scope "can range from one lock instance to every
//! lock in the kernel" (§4). The registry is the addressing layer that
//! makes this possible: locks register under a name and a class (e.g.
//! `"inode"`, `"mmap_sem"`), and attach operations may target one
//! instance, a class, or everything.

use std::collections::BTreeMap;
use std::sync::Arc;

use locks::hooks::ShflHooks;
use locks::{Bravo, NeutralRwLock, ShflLock, ShflMutex};
use parking_lot::RwLock;

use crate::containment::QuarantineRecord;

/// Class tag for grouping lock instances.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LockClass(pub String);

/// A registered lock.
#[derive(Clone)]
pub enum LockHandle {
    /// A shuffle spinlock (hookable).
    Shfl(Arc<ShflLock>),
    /// A blocking shuffle mutex (hookable).
    ShflMutex(Arc<ShflMutex>),
    /// A BRAVO readers-writer lock (switchable, not hookable).
    Bravo(Arc<Bravo<NeutralRwLock>>),
}

impl LockHandle {
    /// The hook table, for hookable kinds.
    pub fn hooks(&self) -> Option<&Arc<ShflHooks>> {
        match self {
            LockHandle::Shfl(l) => Some(l.hooks()),
            LockHandle::ShflMutex(l) => Some(l.hooks()),
            LockHandle::Bravo(_) => None,
        }
    }

    /// Stable lock id (0 for kinds without one).
    pub fn id(&self) -> u64 {
        match self {
            LockHandle::Shfl(l) => l.id(),
            LockHandle::ShflMutex(l) => l.id(),
            LockHandle::Bravo(_) => 0,
        }
    }

    /// Human-readable kind.
    pub fn kind(&self) -> &'static str {
        match self {
            LockHandle::Shfl(_) => "shfl_spin",
            LockHandle::ShflMutex(_) => "shfl_mutex",
            LockHandle::Bravo(_) => "bravo_rw",
        }
    }
}

struct Entry {
    handle: LockHandle,
    class: LockClass,
}

/// Name → lock instance registry.
#[derive(Default)]
pub struct LockRegistry {
    entries: RwLock<BTreeMap<String, Entry>>,
    quarantines: RwLock<Vec<QuarantineRecord>>,
}

impl LockRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        LockRegistry::default()
    }

    /// Registers a lock under `name` with class `"default"`.
    pub fn register_shfl(&self, name: &str, lock: Arc<ShflLock>) {
        self.register(name, LockHandle::Shfl(lock), LockClass("default".into()));
    }

    /// Registers a blocking mutex under `name` with class `"default"`.
    pub fn register_shfl_mutex(&self, name: &str, lock: Arc<ShflMutex>) {
        self.register(
            name,
            LockHandle::ShflMutex(lock),
            LockClass("default".into()),
        );
    }

    /// Registers a BRAVO lock under `name` with class `"default"`.
    pub fn register_bravo(&self, name: &str, lock: Arc<Bravo<NeutralRwLock>>) {
        self.register(name, LockHandle::Bravo(lock), LockClass("default".into()));
    }

    /// Registers a lock with an explicit class.
    pub fn register(&self, name: &str, handle: LockHandle, class: LockClass) {
        self.entries
            .write()
            .insert(name.to_string(), Entry { handle, class });
    }

    /// Removes a registration.
    pub fn unregister(&self, name: &str) -> bool {
        self.entries.write().remove(name).is_some()
    }

    /// Looks a lock up by name.
    pub fn get(&self, name: &str) -> Option<LockHandle> {
        self.entries.read().get(name).map(|e| e.handle.clone())
    }

    /// All lock names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// Names of locks in `class`, sorted — the "class" granularity of the
    /// profiler (§3.2: "locks in a specific function, code path or
    /// namespace").
    pub fn names_in_class(&self, class: &str) -> Vec<String> {
        self.entries
            .read()
            .iter()
            .filter(|(_, e)| e.class.0 == class)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Number of registered locks.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Records why a policy was quarantined (breaker trip or watchdog
    /// hazard) — the administrator-facing audit trail.
    pub fn record_quarantine(&self, record: QuarantineRecord) {
        self.quarantines.write().push(record);
    }

    /// Quarantine records for `lock`, oldest first.
    pub fn quarantines(&self, lock: &str) -> Vec<QuarantineRecord> {
        self.quarantines
            .read()
            .iter()
            .filter(|r| r.lock == lock)
            .cloned()
            .collect()
    }

    /// Every quarantine record, oldest first.
    pub fn all_quarantines(&self) -> Vec<QuarantineRecord> {
        self.quarantines.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_unregister() {
        let r = LockRegistry::new();
        let lock = Arc::new(ShflLock::new());
        r.register_shfl("mmap_sem", Arc::clone(&lock));
        let got = r.get("mmap_sem").expect("registered");
        assert_eq!(got.kind(), "shfl_spin");
        assert_eq!(got.id(), lock.id());
        assert!(got.hooks().is_some());
        assert!(r.get("nope").is_none());
        assert!(r.unregister("mmap_sem"));
        assert!(!r.unregister("mmap_sem"));
    }

    #[test]
    fn classes_partition_names() {
        let r = LockRegistry::new();
        r.register(
            "inode_a",
            LockHandle::Shfl(Arc::new(ShflLock::new())),
            LockClass("inode".into()),
        );
        r.register(
            "inode_b",
            LockHandle::Shfl(Arc::new(ShflLock::new())),
            LockClass("inode".into()),
        );
        r.register(
            "dcache",
            LockHandle::Shfl(Arc::new(ShflLock::new())),
            LockClass("dentry".into()),
        );
        assert_eq!(r.names_in_class("inode"), vec!["inode_a", "inode_b"]);
        assert_eq!(r.names_in_class("dentry"), vec!["dcache"]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn bravo_has_no_hooks() {
        let r = LockRegistry::new();
        r.register_bravo("rw", Arc::new(Bravo::new(NeutralRwLock::new())));
        let h = r.get("rw").unwrap();
        assert!(h.hooks().is_none());
        assert_eq!(h.kind(), "bravo_rw");
    }
}
