//! Policy composition and conflict detection (§6 "Composing policies").
//!
//! Multiple policies can drive one hook through an explicit combinator;
//! attaching two decision policies to the same hook *without* one is the
//! conflict the paper warns about, and [`detect_conflicts`] flags it.

use std::collections::HashMap;
use std::sync::Arc;

use locks::hooks::{CmpNodeFn, HookKind, ScheduleWaiterFn};

/// How a chain of decision policies combines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Combinator {
    /// The first policy that answers `true` wins (priority order).
    First,
    /// All policies must agree (`AND`).
    All,
    /// Any agreeing policy suffices (`OR`).
    Any,
}

impl Combinator {
    fn fold(self, decisions: impl Iterator<Item = bool>) -> bool {
        let mut decisions = decisions.peekable();
        match self {
            // `First` over booleans: first `true` wins ⇒ same as `Any`,
            // but evaluation短 circuits in chain order.
            Combinator::First | Combinator::Any => decisions.any(|d| d),
            Combinator::All => decisions.all(|d| d),
        }
    }
}

/// Composes `cmp_node` policies under a combinator.
///
/// # Panics
///
/// Panics on an empty chain.
pub fn compose_cmp_node(fns: Vec<CmpNodeFn>, comb: Combinator) -> CmpNodeFn {
    assert!(!fns.is_empty(), "empty policy chain");
    Arc::new(move |ctx| comb.fold(fns.iter().map(|f| f(ctx))))
}

/// Composes `schedule_waiter` policies under a combinator.
///
/// # Panics
///
/// Panics on an empty chain.
pub fn compose_schedule_waiter(fns: Vec<ScheduleWaiterFn>, comb: Combinator) -> ScheduleWaiterFn {
    assert!(!fns.is_empty(), "empty policy chain");
    Arc::new(move |ctx| comb.fold(fns.iter().map(|f| f(ctx))))
}

/// A detected composition conflict.
#[derive(Debug, PartialEq, Eq)]
pub struct ComposeError {
    /// The hook with more than one uncombined decision policy.
    pub hook: HookKind,
    /// Names of the conflicting policies.
    pub policies: Vec<String>,
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conflicting policies on {}: {} — compose them with an explicit combinator",
            self.hook.name(),
            self.policies.join(", ")
        )
    }
}

impl std::error::Error for ComposeError {}

/// Flags decision hooks targeted by more than one policy.
///
/// Event (profiling) hooks may stack freely — observers do not conflict;
/// decision hooks may not, because the later attach silently shadows the
/// earlier one ("conflicting policies can sometimes lead to worse
/// performance and unexpected behavior", §1).
pub fn detect_conflicts(policies: &[(&str, HookKind)]) -> Result<(), Vec<ComposeError>> {
    let mut per_hook: HashMap<HookKind, Vec<String>> = HashMap::new();
    for (name, hook) in policies {
        per_hook.entry(*hook).or_default().push((*name).to_string());
    }
    let conflicts: Vec<ComposeError> = per_hook
        .into_iter()
        .filter(|(hook, names)| {
            names.len() > 1
                && matches!(
                    hook,
                    HookKind::CmpNode | HookKind::SkipShuffle | HookKind::ScheduleWaiter
                )
        })
        .map(|(hook, mut policies)| {
            policies.sort();
            ComposeError { hook, policies }
        })
        .collect();
    if conflicts.is_empty() {
        Ok(())
    } else {
        Err(conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies;
    use locks::hooks::{CmpNodeCtx, NodeView};

    fn ctx(curr_socket: u32, curr_prio: i64) -> CmpNodeCtx {
        let mk = |socket, prio| NodeView {
            tid: 1,
            cpu: socket * 10,
            socket,
            prio,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        };
        CmpNodeCtx {
            lock_id: 1,
            shuffler: mk(0, 0),
            curr: mk(curr_socket, curr_prio),
        }
    }

    #[test]
    fn combinators_fold_as_expected() {
        let numa = policies::numa_aware_native();
        let prio = policies::priority_boost_native();
        let any = compose_cmp_node(vec![numa.clone(), prio.clone()], Combinator::Any);
        let all = compose_cmp_node(vec![numa, prio], Combinator::All);
        // Same socket, low prio: numa yes, prio no.
        assert!(any(&ctx(0, 0)));
        assert!(!all(&ctx(0, 0)));
        // Same socket and higher prio: both yes.
        assert!(any(&ctx(0, 5)));
        assert!(all(&ctx(0, 5)));
        // Remote socket, low prio: both no.
        assert!(!any(&ctx(3, 0)));
        assert!(!all(&ctx(3, 0)));
    }

    #[test]
    fn first_matches_any_semantics_for_booleans() {
        let never: CmpNodeFn = Arc::new(|_| false);
        let always: CmpNodeFn = Arc::new(|_| true);
        let first = compose_cmp_node(vec![never, always], Combinator::First);
        assert!(first(&ctx(0, 0)));
    }

    #[test]
    fn conflicts_flagged_for_decision_hooks_only() {
        assert!(detect_conflicts(&[
            ("numa", HookKind::CmpNode),
            ("prof1", HookKind::LockAcquired),
            ("prof2", HookKind::LockAcquired),
        ])
        .is_ok());

        let err = detect_conflicts(&[("numa", HookKind::CmpNode), ("prio", HookKind::CmpNode)])
            .unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].hook, HookKind::CmpNode);
        assert_eq!(err[0].policies, vec!["numa", "prio"]);
        assert!(err[0].to_string().contains("combinator"));
    }

    #[test]
    fn schedule_waiter_composition() {
        let park_late = policies::adaptive_parking_native(1_000);
        let never: ScheduleWaiterFn = Arc::new(|_| false);
        let all = compose_schedule_waiter(vec![park_late, never], Combinator::All);
        let c = locks::hooks::ScheduleWaiterCtx {
            lock_id: 1,
            curr: NodeView {
                tid: 1,
                cpu: 0,
                socket: 0,
                prio: 0,
                cs_hint: 0,
                held_locks: 0,
                wait_start_ns: 0,
            },
            waited_ns: 5_000,
        };
        assert!(!all(&c), "AND with a never-park policy must not park");
    }
}
