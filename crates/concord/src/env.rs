//! Policy execution environments: real machine and simulated machine.

use std::sync::Arc;

use cbpf::helpers::PolicyEnv;
use parking_lot::Mutex;

/// Environment for policies attached to real-thread locks: CPU/NUMA come
/// from the calling thread's declared placement (`locks::topo`), time from
/// the process monotonic clock.
pub struct RealEnv {
    traces: Arc<Mutex<Vec<Vec<u8>>>>,
    priorities: Arc<Mutex<std::collections::HashMap<u64, i64>>>,
    cores_per_socket: u32,
    /// Lock served by the in-flight hook invocation (telemetry labeling;
    /// written by the policy layer only while the trace plane is armed).
    current_lock: std::sync::atomic::AtomicU64,
}

impl RealEnv {
    /// Creates an environment with the paper topology's 10 cores/socket.
    pub fn new() -> Self {
        RealEnv {
            traces: Arc::new(Mutex::new(Vec::new())),
            priorities: Arc::new(Mutex::new(Default::default())),
            cores_per_socket: 10,
            current_lock: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records which lock the next policy invocation serves, so
    /// policy-emitted trace records carry the lock identity.
    pub fn note_lock(&self, lock_id: u64) {
        self.current_lock
            .store(lock_id, std::sync::atomic::Ordering::Relaxed);
    }

    /// Registers a task priority visible to the `task_priority` helper —
    /// the "annotating a set of tasks" context channel of §3.1.1.
    pub fn set_task_priority(&self, tid: u64, prio: i64) {
        self.priorities.lock().insert(tid, prio);
    }

    /// Drains captured `trace_printk` output.
    pub fn take_traces(&self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.traces.lock())
    }
}

impl Default for RealEnv {
    fn default() -> Self {
        RealEnv::new()
    }
}

impl PolicyEnv for RealEnv {
    fn cpu_id(&self) -> u32 {
        locks::topo::current_cpu()
    }

    fn numa_id(&self) -> u32 {
        locks::topo::current_socket()
    }

    fn ktime_ns(&self) -> u64 {
        locks::now_ns()
    }

    fn pid(&self) -> u64 {
        locks::topo::current_tid()
    }

    fn prandom(&self) -> u64 {
        // Cheap thread-local xorshift; policies use this for probabilistic
        // fairness decisions, not cryptography.
        use std::cell::Cell;
        thread_local! {
            static STATE: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
        }
        STATE.with(|s| {
            let mut x = s.get() ^ locks::topo::current_tid();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            x
        })
    }

    fn task_priority(&self, tid: u64) -> i64 {
        self.priorities.lock().get(&tid).copied().unwrap_or(0)
    }

    fn cpu_to_node(&self, cpu: u32) -> u32 {
        cpu / self.cores_per_socket
    }

    fn trace(&self, bytes: &[u8]) {
        self.traces.lock().push(bytes.to_vec());
    }

    fn trace_emit(&self, payload: &[u8]) {
        telemetry::emit_payload(
            telemetry::EventKind::PolicyEmit,
            locks::now_ns(),
            locks::topo::current_cpu() as u16,
            self.current_lock.load(std::sync::atomic::Ordering::Relaxed),
            locks::topo::current_tid(),
            0,
            0,
            payload,
        );
    }
}

/// Environment for one hook invocation inside the simulator: the invoking
/// (virtual) CPU and the virtual clock are captured by the caller.
pub struct SimHookEnv {
    /// Invoking virtual CPU.
    pub cpu: u32,
    /// Its socket.
    pub socket: u32,
    /// Virtual time of the invocation.
    pub now_ns: u64,
    /// Invoking task id.
    pub pid: u64,
    /// Lock served by this invocation (telemetry labeling).
    pub lock_id: u64,
    /// Cores per socket (topology query).
    pub cores_per_socket: u32,
    /// Pseudo-random value for this invocation.
    pub random: u64,
    /// Priorities registered through the control plane.
    pub priorities: Arc<Mutex<std::collections::HashMap<u64, i64>>>,
    /// Simulator handle for scheduler-context queries (`cpu_online`).
    pub sim: Option<ksim::Sim>,
}

impl PolicyEnv for SimHookEnv {
    fn cpu_id(&self) -> u32 {
        self.cpu
    }

    fn numa_id(&self) -> u32 {
        self.socket
    }

    fn ktime_ns(&self) -> u64 {
        self.now_ns
    }

    fn pid(&self) -> u64 {
        self.pid
    }

    fn prandom(&self) -> u64 {
        self.random
    }

    fn task_priority(&self, tid: u64) -> i64 {
        self.priorities.lock().get(&tid).copied().unwrap_or(0)
    }

    fn cpu_to_node(&self, cpu: u32) -> u32 {
        cpu / self.cores_per_socket
    }

    fn cpu_online(&self, cpu: u32) -> bool {
        match &self.sim {
            Some(sim) if cpu < sim.topology().num_cpus() => sim.cpu_online(ksim::CpuId(cpu)),
            _ => true,
        }
    }

    fn trace_emit(&self, payload: &[u8]) {
        // Virtual-time clock domain: the captured invocation time, so DES
        // traces replay bit-identically for a fixed seed.
        telemetry::emit_payload(
            telemetry::EventKind::PolicyEmit,
            self.now_ns,
            self.cpu as u16,
            self.lock_id,
            self.pid,
            0,
            0,
            payload,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_env_reflects_thread_context() {
        locks::topo::pin_thread(23);
        let env = RealEnv::new();
        assert_eq!(env.cpu_id(), 23);
        assert_eq!(env.numa_id(), 2);
        assert_eq!(env.pid(), locks::topo::current_tid());
        assert_eq!(env.cpu_to_node(79), 7);
        let t1 = env.ktime_ns();
        let t2 = env.ktime_ns();
        assert!(t2 >= t1);
        assert_ne!(env.prandom(), env.prandom());
    }

    #[test]
    fn real_env_priorities_and_traces() {
        let env = RealEnv::new();
        env.set_task_priority(9, -3);
        assert_eq!(env.task_priority(9), -3);
        assert_eq!(env.task_priority(10), 0);
        env.trace(b"x");
        assert_eq!(env.take_traces(), vec![b"x".to_vec()]);
        assert!(env.take_traces().is_empty());
    }

    #[test]
    fn sim_env_returns_captured_values() {
        let env = SimHookEnv {
            cpu: 31,
            socket: 3,
            now_ns: 777,
            pid: 5,
            lock_id: 0,
            cores_per_socket: 10,
            random: 42,
            priorities: Arc::new(Mutex::new([(5u64, 2i64)].into_iter().collect())),
            sim: None,
        };
        assert_eq!(env.cpu_id(), 31);
        assert_eq!(env.numa_id(), 3);
        assert_eq!(env.ktime_ns(), 777);
        assert_eq!(env.prandom(), 42);
        assert_eq!(env.task_priority(5), 2);
        assert_eq!(env.cpu_to_node(65), 6);
        assert!(env.cpu_online(12), "no sim handle: always online");
    }

    #[test]
    fn sim_env_reports_preempted_cpus() {
        let sim = ksim::SimBuilder::new().build();
        sim.preempt_cpu(ksim::CpuId(7), 10_000);
        let env = SimHookEnv {
            cpu: 0,
            socket: 0,
            now_ns: 0,
            pid: 1,
            lock_id: 0,
            cores_per_socket: 10,
            random: 0,
            priorities: Arc::new(Mutex::new(Default::default())),
            sim: Some(sim),
        };
        assert!(!env.cpu_online(7));
        assert!(env.cpu_online(8));
    }
}
