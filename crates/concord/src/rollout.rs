//! Staged, crash-consistent policy rollout.
//!
//! The paper's replacement scope "can range from one lock instance to
//! every lock in the kernel" (§4) — this module is the control loop that
//! makes the large end of that range operable. A [`RolloutPlan`] splits a
//! cohort of registered locks into waves (canary → N% → full); each wave
//! is applied as one all-or-nothing livepatch transaction
//! ([`livepatch::PatchManager::apply_transaction`]) and then judged by a
//! [`HealthEvaluator`] fed from the metrics registry, the per-wave
//! circuit breakers and the watchdog's [`WindowStats`] regression
//! detector. A red verdict aborts the rollout and rolls every applied
//! wave back.
//!
//! **Crash consistency.** Every step writes an intent record to a
//! write-ahead [`RolloutLog`] *before* mutating patch state, and probes
//! of actual patch state (gen-tagged patch names) — not the log alone —
//! drive recovery. [`Rollout::recover`] rolls forward iff a
//! [`Intent::CommitIntent`] record made it to the log (every wave had
//! already passed health), and rolls back otherwise, so a controller
//! killed at *any* step boundary converges to fully-applied or
//! fully-reverted, never a mix of generations. Recovery follows the same
//! log-then-mutate discipline, so a crash during recovery re-recovers.
//!
//! **Deterministic chaos.** A seeded [`ChaosPlan`] (the `cbpf::fault`
//! injector style) kills the controller at a chosen step boundary; the
//! [`chaos::crash_sweep`] harness re-runs a scenario once per reachable
//! step and asserts convergence after recovery. See DESIGN.md §4.7 for
//! the state machine and the intent-log schema.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cbpf::fault::FaultInjector;
use locks::hooks::HookKind;
use parking_lot::Mutex;
use simlocks::policy::SimPolicy;
use simlocks::SimShflLock;

use crate::containment::{Breaker, BreakerConfig};
use crate::policy::BytecodePolicy;
use crate::watchdog::{detect, WatchdogConfig, WindowStats};
use crate::workflow::{Concord, LoadedPolicy};

/// Shared map of per-lock breakers a rollout installs — the health
/// evaluator reads fault/trip deltas out of it.
pub type BreakerMap = Arc<Mutex<BTreeMap<String, Arc<Breaker>>>>;

// ---------------------------------------------------------------------------
// Intent log

/// One write-ahead record. The log is append-only; the tail never
/// rewrites history, so any prefix is a valid crash state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Intent {
    /// A rollout began: the full plan is durable before any wave runs.
    PlanStart {
        /// Rollout generation (tags every patch name).
        generation: u64,
        /// Loaded policy name.
        policy: String,
        /// Target hook.
        hook: HookKind,
        /// Cohorts, canary first.
        waves: Vec<Vec<String>>,
    },
    /// About to apply wave `wave` (mutation may or may not have happened
    /// if this is the last record).
    WaveApplyIntent {
        /// Wave index.
        wave: usize,
    },
    /// Wave `wave`'s transaction committed to patch state.
    WaveApplied {
        /// Wave index.
        wave: usize,
    },
    /// Wave `wave` passed its health gate.
    WaveHealthy {
        /// Wave index.
        wave: usize,
    },
    /// Every wave passed health; the rollout will finish as applied.
    CommitIntent,
    /// Terminal: fully applied.
    Committed,
    /// Red health (or an operator abort): the rollout will finish as
    /// reverted.
    AbortIntent {
        /// Why.
        reason: String,
    },
    /// About to revert wave `wave`.
    WaveRevertIntent {
        /// Wave index.
        wave: usize,
    },
    /// Wave `wave`'s patches are gone.
    WaveReverted {
        /// Wave index.
        wave: usize,
    },
    /// Terminal: fully reverted.
    Aborted,
}

impl Intent {
    /// Stable discriminant (telemetry `c` field, DESIGN.md §4.7 schema).
    pub fn discriminant(&self) -> u64 {
        match self {
            Intent::PlanStart { .. } => 1,
            Intent::WaveApplyIntent { .. } => 2,
            Intent::WaveApplied { .. } => 3,
            Intent::WaveHealthy { .. } => 4,
            Intent::CommitIntent => 5,
            Intent::Committed => 6,
            Intent::AbortIntent { .. } => 7,
            Intent::WaveRevertIntent { .. } => 8,
            Intent::WaveReverted { .. } => 9,
            Intent::Aborted => 10,
        }
    }

    /// Wave index, for wave-scoped records.
    pub fn wave(&self) -> Option<usize> {
        match self {
            Intent::WaveApplyIntent { wave }
            | Intent::WaveApplied { wave }
            | Intent::WaveHealthy { wave }
            | Intent::WaveRevertIntent { wave }
            | Intent::WaveReverted { wave } => Some(*wave),
            _ => None,
        }
    }
}

impl fmt::Display for Intent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intent::PlanStart {
                generation,
                policy,
                hook,
                waves,
            } => write!(
                f,
                "plan-start gen={generation} policy={policy} hook={} waves={}",
                hook.name(),
                waves.len()
            ),
            Intent::WaveApplyIntent { wave } => write!(f, "wave-apply-intent {wave}"),
            Intent::WaveApplied { wave } => write!(f, "wave-applied {wave}"),
            Intent::WaveHealthy { wave } => write!(f, "wave-healthy {wave}"),
            Intent::CommitIntent => write!(f, "commit-intent"),
            Intent::Committed => write!(f, "committed"),
            Intent::AbortIntent { reason } => write!(f, "abort-intent: {reason}"),
            Intent::WaveRevertIntent { wave } => write!(f, "wave-revert-intent {wave}"),
            Intent::WaveReverted { wave } => write!(f, "wave-reverted {wave}"),
            Intent::Aborted => write!(f, "aborted"),
        }
    }
}

/// The write-ahead rollout log. Models the durable side of the control
/// plane: it survives the controller's death (clones share one record
/// vector), while the controller itself keeps **no** state outside it —
/// every decision re-derives from the log plus patch-state probes.
#[derive(Clone, Default)]
pub struct RolloutLog {
    inner: Arc<Mutex<Vec<Intent>>>,
    generation: Arc<AtomicU64>,
}

impl RolloutLog {
    /// An empty log.
    pub fn new() -> Self {
        RolloutLog::default()
    }

    /// Appends a record (the write-ahead step) and emits the
    /// `rollout_step` trace event.
    pub fn append(&self, record: Intent) {
        let len;
        {
            let mut records = self.inner.lock();
            if let Intent::PlanStart { generation, .. } = &record {
                self.generation.store(*generation, Ordering::Relaxed);
            }
            records.push(record.clone());
            len = records.len() as u64;
        }
        telemetry::metrics()
            .counter("c3_rollout_log_records_total")
            .inc();
        if telemetry::armed() {
            telemetry::emit(
                telemetry::EventKind::RolloutStep,
                telemetry::clock::now_ns(),
                0,
                self.generation.load(Ordering::Relaxed),
                record.wave().map_or(u64::MAX, |w| w as u64),
                record.discriminant(),
                len,
            );
        }
    }

    /// A snapshot of all records, oldest first.
    pub fn records(&self) -> Vec<Intent> {
        self.inner.lock().clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing was ever logged.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Order-sensitive FNV-1a fold over every record — the replay
    /// fingerprint the chaos tests compare for bit-identical runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u64| {
            h ^= byte;
            h = h.wrapping_mul(0x1_0000_01b3);
        };
        for rec in self.inner.lock().iter() {
            mix(rec.discriminant());
            mix(rec.wave().map_or(u64::MAX, |w| w as u64));
            match rec {
                Intent::PlanStart {
                    generation,
                    policy,
                    hook,
                    waves,
                } => {
                    mix(*generation);
                    mix(u64::from(hook.bit()));
                    for b in policy.bytes() {
                        mix(u64::from(b));
                    }
                    for wave in waves {
                        mix(wave.len() as u64);
                        for lock in wave {
                            for b in lock.bytes() {
                                mix(u64::from(b));
                            }
                        }
                    }
                }
                Intent::AbortIntent { reason } => {
                    for b in reason.bytes() {
                        mix(u64::from(b));
                    }
                }
                _ => {}
            }
        }
        h
    }

    fn view(&self) -> LogView {
        let records = self.inner.lock();
        let mut v = LogView::default();
        for rec in records.iter() {
            match rec {
                Intent::PlanStart {
                    generation,
                    policy,
                    hook,
                    waves,
                } => {
                    v.plan = Some(PlanView {
                        generation: *generation,
                        policy: policy.clone(),
                        hook: *hook,
                        waves: waves.clone(),
                    });
                }
                Intent::WaveApplied { wave } => {
                    v.applied_waves.insert(*wave);
                }
                Intent::WaveHealthy { .. } => v.healthy_waves += 1,
                Intent::CommitIntent => v.commit_intent = true,
                Intent::Committed => v.committed = true,
                Intent::AbortIntent { reason } if v.abort_reason.is_none() => {
                    v.abort_reason = Some(reason.clone());
                }
                Intent::Aborted => v.aborted = true,
                _ => {}
            }
        }
        v.records = records.len();
        v
    }
}

/// The plan as recovered from the log.
#[derive(Clone, Debug)]
struct PlanView {
    generation: u64,
    policy: String,
    hook: HookKind,
    waves: Vec<Vec<String>>,
}

#[derive(Default)]
struct LogView {
    plan: Option<PlanView>,
    applied_waves: BTreeSet<usize>,
    healthy_waves: usize,
    commit_intent: bool,
    committed: bool,
    abort_reason: Option<String>,
    aborted: bool,
    records: usize,
}

impl LogView {
    fn terminal(&self) -> bool {
        self.committed || self.aborted
    }
}

// ---------------------------------------------------------------------------
// Plan

/// A generation-numbered staged delivery plan.
#[derive(Clone, Debug)]
pub struct RolloutPlan {
    /// Generation number; tags every patch this rollout applies
    /// (`rollout-g{generation}:{lock}/{hook}`), so recovery can probe
    /// which patches belong to it by name.
    pub generation: u64,
    /// Loaded policy name (for the log and `c3ctl rollout status`).
    pub policy: String,
    /// Target hook.
    pub hook: HookKind,
    /// Cohorts in apply order; the first is the canary.
    pub waves: Vec<Vec<String>>,
}

impl RolloutPlan {
    /// Splits `locks` into a canary (the first instance) followed by
    /// cumulative percentage waves and a final wave with the remainder.
    /// `wave_pcts` are cumulative targets: `&[10, 50]` over 20 locks
    /// yields waves of 1 (canary), 1 (to 10%), 8 (to 50%) and 10 (rest).
    pub fn staged(
        generation: u64,
        policy: &str,
        hook: HookKind,
        locks: &[String],
        wave_pcts: &[u32],
    ) -> Self {
        let total = locks.len();
        let mut waves = Vec::new();
        let mut taken = 0usize;
        if total > 0 {
            waves.push(vec![locks[0].clone()]);
            taken = 1;
        }
        for pct in wave_pcts {
            let target = (total * (*pct as usize)).div_ceil(100).clamp(taken, total);
            if target > taken {
                waves.push(locks[taken..target].to_vec());
                taken = target;
            }
        }
        if taken < total {
            waves.push(locks[taken..].to_vec());
        }
        RolloutPlan {
            generation,
            policy: policy.to_string(),
            hook,
            waves,
        }
    }

    /// Total instances across all waves.
    pub fn total_locks(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }
}

// ---------------------------------------------------------------------------
// Errors / outcomes

/// Controller failures. [`RolloutError::Crashed`] models the process
/// dying at a chaos-chosen step boundary — the log and patch state
/// survive; everything in the controller's head is lost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RolloutError {
    /// The chaos injector killed the controller at this step.
    Crashed(u64),
    /// The requested operation does not fit the log's current state.
    BadState(String),
    /// A target mutation failed in a way the controller cannot unwind
    /// by itself (recovery should be re-run).
    Target(String),
}

impl fmt::Display for RolloutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutError::Crashed(step) => write!(f, "controller crashed at step {step}"),
            RolloutError::BadState(m) => write!(f, "bad rollout state: {m}"),
            RolloutError::Target(m) => write!(f, "rollout target error: {m}"),
        }
    }
}

impl std::error::Error for RolloutError {}

/// Terminal outcome of a rollout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RolloutOutcome {
    /// All waves applied and healthy.
    Committed,
    /// Rolled back; the reason of the first abort intent.
    Aborted(String),
}

/// Outcome of one stepwise advance ([`Rollout::start`] /
/// [`Rollout::promote`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaveOutcome {
    /// The wave applied and passed health; more waves remain.
    WaveHealthy {
        /// Wave index just promoted.
        wave: usize,
        /// Waves still to go.
        remaining: usize,
    },
    /// The final wave passed health and the rollout committed.
    Committed,
    /// Red health or an apply failure rolled everything back.
    Aborted(String),
}

/// What [`Rollout::recover`] found and did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoverOutcome {
    /// The log was empty: nothing to recover.
    NoRollout,
    /// The log already ended in a terminal record.
    AlreadyTerminal(RolloutOutcome),
    /// A commit intent was durable: stragglers applied, now committed.
    RolledForward,
    /// No commit intent: applied waves reverted, now aborted.
    RolledBack,
}

// ---------------------------------------------------------------------------
// Chaos injection

/// Seeded crash schedule, in the style of [`cbpf::fault::FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed: drives derived randomness ([`ChaosInjector::rng`]) so wave
    /// splits, fault schedules and health scripts built from one plan
    /// replay bit-identically.
    pub seed: u64,
    /// Kill the controller when the step counter reaches this boundary.
    pub crash_at_step: Option<u64>,
}

impl ChaosPlan {
    /// Never crashes (but still seeds derived randomness).
    pub fn inert(seed: u64) -> Self {
        ChaosPlan {
            seed,
            crash_at_step: None,
        }
    }

    /// Crashes at step `step` (0-based boundary count).
    pub fn crash_at(seed: u64, step: u64) -> Self {
        ChaosPlan {
            seed,
            crash_at_step: Some(step),
        }
    }
}

/// Executes a [`ChaosPlan`]: counts step boundaries and kills the
/// controller at the planned one.
pub struct ChaosInjector {
    plan: ChaosPlan,
    steps: AtomicU64,
}

impl ChaosInjector {
    /// Arms a plan.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosInjector {
            plan,
            steps: AtomicU64::new(0),
        }
    }

    /// An injector that never fires.
    pub fn inert() -> Self {
        ChaosInjector::new(ChaosPlan::inert(0))
    }

    /// The armed plan.
    pub fn plan(&self) -> ChaosPlan {
        self.plan
    }

    /// A step boundary: the controller calls this after every log append
    /// and after every patch-state mutation. Returns
    /// [`RolloutError::Crashed`] when the plan says to die here.
    ///
    /// # Errors
    ///
    /// [`RolloutError::Crashed`] at the planned step.
    pub fn barrier(&self) -> Result<(), RolloutError> {
        let step = self.steps.fetch_add(1, Ordering::Relaxed);
        if self.plan.crash_at_step == Some(step) {
            telemetry::metrics()
                .counter("c3_rollout_chaos_crashes_total")
                .inc();
            return Err(RolloutError::Crashed(step));
        }
        Ok(())
    }

    /// Step boundaries crossed so far (the sweep uses the inert run's
    /// count as the crash-point space).
    pub fn steps_taken(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Deterministic derived randomness: a splitmix64 finalize over
    /// `(seed, salt)`, so adjacent seeds never collide.
    pub fn rng(&self, salt: u64) -> u64 {
        let mut x = self
            .plan
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

// ---------------------------------------------------------------------------
// Health

/// A wave health verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Promote.
    Green,
    /// Abort and roll back everything; the reason lands in the log.
    Red(String),
}

/// Judges a wave. `baseline` runs before the wave's transaction applies;
/// `judge` runs after — the implementation owns whatever observation
/// (driving load, sleeping, sampling) happens in between.
pub trait HealthEvaluator {
    /// Snapshot pre-wave state.
    fn baseline(&mut self, wave: usize, locks: &[String]);
    /// Judge the wave against the snapshot.
    fn judge(&mut self, wave: usize, locks: &[String]) -> HealthVerdict;
}

/// Health that always promotes (plain `c3ctl` operation, tests).
#[derive(Default)]
pub struct AlwaysGreen;

impl HealthEvaluator for AlwaysGreen {
    fn baseline(&mut self, _wave: usize, _locks: &[String]) {}
    fn judge(&mut self, _wave: usize, _locks: &[String]) -> HealthVerdict {
        HealthVerdict::Green
    }
}

/// Scripted per-wave verdicts (chaos and model tests); waves beyond the
/// script are green.
pub struct ScriptedHealth {
    verdicts: Vec<HealthVerdict>,
    next: usize,
}

impl ScriptedHealth {
    /// Judges wave `i` with `verdicts[i]`.
    pub fn new(verdicts: Vec<HealthVerdict>) -> Self {
        ScriptedHealth { verdicts, next: 0 }
    }
}

impl HealthEvaluator for ScriptedHealth {
    fn baseline(&mut self, _wave: usize, _locks: &[String]) {}
    fn judge(&mut self, _wave: usize, _locks: &[String]) -> HealthVerdict {
        let v = self
            .verdicts
            .get(self.next)
            .cloned()
            .unwrap_or(HealthVerdict::Green);
        self.next += 1;
        v
    }
}

/// Thresholds for [`MetricsHealth`]. The default tolerates nothing:
/// zero faults, zero trips, the watchdog's default regression bounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct HealthConfig {
    /// Policy faults tolerated per wave (sum over the wave's breakers)
    /// before the verdict goes red.
    pub max_wave_faults: u64,
    /// Breaker trips tolerated per wave (delta of the registry-wide
    /// `c3_breaker_trips_total` counter).
    pub max_breaker_trips: u64,
    /// Hold/wait regression thresholds, judged per lock with
    /// [`detect`] against the pre-wave window.
    pub watchdog: WatchdogConfig,
}

/// Sampler of a lock's current observation window (profiler- or
/// sim-histogram-backed).
pub type WindowSampler = Box<dyn FnMut(&str) -> Option<WindowStats>>;

/// Traffic driver run before judging a wave, so health gates see real
/// invocations (`(wave, locks)`).
pub type WaveExercise = Box<dyn FnMut(usize, &[String])>;

/// The production evaluator: fault rate from the wave's breakers, trip
/// rate from the metrics registry, hold-time regression from pre-wave
/// [`WindowStats`] baselines.
pub struct MetricsHealth {
    cfg: HealthConfig,
    breakers: BreakerMap,
    sampler: Option<WindowSampler>,
    exercise: Option<WaveExercise>,
    base_faults: u64,
    base_trips: u64,
    base_windows: BTreeMap<String, WindowStats>,
}

impl MetricsHealth {
    /// An evaluator over the rollout's breaker map.
    pub fn new(cfg: HealthConfig, breakers: BreakerMap) -> Self {
        MetricsHealth {
            cfg,
            breakers,
            sampler: None,
            exercise: None,
            base_faults: 0,
            base_trips: 0,
            base_windows: BTreeMap::new(),
        }
    }

    /// Adds a per-lock window sampler for regression detection.
    pub fn with_window_sampler(mut self, sampler: WindowSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Adds a closure that drives representative load on the wave's
    /// locks between apply and judgment (tests; production judges
    /// organically arriving traffic).
    pub fn with_exercise(mut self, exercise: impl FnMut(usize, &[String]) + 'static) -> Self {
        self.exercise = Some(Box::new(exercise));
        self
    }

    fn wave_faults(&self, locks: &[String]) -> u64 {
        let map = self.breakers.lock();
        locks
            .iter()
            .filter_map(|l| map.get(l))
            .map(|b| b.total_faults())
            .sum()
    }
}

impl HealthEvaluator for MetricsHealth {
    fn baseline(&mut self, _wave: usize, locks: &[String]) {
        self.base_faults = self.wave_faults(locks);
        self.base_trips = telemetry::metrics().counter("c3_breaker_trips_total").get();
        self.base_windows.clear();
        if let Some(sampler) = &mut self.sampler {
            for lock in locks {
                if let Some(w) = sampler(lock) {
                    self.base_windows.insert(lock.clone(), w);
                }
            }
        }
    }

    fn judge(&mut self, wave: usize, locks: &[String]) -> HealthVerdict {
        if let Some(exercise) = &mut self.exercise {
            exercise(wave, locks);
        }
        let faults = self.wave_faults(locks).saturating_sub(self.base_faults);
        if faults > self.cfg.max_wave_faults {
            return HealthVerdict::Red(format!(
                "wave {wave}: {faults} policy faults (budget {})",
                self.cfg.max_wave_faults
            ));
        }
        let trips = telemetry::metrics()
            .counter("c3_breaker_trips_total")
            .get()
            .saturating_sub(self.base_trips);
        if trips > self.cfg.max_breaker_trips {
            return HealthVerdict::Red(format!(
                "wave {wave}: {trips} breaker trips (budget {})",
                self.cfg.max_breaker_trips
            ));
        }
        if let Some(sampler) = &mut self.sampler {
            for lock in locks {
                let (Some(base), Some(cur)) = (self.base_windows.get(lock), sampler(lock)) else {
                    continue;
                };
                if let Some(report) = detect(base, &cur, &self.cfg.watchdog) {
                    return HealthVerdict::Red(format!("wave {wave}: {lock}: {}", report.detail));
                }
            }
        }
        HealthVerdict::Green
    }
}

// ---------------------------------------------------------------------------
// Targets

/// What a rollout mutates. Implementations must make `apply_locks`
/// all-or-nothing and `revert_locks`/`applied_locks` idempotent probes of
/// *actual* state — recovery trusts them over the log's tail.
pub trait RolloutTarget {
    /// Applies the rollout's policy (gen-tagged) to every lock, or to
    /// none of them.
    ///
    /// # Errors
    ///
    /// A human-readable cause; the target must be unchanged.
    fn apply_locks(&self, generation: u64, locks: &[String]) -> Result<(), String>;

    /// Which of `locks` currently carry this generation's patch.
    fn applied_locks(&self, generation: u64, locks: &[String]) -> Vec<String>;

    /// Removes this generation's patch from each of `locks` that has it.
    ///
    /// # Errors
    ///
    /// A human-readable cause; already-clean locks are not an error.
    fn revert_locks(&self, generation: u64, locks: &[String]) -> Result<(), String>;
}

fn rollout_patch_name(generation: u64, lock: &str, hook: HookKind) -> String {
    format!("rollout-g{generation}:{lock}/{}", hook.name())
}

/// [`RolloutTarget`] over a real [`Concord`]: waves go through
/// `apply_transaction` on the livepatch stack, each lock wrapped in a
/// fresh circuit breaker registered in the shared [`BreakerMap`].
pub struct RealTarget<'a> {
    concord: &'a Concord,
    policy: LoadedPolicy,
    breaker_cfg: BreakerConfig,
    injector: Option<Arc<FaultInjector>>,
    breakers: BreakerMap,
}

impl<'a> RealTarget<'a> {
    /// A target delivering `policy` with per-lock breakers.
    pub fn new(concord: &'a Concord, policy: LoadedPolicy, breaker_cfg: BreakerConfig) -> Self {
        RealTarget {
            concord,
            policy,
            breaker_cfg,
            injector: None,
            breakers: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Arms a deterministic fault injector on every wave policy (chaos
    /// harness).
    pub fn with_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Reuses an existing breaker map (so `c3ctl` can keep one across
    /// commands).
    pub fn with_breakers(mut self, breakers: BreakerMap) -> Self {
        self.breakers = breakers;
        self
    }

    /// The shared breaker map (feed it to [`MetricsHealth`]).
    pub fn breakers(&self) -> BreakerMap {
        Arc::clone(&self.breakers)
    }
}

impl RolloutTarget for RealTarget<'_> {
    fn apply_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
        let prefix = format!("rollout-g{generation}:");
        let staged: RefCell<Vec<(String, Arc<Breaker>)>> = RefCell::new(Vec::new());
        let result = self.concord.patch_manager().apply_transaction(
            locks.iter().map(|lock| {
                let breaker = Arc::new(Breaker::new(self.breaker_cfg));
                breaker.set_tag(
                    telemetry::event::fnv64(lock),
                    u64::from(self.policy.hook.bit()),
                );
                let bytecode = BytecodePolicy::contained(
                    self.policy.prog.clone(),
                    self.policy.hook,
                    Arc::clone(self.concord.env()),
                    Some(Arc::clone(&breaker)),
                    self.injector.clone(),
                );
                let patch = self.concord.build_bytecode_patch(
                    lock,
                    self.policy.hook,
                    &bytecode,
                    Some(&prefix),
                )?;
                staged.borrow_mut().push((lock.clone(), breaker));
                Ok::<_, crate::workflow::ConcordError>(patch)
            }),
        );
        match result {
            Ok(_handles) => {
                let mut map = self.breakers.lock();
                for (lock, breaker) in staged.into_inner() {
                    map.insert(lock, breaker);
                }
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    fn applied_locks(&self, generation: u64, locks: &[String]) -> Vec<String> {
        let mgr = self.concord.patch_manager();
        locks
            .iter()
            .filter(|lock| {
                mgr.find(&rollout_patch_name(generation, lock, self.policy.hook))
                    .is_some()
            })
            .cloned()
            .collect()
    }

    fn revert_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
        let mgr = self.concord.patch_manager();
        for lock in locks {
            if let Some(handle) = mgr.find(&rollout_patch_name(generation, lock, self.policy.hook))
            {
                mgr.revert_transaction(handle).map_err(|e| e.to_string())?;
                self.breakers.lock().remove(lock);
            }
        }
        Ok(())
    }
}

/// [`RolloutTarget`] over simulated locks: `set_policy` swaps in virtual
/// time, with the previous policy saved for revert. Apply failures can
/// be scripted per lock to exercise the unwind path.
pub struct SimTarget {
    locks: BTreeMap<String, Rc<SimShflLock>>,
    make_policy: SimPolicyFactory,
    applied: RefCell<AppliedSimPolicies>,
    fail_locks: RefCell<BTreeSet<String>>,
}

/// Builds the per-lock policy a [`SimTarget`] installs.
pub type SimPolicyFactory = Box<dyn Fn(&str) -> Rc<dyn SimPolicy>>;

/// Lock name → (generation, the policy it displaced).
type AppliedSimPolicies = BTreeMap<String, (u64, Rc<dyn SimPolicy>)>;

impl SimTarget {
    /// A target over named sim locks; `make_policy` builds the per-lock
    /// policy to install (typically a `ContainedPolicy` wrapper).
    pub fn new(
        locks: Vec<(String, Rc<SimShflLock>)>,
        make_policy: impl Fn(&str) -> Rc<dyn SimPolicy> + 'static,
    ) -> Self {
        SimTarget {
            locks: locks.into_iter().collect(),
            make_policy: Box::new(make_policy),
            applied: RefCell::new(BTreeMap::new()),
            fail_locks: RefCell::new(BTreeSet::new()),
        }
    }

    /// Scripts an apply failure on `lock` — the wave containing it
    /// unwinds and the rollout aborts.
    pub fn fail_apply_on(&self, lock: &str) {
        self.fail_locks.borrow_mut().insert(lock.to_string());
    }

    /// Locks currently carrying a rollout policy (any generation).
    pub fn applied_count(&self) -> usize {
        self.applied.borrow().len()
    }
}

impl RolloutTarget for SimTarget {
    fn apply_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
        let mut done: Vec<String> = Vec::new();
        for name in locks {
            if self.fail_locks.borrow().contains(name) {
                // Unwind this call's applies, newest first — the sim
                // analog of the livepatch transaction unwinding.
                for prev in done.iter().rev() {
                    if let Some((_, saved)) = self.applied.borrow_mut().remove(prev) {
                        self.locks[prev].set_policy(saved);
                    }
                }
                return Err(format!("injected apply failure on {name}"));
            }
            let lock = self
                .locks
                .get(name)
                .ok_or_else(|| format!("unknown sim lock {name}"))?;
            let saved = lock.policy();
            lock.set_policy((self.make_policy)(name));
            self.applied
                .borrow_mut()
                .insert(name.clone(), (generation, saved));
            done.push(name.clone());
        }
        Ok(())
    }

    fn applied_locks(&self, generation: u64, locks: &[String]) -> Vec<String> {
        let applied = self.applied.borrow();
        locks
            .iter()
            .filter(|n| applied.get(*n).is_some_and(|(g, _)| *g == generation))
            .cloned()
            .collect()
    }

    fn revert_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
        for name in locks {
            let entry = {
                let mut applied = self.applied.borrow_mut();
                match applied.get(name) {
                    Some((g, _)) if *g == generation => applied.remove(name),
                    _ => None,
                }
            };
            if let Some((_, saved)) = entry {
                self.locks[name].set_policy(saved);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Controller

/// The rollout controller. All functions are stateless over
/// (log, target): the log plus patch-state probes *are* the state, which
/// is what makes a controller death at any barrier recoverable.
pub struct Rollout;

impl Rollout {
    /// Begins a rollout: logs the plan and applies + judges the canary
    /// wave.
    ///
    /// # Errors
    ///
    /// [`RolloutError::BadState`] when a rollout is already in flight on
    /// this log; [`RolloutError::Crashed`] from chaos.
    pub fn start<T: RolloutTarget + ?Sized, H: HealthEvaluator + ?Sized>(
        plan: RolloutPlan,
        log: &RolloutLog,
        target: &T,
        health: &mut H,
        chaos: &ChaosInjector,
    ) -> Result<WaveOutcome, RolloutError> {
        let view = log.view();
        if view.plan.is_some() && !view.terminal() {
            return Err(RolloutError::BadState(
                "a rollout is already in progress (recover or abort it first)".into(),
            ));
        }
        if plan.total_locks() == 0 {
            return Err(RolloutError::BadState("plan has no locks".into()));
        }
        telemetry::metrics().counter("c3_rollout_started_total").inc();
        chaos.barrier()?;
        log.append(Intent::PlanStart {
            generation: plan.generation,
            policy: plan.policy.clone(),
            hook: plan.hook,
            waves: plan.waves.clone(),
        });
        chaos.barrier()?;
        Self::advance(log, target, health, chaos)
    }

    /// Applies + judges the next wave, or commits when every wave is
    /// healthy.
    ///
    /// # Errors
    ///
    /// [`RolloutError::BadState`] without an in-flight rollout (or with
    /// one that needs recovery); [`RolloutError::Crashed`] from chaos.
    pub fn promote<T: RolloutTarget + ?Sized, H: HealthEvaluator + ?Sized>(
        log: &RolloutLog,
        target: &T,
        health: &mut H,
        chaos: &ChaosInjector,
    ) -> Result<WaveOutcome, RolloutError> {
        let view = log.view();
        let Some(plan) = view.plan.as_ref() else {
            return Err(RolloutError::BadState("no rollout in this log".into()));
        };
        if view.terminal() {
            return Err(RolloutError::BadState("rollout already finished".into()));
        }
        if view.abort_reason.is_some() {
            return Err(RolloutError::BadState(
                "rollout is aborting; run `rollout recover`".into(),
            ));
        }
        if view.commit_intent || view.healthy_waves >= plan.waves.len() {
            return Self::commit(&view, log, chaos);
        }
        Self::advance(log, target, health, chaos)
    }

    /// Runs the whole plan to a terminal outcome.
    ///
    /// # Errors
    ///
    /// See [`Rollout::start`] / [`Rollout::promote`].
    pub fn run<T: RolloutTarget + ?Sized, H: HealthEvaluator + ?Sized>(
        plan: RolloutPlan,
        log: &RolloutLog,
        target: &T,
        health: &mut H,
        chaos: &ChaosInjector,
    ) -> Result<RolloutOutcome, RolloutError> {
        let mut outcome = Self::start(plan, log, target, health, chaos)?;
        loop {
            match outcome {
                WaveOutcome::Committed => return Ok(RolloutOutcome::Committed),
                WaveOutcome::Aborted(reason) => return Ok(RolloutOutcome::Aborted(reason)),
                WaveOutcome::WaveHealthy { .. } => {
                    outcome = Self::promote(log, target, health, chaos)?;
                }
            }
        }
    }

    /// Operator abort: rolls back every applied wave.
    ///
    /// # Errors
    ///
    /// [`RolloutError::BadState`] without an in-flight rollout;
    /// [`RolloutError::Crashed`] from chaos.
    pub fn abort<T: RolloutTarget + ?Sized>(
        reason: &str,
        log: &RolloutLog,
        target: &T,
        chaos: &ChaosInjector,
    ) -> Result<RolloutOutcome, RolloutError> {
        let view = log.view();
        if view.plan.is_none() {
            return Err(RolloutError::BadState("no rollout in this log".into()));
        }
        if view.terminal() {
            return Err(RolloutError::BadState("rollout already finished".into()));
        }
        Self::abort_inner(reason.to_string(), log, target, chaos)?;
        Ok(RolloutOutcome::Aborted(reason.to_string()))
    }

    /// Replays the log after a crash and converges the target: rolls
    /// *forward* iff a [`Intent::CommitIntent`] is durable (all waves had
    /// passed health), rolls *back* otherwise. Idempotent: crashing
    /// during recovery and recovering again still converges, because
    /// every decision probes actual patch state.
    ///
    /// # Errors
    ///
    /// [`RolloutError::Crashed`] from chaos; [`RolloutError::Target`]
    /// when the target refuses a mutation (re-run recovery).
    pub fn recover<T: RolloutTarget + ?Sized>(
        log: &RolloutLog,
        target: &T,
        chaos: &ChaosInjector,
    ) -> Result<RecoverOutcome, RolloutError> {
        let view = log.view();
        let Some(plan) = view.plan.clone() else {
            return Ok(RecoverOutcome::NoRollout);
        };
        if view.committed {
            return Ok(RecoverOutcome::AlreadyTerminal(RolloutOutcome::Committed));
        }
        if view.aborted {
            return Ok(RecoverOutcome::AlreadyTerminal(RolloutOutcome::Aborted(
                view.abort_reason.unwrap_or_else(|| "aborted".into()),
            )));
        }
        telemetry::metrics()
            .counter("c3_rollout_recoveries_total")
            .inc();
        if view.commit_intent {
            // Roll forward: every wave already passed its health gate;
            // finish applying whatever the crash interrupted.
            for (wave, locks) in plan.waves.iter().enumerate() {
                let present: BTreeSet<String> = target
                    .applied_locks(plan.generation, locks)
                    .into_iter()
                    .collect();
                let missing: Vec<String> = locks
                    .iter()
                    .filter(|l| !present.contains(*l))
                    .cloned()
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                log.append(Intent::WaveApplyIntent { wave });
                chaos.barrier()?;
                target
                    .apply_locks(plan.generation, &missing)
                    .map_err(RolloutError::Target)?;
                chaos.barrier()?;
                log.append(Intent::WaveApplied { wave });
                chaos.barrier()?;
            }
            log.append(Intent::Committed);
            chaos.barrier()?;
            telemetry::metrics().counter("c3_rollout_commits_total").inc();
            Ok(RecoverOutcome::RolledForward)
        } else {
            if view.abort_reason.is_none() {
                telemetry::metrics().counter("c3_rollout_aborts_total").inc();
                log.append(Intent::AbortIntent {
                    reason: "crash recovery rollback".into(),
                });
                chaos.barrier()?;
            }
            Self::rollback_waves(&plan, log, target, chaos)?;
            log.append(Intent::Aborted);
            chaos.barrier()?;
            Ok(RecoverOutcome::RolledBack)
        }
    }

    /// Human-readable state summary for `c3ctl rollout status`.
    pub fn status(log: &RolloutLog) -> RolloutStatus {
        let view = log.view();
        let Some(plan) = view.plan.as_ref() else {
            return RolloutStatus {
                generation: 0,
                policy: String::new(),
                hook: None,
                waves_total: 0,
                waves_healthy: 0,
                records: view.records,
                state: "idle".into(),
            };
        };
        let state = if view.committed {
            "committed".to_string()
        } else if view.aborted {
            format!(
                "aborted: {}",
                view.abort_reason.as_deref().unwrap_or("(no reason)")
            )
        } else if view.abort_reason.is_some() {
            "aborting (run `rollout recover` to finish)".into()
        } else if view.commit_intent {
            "committing (run `rollout recover` to finish)".into()
        } else if view.healthy_waves >= plan.waves.len() {
            "all waves healthy (promote to commit)".into()
        } else {
            format!(
                "wave {}/{} (promote to continue)",
                view.healthy_waves,
                plan.waves.len()
            )
        };
        RolloutStatus {
            generation: plan.generation,
            policy: plan.policy.clone(),
            hook: Some(plan.hook),
            waves_total: plan.waves.len(),
            waves_healthy: view.healthy_waves,
            records: view.records,
            state,
        }
    }

    fn advance<T: RolloutTarget + ?Sized, H: HealthEvaluator + ?Sized>(
        log: &RolloutLog,
        target: &T,
        health: &mut H,
        chaos: &ChaosInjector,
    ) -> Result<WaveOutcome, RolloutError> {
        let view = log.view();
        let plan = view
            .plan
            .clone()
            .ok_or_else(|| RolloutError::BadState("no rollout in this log".into()))?;
        let wave = view.healthy_waves;
        let locks = plan.waves[wave].clone();
        log.append(Intent::WaveApplyIntent { wave });
        chaos.barrier()?;
        health.baseline(wave, &locks);
        match target.apply_locks(plan.generation, &locks) {
            Ok(()) => {
                chaos.barrier()?;
                log.append(Intent::WaveApplied { wave });
                chaos.barrier()?;
                telemetry::metrics()
                    .counter("c3_rollout_waves_applied_total")
                    .inc();
                match health.judge(wave, &locks) {
                    HealthVerdict::Green => {
                        Self::emit_health(plan.generation, wave, None);
                        log.append(Intent::WaveHealthy { wave });
                        chaos.barrier()?;
                        if wave + 1 >= plan.waves.len() {
                            let view = log.view();
                            Self::commit(&view, log, chaos)
                        } else {
                            Ok(WaveOutcome::WaveHealthy {
                                wave,
                                remaining: plan.waves.len() - wave - 1,
                            })
                        }
                    }
                    HealthVerdict::Red(reason) => {
                        Self::emit_health(plan.generation, wave, Some(&reason));
                        Self::abort_inner(reason.clone(), log, target, chaos)?;
                        Ok(WaveOutcome::Aborted(reason))
                    }
                }
            }
            Err(msg) => {
                // The wave's transaction unwound; nothing from this wave
                // is live. Earlier waves still are — roll them back.
                chaos.barrier()?;
                let reason = format!("wave {wave} apply failed: {msg}");
                Self::abort_inner(reason.clone(), log, target, chaos)?;
                Ok(WaveOutcome::Aborted(reason))
            }
        }
    }

    fn commit(
        view: &LogView,
        log: &RolloutLog,
        chaos: &ChaosInjector,
    ) -> Result<WaveOutcome, RolloutError> {
        if !view.commit_intent {
            log.append(Intent::CommitIntent);
            chaos.barrier()?;
        }
        log.append(Intent::Committed);
        chaos.barrier()?;
        telemetry::metrics().counter("c3_rollout_commits_total").inc();
        Ok(WaveOutcome::Committed)
    }

    fn abort_inner<T: RolloutTarget + ?Sized>(
        reason: String,
        log: &RolloutLog,
        target: &T,
        chaos: &ChaosInjector,
    ) -> Result<(), RolloutError> {
        telemetry::metrics().counter("c3_rollout_aborts_total").inc();
        log.append(Intent::AbortIntent { reason });
        chaos.barrier()?;
        let plan = log
            .view()
            .plan
            .ok_or_else(|| RolloutError::BadState("abort without a plan".into()))?;
        Self::rollback_waves(&plan, log, target, chaos)?;
        log.append(Intent::Aborted);
        chaos.barrier()?;
        Ok(())
    }

    /// Reverts every wave that still has this generation's patches,
    /// newest wave first, probing actual state per wave so the pass is
    /// idempotent across crash/recover cycles.
    fn rollback_waves<T: RolloutTarget + ?Sized>(
        plan: &PlanView,
        log: &RolloutLog,
        target: &T,
        chaos: &ChaosInjector,
    ) -> Result<(), RolloutError> {
        for wave in (0..plan.waves.len()).rev() {
            let locks = &plan.waves[wave];
            let present = target.applied_locks(plan.generation, locks);
            if present.is_empty() {
                continue;
            }
            log.append(Intent::WaveRevertIntent { wave });
            chaos.barrier()?;
            target
                .revert_locks(plan.generation, &present)
                .map_err(RolloutError::Target)?;
            chaos.barrier()?;
            log.append(Intent::WaveReverted { wave });
            chaos.barrier()?;
        }
        Ok(())
    }

    fn emit_health(generation: u64, wave: usize, red: Option<&str>) {
        telemetry::metrics()
            .counter(if red.is_some() {
                "c3_rollout_health_red_total"
            } else {
                "c3_rollout_health_green_total"
            })
            .inc();
        if telemetry::armed() {
            telemetry::emit_payload(
                telemetry::EventKind::RolloutHealth,
                telemetry::clock::now_ns(),
                0,
                generation,
                wave as u64,
                0,
                u64::from(red.is_some()),
                red.unwrap_or("green").as_bytes(),
            );
        }
    }
}

/// Summary of a log for `c3ctl rollout status`.
#[derive(Clone, Debug)]
pub struct RolloutStatus {
    /// Plan generation (0 when idle).
    pub generation: u64,
    /// Policy being rolled out.
    pub policy: String,
    /// Target hook.
    pub hook: Option<HookKind>,
    /// Waves in the plan.
    pub waves_total: usize,
    /// Waves that passed health.
    pub waves_healthy: usize,
    /// Records in the log.
    pub records: usize,
    /// Human-readable state.
    pub state: String,
}

impl fmt::Display for RolloutStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hook {
            Some(hook) => write!(
                f,
                "gen={} policy={} hook={} waves={}/{} records={} state: {}",
                self.generation,
                self.policy,
                hook.name(),
                self.waves_healthy,
                self.waves_total,
                self.records,
                self.state
            ),
            None => write!(f, "no rollout (records={}) state: {}", self.records, self.state),
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos sweep harness

/// The crash-point sweep shared by `tests/rollout_chaos.rs` and the
/// `chaos_gate` CI bin.
pub mod chaos {
    use super::{ChaosPlan, RolloutError};

    /// How one scenario run left the world.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Convergence {
        /// Every lock in the plan carries the rollout policy.
        AllApplied,
        /// No lock carries it.
        AllReverted,
        /// Some do, some don't — the state the tentpole forbids.
        Mixed(String),
    }

    /// What a scenario reports back to the sweep.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SweepOutcome {
        /// Post-recovery state of the world.
        pub converged: Convergence,
        /// Step boundaries the run crossed (crash-point space).
        pub steps: u64,
        /// Replay fingerprint (log fold, sim trace hash, …).
        pub fingerprint: u64,
    }

    /// Aggregate result of a full sweep.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SweepReport {
        /// The seed swept.
        pub seed: u64,
        /// Crash points exercised (= the inert run's step count).
        pub crash_points: u64,
        /// Runs that converged to fully applied.
        pub applied_runs: u64,
        /// Runs that converged to fully reverted.
        pub reverted_runs: u64,
        /// The inert (no-crash) run's fingerprint.
        pub baseline_fingerprint: u64,
    }

    /// Runs `scenario` once with an inert plan to measure the step
    /// space, then once per crash point; every run must converge.
    /// `scenario` builds a fresh world, runs the rollout under the given
    /// plan, recovers if it crashed, and reports the final state.
    ///
    /// # Errors
    ///
    /// The first non-convergence, as `"seed S crash-at K: ..."`.
    pub fn crash_sweep(
        seed: u64,
        mut scenario: impl FnMut(ChaosPlan) -> Result<SweepOutcome, RolloutError>,
    ) -> Result<SweepReport, String> {
        let baseline = scenario(ChaosPlan::inert(seed))
            .map_err(|e| format!("seed {seed} inert run failed: {e}"))?;
        if let Convergence::Mixed(detail) = &baseline.converged {
            return Err(format!("seed {seed} inert run left mixed state: {detail}"));
        }
        let mut report = SweepReport {
            seed,
            crash_points: baseline.steps,
            applied_runs: 0,
            reverted_runs: 0,
            baseline_fingerprint: baseline.fingerprint,
        };
        let mut tally = |outcome: &SweepOutcome, at: String| match &outcome.converged {
            Convergence::AllApplied => {
                report.applied_runs += 1;
                Ok(())
            }
            Convergence::AllReverted => {
                report.reverted_runs += 1;
                Ok(())
            }
            Convergence::Mixed(detail) => Err(format!("seed {seed} {at}: mixed state: {detail}")),
        };
        tally(&baseline, "inert".into())?;
        for step in 0..baseline.steps {
            let outcome = scenario(ChaosPlan::crash_at(seed, step))
                .map_err(|e| format!("seed {seed} crash-at {step}: {e}"))?;
            tally(&outcome, format!("crash-at {step}"))?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pure in-memory target: the reference world for controller unit
    /// tests.
    struct MockTarget {
        locks: Vec<String>,
        applied: RefCell<BTreeMap<String, u64>>,
        fail_apply: RefCell<BTreeSet<String>>,
    }

    impl MockTarget {
        fn new(n: usize) -> Self {
            MockTarget {
                locks: (0..n).map(|i| format!("l{i}")).collect(),
                applied: RefCell::new(BTreeMap::new()),
                fail_apply: RefCell::new(BTreeSet::new()),
            }
        }
    }

    impl RolloutTarget for MockTarget {
        fn apply_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
            for l in locks {
                if self.fail_apply.borrow().contains(l) {
                    return Err(format!("scripted failure on {l}"));
                }
            }
            let mut applied = self.applied.borrow_mut();
            for l in locks {
                applied.insert(l.clone(), generation);
            }
            Ok(())
        }

        fn applied_locks(&self, generation: u64, locks: &[String]) -> Vec<String> {
            let applied = self.applied.borrow();
            locks
                .iter()
                .filter(|l| applied.get(*l) == Some(&generation))
                .cloned()
                .collect()
        }

        fn revert_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
            let mut applied = self.applied.borrow_mut();
            for l in locks {
                if applied.get(l) == Some(&generation) {
                    applied.remove(l);
                }
            }
            Ok(())
        }
    }

    fn plan_over(target: &MockTarget, waves_pcts: &[u32]) -> RolloutPlan {
        RolloutPlan::staged(1, "p", HookKind::CmpNode, &target.locks, waves_pcts)
    }

    #[test]
    fn staged_plan_shapes() {
        let locks: Vec<String> = (0..20).map(|i| format!("l{i}")).collect();
        let plan = RolloutPlan::staged(3, "p", HookKind::CmpNode, &locks, &[10, 50]);
        let sizes: Vec<usize> = plan.waves.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![1, 1, 8, 10]);
        assert_eq!(plan.total_locks(), 20);
        // One lock: just the canary.
        let one = RolloutPlan::staged(1, "p", HookKind::CmpNode, &locks[..1], &[50]);
        assert_eq!(one.waves, vec![vec!["l0".to_string()]]);
        // No percent waves: canary + rest.
        let two = RolloutPlan::staged(1, "p", HookKind::CmpNode, &locks[..5], &[]);
        assert_eq!(two.waves.len(), 2);
        assert_eq!(two.waves[0].len(), 1);
        assert_eq!(two.waves[1].len(), 4);
    }

    #[test]
    fn green_run_commits_all_waves() {
        let target = MockTarget::new(10);
        let log = RolloutLog::new();
        let chaos = ChaosInjector::inert();
        let outcome = Rollout::run(
            plan_over(&target, &[30]),
            &log,
            &target,
            &mut AlwaysGreen,
            &chaos,
        )
        .unwrap();
        assert_eq!(outcome, RolloutOutcome::Committed);
        assert_eq!(target.applied.borrow().len(), 10);
        let records = log.records();
        assert_eq!(records.last(), Some(&Intent::Committed));
        assert!(records.contains(&Intent::CommitIntent));
        assert_eq!(Rollout::status(&log).state, "committed");
    }

    #[test]
    fn red_health_aborts_and_rolls_back() {
        let target = MockTarget::new(10);
        let log = RolloutLog::new();
        let chaos = ChaosInjector::inert();
        let mut health = ScriptedHealth::new(vec![
            HealthVerdict::Green,
            HealthVerdict::Red("bad p99".into()),
        ]);
        let outcome = Rollout::run(plan_over(&target, &[30]), &log, &target, &mut health, &chaos)
            .unwrap();
        assert_eq!(outcome, RolloutOutcome::Aborted("bad p99".into()));
        assert!(target.applied.borrow().is_empty(), "all waves rolled back");
        let records = log.records();
        assert_eq!(records.last(), Some(&Intent::Aborted));
        assert!(records
            .iter()
            .any(|r| matches!(r, Intent::AbortIntent { reason } if reason == "bad p99")));
        // Waves revert newest-first.
        let reverted: Vec<usize> = records
            .iter()
            .filter_map(|r| match r {
                Intent::WaveReverted { wave } => Some(*wave),
                _ => None,
            })
            .collect();
        assert_eq!(reverted, vec![1, 0]);
    }

    #[test]
    fn apply_failure_unwinds_and_aborts() {
        let target = MockTarget::new(6);
        target.fail_apply.borrow_mut().insert("l3".into());
        let log = RolloutLog::new();
        let chaos = ChaosInjector::inert();
        let outcome = Rollout::run(
            plan_over(&target, &[50]),
            &log,
            &target,
            &mut AlwaysGreen,
            &chaos,
        )
        .unwrap();
        match outcome {
            RolloutOutcome::Aborted(reason) => assert!(reason.contains("apply failed")),
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(target.applied.borrow().is_empty());
    }

    #[test]
    fn stepwise_promote_and_operator_abort() {
        let target = MockTarget::new(9);
        let log = RolloutLog::new();
        let chaos = ChaosInjector::inert();
        let out = Rollout::start(
            plan_over(&target, &[50]),
            &log,
            &target,
            &mut AlwaysGreen,
            &chaos,
        )
        .unwrap();
        assert_eq!(out, WaveOutcome::WaveHealthy { wave: 0, remaining: 2 });
        assert_eq!(target.applied.borrow().len(), 1, "canary only");
        // A second start on the same log is refused.
        assert!(matches!(
            Rollout::start(
                plan_over(&target, &[]),
                &log,
                &target,
                &mut AlwaysGreen,
                &chaos
            ),
            Err(RolloutError::BadState(_))
        ));
        let out = Rollout::promote(&log, &target, &mut AlwaysGreen, &chaos).unwrap();
        assert_eq!(out, WaveOutcome::WaveHealthy { wave: 1, remaining: 1 });
        assert_eq!(target.applied.borrow().len(), 5);
        let aborted = Rollout::abort("operator said no", &log, &target, &chaos).unwrap();
        assert_eq!(
            aborted,
            RolloutOutcome::Aborted("operator said no".to_string())
        );
        assert!(target.applied.borrow().is_empty());
        assert!(matches!(
            Rollout::promote(&log, &target, &mut AlwaysGreen, &chaos),
            Err(RolloutError::BadState(_))
        ));
    }

    #[test]
    fn crash_then_recover_converges_at_every_step() {
        // The micro version of the chaos suite: the mock world, every
        // crash point, one seed.
        let sweep = chaos::crash_sweep(7, |plan| {
            let target = MockTarget::new(8);
            let log = RolloutLog::new();
            let chaos_inj = ChaosInjector::new(plan);
            let run = Rollout::run(
                plan_over(&target, &[50]),
                &log,
                &target,
                &mut AlwaysGreen,
                &chaos_inj,
            );
            if let Err(RolloutError::Crashed(_)) = run {
                // Fresh controller, same durable log and world.
                let fresh = ChaosInjector::inert();
                Rollout::recover(&log, &target, &fresh)?;
            }
            let applied = target.applied.borrow().len();
            let converged = if applied == target.locks.len() {
                chaos::Convergence::AllApplied
            } else if applied == 0 {
                chaos::Convergence::AllReverted
            } else {
                chaos::Convergence::Mixed(format!("{applied}/{} applied", target.locks.len()))
            };
            Ok(chaos::SweepOutcome {
                converged,
                steps: chaos_inj.steps_taken(),
                fingerprint: log.fingerprint(),
            })
        })
        .unwrap();
        assert!(sweep.crash_points > 10);
        assert!(sweep.applied_runs >= 1, "inert run applies");
        assert!(sweep.reverted_runs >= 1, "early crashes revert");
    }

    #[test]
    fn recover_rolls_forward_after_commit_intent() {
        let target = MockTarget::new(4);
        let log = RolloutLog::new();
        // Hand-build a log that crashed right after CommitIntent with
        // one straggler wave un-applied (an impossible state for the
        // real controller, but recovery must still converge forward).
        let plan = plan_over(&target, &[]);
        log.append(Intent::PlanStart {
            generation: plan.generation,
            policy: plan.policy.clone(),
            hook: plan.hook,
            waves: plan.waves.clone(),
        });
        target.apply_locks(1, &plan.waves[0]).unwrap();
        log.append(Intent::WaveApplied { wave: 0 });
        log.append(Intent::WaveHealthy { wave: 0 });
        log.append(Intent::WaveHealthy { wave: 1 });
        log.append(Intent::CommitIntent);
        let out = Rollout::recover(&log, &target, &ChaosInjector::inert()).unwrap();
        assert_eq!(out, RecoverOutcome::RolledForward);
        assert_eq!(target.applied.borrow().len(), 4);
        assert_eq!(log.records().last(), Some(&Intent::Committed));
        // Recovery on a terminal log is a no-op.
        assert_eq!(
            Rollout::recover(&log, &target, &ChaosInjector::inert()).unwrap(),
            RecoverOutcome::AlreadyTerminal(RolloutOutcome::Committed)
        );
    }

    #[test]
    fn recover_empty_log_is_noop() {
        let target = MockTarget::new(2);
        let log = RolloutLog::new();
        assert_eq!(
            Rollout::recover(&log, &target, &ChaosInjector::inert()).unwrap(),
            RecoverOutcome::NoRollout
        );
    }

    #[test]
    fn log_fingerprint_is_order_and_content_sensitive() {
        let a = RolloutLog::new();
        let b = RolloutLog::new();
        a.append(Intent::WaveApplyIntent { wave: 0 });
        a.append(Intent::WaveApplied { wave: 0 });
        b.append(Intent::WaveApplied { wave: 0 });
        b.append(Intent::WaveApplyIntent { wave: 0 });
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = RolloutLog::new();
        c.append(Intent::AbortIntent { reason: "x".into() });
        let d = RolloutLog::new();
        d.append(Intent::AbortIntent { reason: "y".into() });
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn scripted_health_defaults_green_past_script() {
        let mut h = ScriptedHealth::new(vec![HealthVerdict::Red("no".into())]);
        assert_eq!(h.judge(0, &[]), HealthVerdict::Red("no".into()));
        assert_eq!(h.judge(1, &[]), HealthVerdict::Green);
    }

    #[test]
    fn chaos_rng_is_seed_stable() {
        let a = ChaosInjector::new(ChaosPlan::inert(42));
        let b = ChaosInjector::new(ChaosPlan::inert(42));
        let c = ChaosInjector::new(ChaosPlan::inert(43));
        assert_eq!(a.rng(1), b.rng(1));
        assert_ne!(a.rng(1), a.rng(2));
        assert_ne!(a.rng(1), c.rng(1));
    }
}
