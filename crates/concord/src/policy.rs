//! Bytecode-backed policies for real and simulated locks.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cbpf::fault::FaultInjector;
use cbpf::helpers::PolicyEnv;
use cbpf::store::VerifiedProgram;
use ksim::Sim;
use locks::hooks::{
    CmpNodeCtx, CmpNodeFn, HookKind, LockEventCtx, LockEventFn, ScheduleWaiterCtx,
    ScheduleWaiterFn, SkipShuffleCtx, SkipShuffleFn,
};
use parking_lot::Mutex;
use simlocks::policy::{Decision, SimPolicy};

use crate::containment::{fail_safe_default, Breaker, BREAKER_CHECK_NS};
use crate::env::{RealEnv, SimHookEnv};
use crate::hookctx;

/// Modeled cost of a live-patched lock *function* entry: redirection
/// through the patch site, epoch pin and register shuffling. This is the
/// cost an attached-but-trivial policy still pays on every acquire and
/// release — the source of the worst-case slowdown in Fig. 2(c).
pub const TRAMPOLINE_NS: u64 = 45;

/// Modeled cost of invoking a policy at a hook site (indirect call +
/// context marshalling); the program itself is JIT-compiled, as kernel
/// eBPF is.
pub const HOOK_CALL_NS: u64 = 15;

/// Modeled cost per bytecode instruction after JIT compilation (~2× native
/// per the usual eBPF JIT experience).
pub const NS_PER_INSN: u64 = 2;

/// Instruction budget per hook invocation (second-layer guard; verified
/// policies are loop-free and cannot come close).
pub(crate) const HOOK_BUDGET: u64 = 1 << 16;

/// Lock identity of a marshalled hook context: `lock_id` is field 0 of
/// every layout (see `hookctx`), so the policy layer can label telemetry
/// without widening its call signatures.
#[inline]
fn ctx_lock_id(ctx: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&ctx[..8]);
    u64::from_le_bytes(b)
}

/// A policy was loaded for one hook but requested as another — surfaced
/// as a typed error instead of a panic inside a lock's hook path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HookMismatch {
    /// The hook the policy was loaded (and verified) for.
    pub bound: HookKind,
    /// The hook shape the caller asked to install it as.
    pub requested: &'static str,
}

impl fmt::Display for HookMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy bound to {:?} cannot be installed as {}",
            self.bound, self.requested
        )
    }
}

impl std::error::Error for HookMismatch {}

/// A verified program bound to a hook, runnable on real-thread locks.
pub struct BytecodePolicy {
    prog: VerifiedProgram,
    hook: HookKind,
    env: Arc<RealEnv>,
    invocations: AtomicU64,
    faults: AtomicU64,
    faults_by_kind: [AtomicU64; 4],
    breaker: Option<Arc<Breaker>>,
    injector: Option<Arc<FaultInjector>>,
}

impl BytecodePolicy {
    /// Wraps a verified program for `hook`, executing against `env`.
    pub fn new(prog: VerifiedProgram, hook: HookKind, env: Arc<RealEnv>) -> Arc<Self> {
        BytecodePolicy::contained(prog, hook, env, None, None)
    }

    /// Like [`BytecodePolicy::new`] but armed with a circuit `breaker`
    /// and, optionally, a deterministic fault `injector` (test harnesses;
    /// production attaches pass `None`).
    pub fn contained(
        prog: VerifiedProgram,
        hook: HookKind,
        env: Arc<RealEnv>,
        breaker: Option<Arc<Breaker>>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Arc<Self> {
        Arc::new(BytecodePolicy {
            prog,
            hook,
            env,
            invocations: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            faults_by_kind: Default::default(),
            breaker,
            injector,
        })
    }

    /// `(invocations, runtime faults)` — faults stay zero for verified
    /// programs unless an injector is armed; the counters exist for the
    /// soundness test harness and the breaker plumbing.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.invocations.load(Ordering::Relaxed),
            self.faults.load(Ordering::Relaxed),
        )
    }

    /// Fault counts in [`cbpf::FaultKind::ALL`] order.
    pub fn faults_by_kind(&self) -> [u64; 4] {
        [
            self.faults_by_kind[0].load(Ordering::Relaxed),
            self.faults_by_kind[1].load(Ordering::Relaxed),
            self.faults_by_kind[2].load(Ordering::Relaxed),
            self.faults_by_kind[3].load(Ordering::Relaxed),
        ]
    }

    /// The breaker guarding this policy, when armed.
    pub fn breaker(&self) -> Option<&Arc<Breaker>> {
        self.breaker.as_ref()
    }

    fn run(&self, ctx: &mut [u8]) -> u64 {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = &self.breaker {
            if !b.allow(self.env.ktime_ns()) {
                return fail_safe_default(self.hook);
            }
        }
        if telemetry::armed() {
            // Label policy-emitted records with the lock this invocation
            // serves (the env outlives any single hook call).
            self.env.note_lock(ctx_lock_id(ctx));
        }
        let outcome =
            self.prog
                .prepared()
                .run_with_faults(ctx, &*self.env, HOOK_BUDGET, self.injector.as_deref());
        match outcome {
            Ok(report) => {
                if let Some(b) = &self.breaker {
                    b.record_ok();
                }
                if telemetry::armed() {
                    telemetry::emit(
                        telemetry::EventKind::HookSpan,
                        self.env.ktime_ns(),
                        self.env.cpu_id() as u16,
                        ctx_lock_id(ctx),
                        u64::from(self.hook.bit()),
                        report.insns,
                        HOOK_BUDGET - report.insns,
                    );
                }
                report.ret
            }
            Err(e) => {
                // A fault is a verifier bug or an injected one; either way
                // the hook degrades to the unpatched lock's decision.
                let kind = e.fault_kind();
                self.faults.fetch_add(1, Ordering::Relaxed);
                self.faults_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
                if let Some(b) = &self.breaker {
                    b.record_fault(kind, self.env.ktime_ns());
                }
                fail_safe_default(self.hook)
            }
        }
    }

    fn expect_hook(&self, kind: HookKind, requested: &'static str) -> Result<(), HookMismatch> {
        if self.hook == kind {
            Ok(())
        } else {
            Err(HookMismatch {
                bound: self.hook,
                requested,
            })
        }
    }

    /// Produces the `cmp_node` closure to install in a hook table.
    ///
    /// # Errors
    ///
    /// Returns [`HookMismatch`] if this policy was loaded for a
    /// different hook.
    pub fn as_cmp_node(self: &Arc<Self>) -> Result<CmpNodeFn, HookMismatch> {
        self.expect_hook(HookKind::CmpNode, "cmp_node")?;
        let p = Arc::clone(self);
        Ok(Arc::new(move |ctx: &CmpNodeCtx| {
            let mut buf = hookctx::marshal_cmp_node(ctx);
            p.run(&mut buf) != 0
        }))
    }

    /// Produces the `skip_shuffle` closure.
    ///
    /// # Errors
    ///
    /// Returns [`HookMismatch`] if this policy was loaded for a
    /// different hook.
    pub fn as_skip_shuffle(self: &Arc<Self>) -> Result<SkipShuffleFn, HookMismatch> {
        self.expect_hook(HookKind::SkipShuffle, "skip_shuffle")?;
        let p = Arc::clone(self);
        Ok(Arc::new(move |ctx: &SkipShuffleCtx| {
            let mut buf = hookctx::marshal_skip_shuffle(ctx);
            p.run(&mut buf) != 0
        }))
    }

    /// Produces the `schedule_waiter` closure.
    ///
    /// # Errors
    ///
    /// Returns [`HookMismatch`] if this policy was loaded for a
    /// different hook.
    pub fn as_schedule_waiter(self: &Arc<Self>) -> Result<ScheduleWaiterFn, HookMismatch> {
        self.expect_hook(HookKind::ScheduleWaiter, "schedule_waiter")?;
        let p = Arc::clone(self);
        Ok(Arc::new(move |ctx: &ScheduleWaiterCtx| {
            let mut buf = hookctx::marshal_schedule_waiter(ctx);
            p.run(&mut buf) != 0
        }))
    }

    /// Produces an event-hook closure.
    ///
    /// # Errors
    ///
    /// Returns [`HookMismatch`] if this policy was loaded for a decision
    /// hook.
    pub fn as_event(self: &Arc<Self>) -> Result<LockEventFn, HookMismatch> {
        if !matches!(
            self.hook,
            HookKind::LockAcquire
                | HookKind::LockContended
                | HookKind::LockAcquired
                | HookKind::LockRelease
        ) {
            return Err(HookMismatch {
                bound: self.hook,
                requested: "an event hook",
            });
        }
        let p = Arc::clone(self);
        Ok(Arc::new(move |ctx: &LockEventCtx| {
            let mut buf = hookctx::marshal_event(ctx);
            p.run(&mut buf);
        }))
    }
}

/// A set of verified programs driving a simulated shuffle lock.
///
/// Each invocation runs the interpreter for real (so maps fill, traces
/// flow) and charges `HOOK_CALL_NS + insns × NS_PER_INSN` to virtual
/// time — the "Concord-ShflLock" series of Fig. 2(b)/(c).
pub struct SimBytecodePolicy {
    sim: Sim,
    cmp: Option<VerifiedProgram>,
    skip: Option<VerifiedProgram>,
    sched: Option<VerifiedProgram>,
    events: HashMap<HookKind, VerifiedProgram>,
    priorities: Arc<Mutex<std::collections::HashMap<u64, i64>>>,
    rng: Cell<u64>,
    cores_per_socket: u32,
    invocations: Cell<u64>,
    faults: Cell<u64>,
    faults_by_kind: Cell<[u64; 4]>,
    breaker: Option<Arc<Breaker>>,
    injector: Option<Arc<FaultInjector>>,
}

impl SimBytecodePolicy {
    /// Creates an empty policy set for `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        SimBytecodePolicy {
            sim: sim.clone(),
            cmp: None,
            skip: None,
            sched: None,
            events: HashMap::new(),
            priorities: Arc::new(Mutex::new(Default::default())),
            rng: Cell::new(0x243F_6A88_85A3_08D3),
            cores_per_socket: sim.topology().cores_per_socket(),
            invocations: Cell::new(0),
            faults: Cell::new(0),
            faults_by_kind: Cell::new([0; 4]),
            breaker: None,
            injector: None,
        }
    }

    /// Installs a verified program on `hook`.
    pub fn install(mut self, hook: HookKind, prog: VerifiedProgram) -> Self {
        match hook {
            HookKind::CmpNode => self.cmp = Some(prog),
            HookKind::SkipShuffle => self.skip = Some(prog),
            HookKind::ScheduleWaiter => self.sched = Some(prog),
            k => {
                self.events.insert(k, prog);
            }
        }
        self
    }

    /// Arms the policy set with a circuit `breaker` and an optional
    /// deterministic fault `injector`. Every hook invocation then charges
    /// [`BREAKER_CHECK_NS`] of virtual time on top of the interpreter cost,
    /// faults degrade to the fail-safe defaults, and an open breaker
    /// bypasses the programs entirely.
    pub fn with_containment(
        mut self,
        breaker: Arc<Breaker>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        self.breaker = Some(breaker);
        self.injector = injector;
        self
    }

    /// The breaker guarding this policy set, when armed.
    pub fn breaker(&self) -> Option<&Arc<Breaker>> {
        self.breaker.as_ref()
    }

    /// Fault counts in [`cbpf::FaultKind::ALL`] order.
    pub fn faults_by_kind(&self) -> [u64; 4] {
        self.faults_by_kind.get()
    }

    /// Registers a task priority for the `task_priority` helper.
    pub fn set_task_priority(&self, tid: u64, prio: i64) {
        self.priorities.lock().insert(tid, prio);
    }

    /// Shared priority table (the userspace↔policy control plane).
    pub fn priorities(&self) -> Arc<Mutex<std::collections::HashMap<u64, i64>>> {
        Arc::clone(&self.priorities)
    }

    /// `(invocations, faults)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.invocations.get(), self.faults.get())
    }

    fn next_random(&self) -> u64 {
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }

    fn run(
        &self,
        hook: HookKind,
        prog: &VerifiedProgram,
        ctx: &mut [u8],
        cpu: u32,
        pid: u64,
    ) -> (u64, u64) {
        self.invocations.set(self.invocations.get() + 1);
        let now = self.sim.now();
        let check = if self.breaker.is_some() {
            BREAKER_CHECK_NS
        } else {
            0
        };
        if let Some(b) = &self.breaker {
            if !b.allow(now) {
                // Open breaker: the program is bypassed, the hook serves
                // the unpatched lock's decision at the bare check cost.
                return (fail_safe_default(hook), check);
            }
        }
        let env = SimHookEnv {
            cpu,
            socket: cpu / self.cores_per_socket,
            now_ns: now,
            pid,
            lock_id: ctx_lock_id(ctx),
            cores_per_socket: self.cores_per_socket,
            random: self.next_random(),
            priorities: Arc::clone(&self.priorities),
            sim: Some(self.sim.clone()),
        };
        let outcome = prog
            .prepared()
            .run_with_faults(ctx, &env, HOOK_BUDGET, self.injector.as_deref());
        match outcome {
            Ok(report) => {
                if let Some(b) = &self.breaker {
                    b.record_ok();
                }
                if telemetry::armed() {
                    // Virtual-time span; charges no virtual time itself, so
                    // armed and disarmed runs produce identical figures.
                    telemetry::emit(
                        telemetry::EventKind::HookSpan,
                        now,
                        cpu as u16,
                        env.lock_id,
                        u64::from(hook.bit()),
                        report.insns,
                        HOOK_BUDGET - report.insns,
                    );
                }
                (report.ret, check + HOOK_CALL_NS + report.insns * NS_PER_INSN)
            }
            Err(e) => {
                let kind = e.fault_kind();
                self.faults.set(self.faults.get() + 1);
                let mut by = self.faults_by_kind.get();
                by[kind.index()] += 1;
                self.faults_by_kind.set(by);
                if let Some(b) = &self.breaker {
                    b.record_fault(kind, now);
                }
                (fail_safe_default(hook), check + HOOK_CALL_NS)
            }
        }
    }
}

impl SimPolicy for SimBytecodePolicy {
    fn cmp_node(&self, ctx: &CmpNodeCtx) -> Decision {
        match &self.cmp {
            Some(prog) => {
                let mut buf = hookctx::marshal_cmp_node(ctx);
                let (ret, cost) = self.run(
                    HookKind::CmpNode,
                    prog,
                    &mut buf,
                    ctx.shuffler.cpu,
                    ctx.shuffler.tid,
                );
                (ret != 0, cost)
            }
            None => (false, 0),
        }
    }

    fn skip_shuffle(&self, ctx: &SkipShuffleCtx) -> Decision {
        match &self.skip {
            Some(prog) => {
                let mut buf = hookctx::marshal_skip_shuffle(ctx);
                let (ret, cost) = self.run(
                    HookKind::SkipShuffle,
                    prog,
                    &mut buf,
                    ctx.shuffler.cpu,
                    ctx.shuffler.tid,
                );
                (ret != 0, cost)
            }
            // No explicit skip program: shuffle exactly when a cmp_node
            // program is attached; consulting the vacant patched slot still
            // costs an indirect call.
            None => (self.cmp.is_none(), HOOK_CALL_NS),
        }
    }

    fn schedule_waiter(&self, ctx: &ScheduleWaiterCtx) -> Decision {
        match &self.sched {
            Some(prog) => {
                let mut buf = hookctx::marshal_schedule_waiter(ctx);
                let (ret, cost) = self.run(
                    HookKind::ScheduleWaiter,
                    prog,
                    &mut buf,
                    ctx.curr.cpu,
                    ctx.curr.tid,
                );
                (ret != 0, cost)
            }
            None => (true, 0),
        }
    }

    fn on_event(&self, kind: HookKind, ctx: &LockEventCtx) -> u64 {
        match self.events.get(&kind) {
            Some(prog) => {
                let mut buf = hookctx::marshal_event(ctx);
                let (_, cost) = self.run(kind, prog, &mut buf, ctx.cpu, ctx.tid);
                cost
            }
            None => 0,
        }
    }

    fn wants_event(&self, kind: HookKind) -> bool {
        self.events.contains_key(&kind)
    }
}

/// A no-op attached policy for the simulator: the lock's acquire and
/// release functions have been live-patched (one indirection each), and
/// the shuffler consults a patched decision slot — but no user code runs.
/// This is the paper's Fig. 2(c) "worst-case scenario when no userspace
/// code is executed".
pub struct AttachedNoopPolicy;

impl SimPolicy for AttachedNoopPolicy {
    fn cmp_node(&self, _ctx: &CmpNodeCtx) -> Decision {
        (false, TRAMPOLINE_NS)
    }

    fn skip_shuffle(&self, _ctx: &SkipShuffleCtx) -> Decision {
        (true, TRAMPOLINE_NS)
    }

    fn on_event(&self, _kind: HookKind, _ctx: &LockEventCtx) -> u64 {
        TRAMPOLINE_NS
    }

    fn wants_event(&self, kind: HookKind) -> bool {
        // One patched entry point on the acquire path, one on release.
        matches!(kind, HookKind::LockAcquire | HookKind::LockRelease)
    }
}

/// Like [`AttachedNoopPolicy`] but with a configurable per-entry cost —
/// the knob for the Fig. 2(c) sensitivity ablation.
pub struct PatchedEntryPolicy(pub u64);

impl SimPolicy for PatchedEntryPolicy {
    fn cmp_node(&self, _ctx: &CmpNodeCtx) -> Decision {
        (false, self.0)
    }

    fn skip_shuffle(&self, _ctx: &SkipShuffleCtx) -> Decision {
        (true, self.0)
    }

    fn on_event(&self, _kind: HookKind, _ctx: &LockEventCtx) -> u64 {
        self.0
    }

    fn wants_event(&self, kind: HookKind) -> bool {
        matches!(kind, HookKind::LockAcquire | HookKind::LockRelease)
    }
}

/// Convenience: boxes a policy set for [`simlocks::SimShflLock::set_policy`].
pub fn into_rc(p: SimBytecodePolicy) -> Rc<dyn SimPolicy> {
    Rc::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbpf::insn::{JmpOp, MemSize, Reg};
    use cbpf::program::ProgramBuilder;
    use locks::hooks::NodeView;

    fn view(cpu: u32) -> NodeView {
        NodeView {
            tid: u64::from(cpu) + 100,
            cpu,
            socket: cpu / 10,
            prio: 0,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        }
    }

    /// cmp_node: return shuffler_socket == curr_socket.
    fn numa_prog() -> VerifiedProgram {
        let layout = hookctx::cmp_node_layout();
        let sh = layout.field("shuffler_socket").unwrap().offset as i16;
        let cu = layout.field("curr_socket").unwrap().offset as i16;
        let mut b = ProgramBuilder::new("numa");
        b.load(MemSize::W, Reg::R2, Reg::R1, sh);
        b.load(MemSize::W, Reg::R3, Reg::R1, cu);
        b.mov_imm(Reg::R0, 0);
        b.jmp(JmpOp::Ne, Reg::R2, Reg::R3, "out");
        b.mov_imm(Reg::R0, 1);
        b.label("out");
        b.exit();
        VerifiedProgram::new(
            b.build().unwrap(),
            layout,
            &hookctx::rules_for(HookKind::CmpNode),
        )
        .unwrap()
    }

    #[test]
    fn real_policy_decides_from_ctx() {
        let policy = BytecodePolicy::new(numa_prog(), HookKind::CmpNode, Arc::new(RealEnv::new()));
        let f = policy.as_cmp_node().unwrap();
        let same = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(12),
            curr: view(15),
        };
        let cross = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(12),
            curr: view(55),
        };
        assert!(f(&same));
        assert!(!f(&cross));
        let (inv, faults) = policy.stats();
        assert_eq!(inv, 2);
        assert_eq!(faults, 0);
    }

    #[test]
    fn wrong_hook_binding_is_a_typed_error() {
        let policy = BytecodePolicy::new(numa_prog(), HookKind::CmpNode, Arc::new(RealEnv::new()));
        let err = match policy.as_skip_shuffle() {
            Err(e) => e,
            Ok(_) => panic!("cmp_node policy must not install as skip_shuffle"),
        };
        assert_eq!(err.bound, HookKind::CmpNode);
        assert_eq!(err.requested, "skip_shuffle");
        assert!(err.to_string().contains("bound to"));
        assert!(policy.as_event().is_err(), "decision hook is not an event");
        assert!(policy.as_cmp_node().is_ok());
    }

    #[test]
    fn injected_fault_degrades_to_fail_safe_and_trips_breaker() {
        use crate::containment::{BreakerConfig, BreakerState};
        use cbpf::fault::{FaultInjector, FaultPlan};
        use cbpf::FaultKind;

        let breaker = Arc::new(Breaker::new(BreakerConfig {
            threshold: 2,
            cooldown_ns: None,
        }));
        // skip_shuffle program returning 0 (= shuffle); faults must flip
        // the decision to the fail-safe 1 (= skip, plain FIFO).
        let layout = hookctx::skip_shuffle_layout();
        let mut b = ProgramBuilder::new("skip0");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        let prog = VerifiedProgram::new(
            b.build().unwrap(),
            layout,
            &hookctx::rules_for(HookKind::SkipShuffle),
        )
        .unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::from_invocation(
            2,
            FaultKind::Budget,
        )));
        let policy = BytecodePolicy::contained(
            prog,
            HookKind::SkipShuffle,
            Arc::new(RealEnv::new()),
            Some(Arc::clone(&breaker)),
            Some(inj),
        );
        let f = policy.as_skip_shuffle().unwrap();
        let ctx = SkipShuffleCtx {
            lock_id: 1,
            shuffler: view(0),
        };
        assert!(!f(&ctx), "healthy program says shuffle");
        assert!(f(&ctx), "fault 1 degrades to fail-safe skip");
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(f(&ctx), "fault 2 trips the breaker");
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(f(&ctx), "open breaker bypasses the program");
        let (inv, faults) = policy.stats();
        assert_eq!(inv, 4);
        assert_eq!(faults, 2, "bypassed invocation does not run the program");
        assert_eq!(policy.faults_by_kind()[FaultKind::Budget.index()], 2);
    }

    #[test]
    fn sim_policy_charges_cost() {
        let sim = ksim::SimBuilder::new().build();
        let p = SimBytecodePolicy::new(&sim).install(HookKind::CmpNode, numa_prog());
        let ctx = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(12),
            curr: view(15),
        };
        let (decision, cost) = p.cmp_node(&ctx);
        assert!(decision);
        assert!(cost > HOOK_CALL_NS, "instruction cost must be charged");
        // skip_shuffle with cmp attached but no skip program: shuffle.
        let (skip, sc) = p.skip_shuffle(&SkipShuffleCtx {
            lock_id: 1,
            shuffler: view(12),
        });
        assert!(!skip);
        assert_eq!(sc, HOOK_CALL_NS);
        assert_eq!(p.stats().1, 0);
    }

    #[test]
    fn noop_policy_costs_trampoline_only() {
        let p = AttachedNoopPolicy;
        let (d, c) = p.cmp_node(&CmpNodeCtx {
            lock_id: 1,
            shuffler: view(0),
            curr: view(1),
        });
        assert!(!d);
        assert_eq!(c, TRAMPOLINE_NS);
        // One patched entry on the acquire path, one on release.
        assert!(p.wants_event(HookKind::LockAcquire));
        assert!(p.wants_event(HookKind::LockRelease));
        assert!(!p.wants_event(HookKind::LockAcquired));
        assert!(!p.wants_event(HookKind::LockContended));
    }

    #[test]
    fn unattached_hooks_cost_nothing() {
        let sim = ksim::SimBuilder::new().build();
        let p = SimBytecodePolicy::new(&sim);
        let (d, c) = p.cmp_node(&CmpNodeCtx {
            lock_id: 1,
            shuffler: view(0),
            curr: view(1),
        });
        assert!(!d);
        assert_eq!(c, 0);
        assert!(!p.wants_event(HookKind::LockAcquired));
        assert_eq!(
            p.on_event(
                HookKind::LockAcquired,
                &LockEventCtx {
                    lock_id: 1,
                    tid: 1,
                    cpu: 0,
                    socket: 0,
                    now_ns: 0,
                    owner_tid: 0
                }
            ),
            0
        );
    }
}
