//! Dynamic lock profiling (§3.2).
//!
//! Unlike `lockstat`, "in which all locks are profiled together", the
//! profiler attaches to a chosen set of lock instances — one lock, a
//! class, or everything in the registry — through the four event hooks,
//! and renders a lockstat-style report with hold-time and wait-time
//! log2 histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cbpf::map::{Map, MapDef, MapKind};
use ksim::Histogram;
use locks::hooks::HookKind;
use telemetry::AtomicHistogram;

use crate::workflow::{AttachHandle, Concord, ConcordError};

/// In-flight tids one profiler tracks at once. Timestamps for tids past
/// this degrade gracefully: the acquire/release still counts, only the
/// latency sample is dropped.
const TS_MAP_ENTRIES: usize = 4096;

/// tid → timestamp table on the policy data plane: a sharded `cbpf` hash
/// map instead of a `Mutex<HashMap>`, so concurrent hook invocations
/// from different threads don't serialize on one lock (the profiler is
/// attached exactly where contention is suspected).
fn ts_map(name: &str) -> Map {
    Map::new(MapDef {
        name: name.into(),
        kind: MapKind::Hash,
        key_size: 8,
        value_size: 8,
        max_entries: TS_MAP_ENTRIES,
    })
}

/// Records `now` for `tid`, dropping the sample if the table is full.
fn ts_insert(map: &Map, tid: u64, now: u64) {
    let _ = map.update(&tid.to_le_bytes(), &now.to_le_bytes(), 0);
}

/// Takes the timestamp recorded for `tid`, if any (borrow-based lookup:
/// no allocation on the hook hot path).
fn ts_remove(map: &Map, tid: u64) -> Option<u64> {
    let key = tid.to_le_bytes();
    let slot = map.lookup_slot(&key, 0)?;
    let ts = map.value_load(slot, 0, 8)?;
    map.delete(&key).ok()?;
    Some(ts)
}

/// Per-lock profile counters.
pub struct LockProfile {
    acquires: AtomicU64,
    contended: AtomicU64,
    acquired: AtomicU64,
    releases: AtomicU64,
    // Lock-free log2 histograms: hook invocations from contending threads
    // record without serializing on a profiler mutex.
    hold_hist: AtomicHistogram,
    wait_hist: AtomicHistogram,
    // tid → timestamps for in-flight operations.
    attempt_ts: Map,
    acquired_ts: Map,
}

impl Default for LockProfile {
    fn default() -> Self {
        LockProfile {
            acquires: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            acquired: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            hold_hist: AtomicHistogram::new(),
            wait_hist: AtomicHistogram::new(),
            attempt_ts: ts_map("attempt_ts"),
            acquired_ts: ts_map("acquired_ts"),
        }
    }
}

impl LockProfile {
    /// `(attempts, contended, acquired, releases)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.acquires.load(Ordering::Relaxed),
            self.contended.load(Ordering::Relaxed),
            self.acquired.load(Ordering::Relaxed),
            self.releases.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the hold-time histogram.
    pub fn hold_hist(&self) -> Histogram {
        let (buckets, count, sum, min, max) = self.hold_hist.raw_parts();
        Histogram::from_raw(buckets, count, sum, min, max)
    }

    /// Snapshot of the wait-time histogram.
    pub fn wait_hist(&self) -> Histogram {
        let (buckets, count, sum, min, max) = self.wait_hist.raw_parts();
        Histogram::from_raw(buckets, count, sum, min, max)
    }

    /// Contention ratio (contended / attempts), 0 when idle.
    pub fn contention_ratio(&self) -> f64 {
        let a = self.acquires.load(Ordering::Relaxed);
        if a == 0 {
            0.0
        } else {
            self.contended.load(Ordering::Relaxed) as f64 / a as f64
        }
    }
}

/// A profiling session over a set of locks.
pub struct Profiler {
    profiles: Vec<(String, Arc<LockProfile>)>,
    handles: Vec<AttachHandle>,
}

impl Profiler {
    /// Attaches profiling hooks to the named locks.
    ///
    /// # Errors
    ///
    /// Fails if any lock is unknown or not hookable; locks attached before
    /// the failure are rolled back.
    pub fn attach(concord: &Concord, locks: &[&str]) -> Result<Profiler, ConcordError> {
        let mut profiler = Profiler {
            profiles: Vec::new(),
            handles: Vec::new(),
        };
        for name in locks {
            match profiler.attach_one(concord, name) {
                Ok(()) => {}
                Err(e) => {
                    // Best-effort rollback; the original error wins.
                    let _ = profiler.detach(concord);
                    return Err(e);
                }
            }
        }
        Ok(profiler)
    }

    /// Attaches to every lock in a registry class (§3.2's "namespace"
    /// granularity).
    ///
    /// # Errors
    ///
    /// See [`Profiler::attach`].
    pub fn attach_class(concord: &Concord, class: &str) -> Result<Profiler, ConcordError> {
        let names = concord.registry().names_in_class(class);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        Profiler::attach(concord, &refs)
    }

    /// Attaches to every registered lock (the `lockstat` equivalent).
    ///
    /// # Errors
    ///
    /// See [`Profiler::attach`].
    pub fn attach_all(concord: &Concord) -> Result<Profiler, ConcordError> {
        let names = concord.registry().names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        Profiler::attach(concord, &refs)
    }

    fn attach_one(&mut self, concord: &Concord, name: &str) -> Result<(), ConcordError> {
        let profile = Arc::new(LockProfile::default());

        let p = Arc::clone(&profile);
        let h = concord.attach_native_event(
            name,
            HookKind::LockAcquire,
            Arc::new(move |ctx| {
                p.acquires.fetch_add(1, Ordering::Relaxed);
                ts_insert(&p.attempt_ts, ctx.tid, ctx.now_ns);
            }),
        )?;
        self.handles.push(h);

        let p = Arc::clone(&profile);
        let h = concord.attach_native_event(
            name,
            HookKind::LockContended,
            Arc::new(move |_| {
                p.contended.fetch_add(1, Ordering::Relaxed);
            }),
        )?;
        self.handles.push(h);

        let p = Arc::clone(&profile);
        let h = concord.attach_native_event(
            name,
            HookKind::LockAcquired,
            Arc::new(move |ctx| {
                p.acquired.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = ts_remove(&p.attempt_ts, ctx.tid) {
                    p.wait_hist.record(ctx.now_ns.saturating_sub(start));
                }
                ts_insert(&p.acquired_ts, ctx.tid, ctx.now_ns);
            }),
        )?;
        self.handles.push(h);

        let p = Arc::clone(&profile);
        let h = concord.attach_native_event(
            name,
            HookKind::LockRelease,
            Arc::new(move |ctx| {
                p.releases.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = ts_remove(&p.acquired_ts, ctx.tid) {
                    p.hold_hist.record(ctx.now_ns.saturating_sub(start));
                }
            }),
        )?;
        self.handles.push(h);

        self.profiles.push((name.to_string(), profile));
        Ok(())
    }

    /// The profile of one lock.
    pub fn profile(&self, lock: &str) -> Option<&Arc<LockProfile>> {
        self.profiles
            .iter()
            .find(|(n, _)| n == lock)
            .map(|(_, p)| p)
    }

    /// Profiled lock names.
    pub fn locks(&self) -> Vec<&str> {
        self.profiles.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Detaches every hook (in reverse attach order, honoring the patch
    /// stack) and returns the collected profiles.
    ///
    /// # Errors
    ///
    /// Propagates the patch-stack error if a handle no longer reverts —
    /// e.g. a patch above it was attached out of band. The failed handle
    /// is kept so a later call can retry; no handle is silently dropped.
    pub fn detach(
        &mut self,
        concord: &Concord,
    ) -> Result<Vec<(String, Arc<LockProfile>)>, ConcordError> {
        while let Some(h) = self.handles.pop() {
            let saved = AttachHandle {
                patch: h.patch,
                lock: h.lock.clone(),
                hook: h.hook,
            };
            if let Err(e) = concord.detach(h) {
                self.handles.push(saved);
                return Err(e);
            }
        }
        Ok(std::mem::take(&mut self.profiles))
    }

    /// Renders a lockstat-style report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>8} {:>12} {:>12} {:>12}\n",
            "lock", "acquires", "contended", "cont%", "wait p50(ns)", "hold p50(ns)", "hold max"
        ));
        for (name, p) in &self.profiles {
            let (a, c, _, _) = p.counters();
            let wait = p.wait_hist();
            let hold = p.hold_hist();
            out.push_str(&format!(
                "{:<24} {:>10} {:>10} {:>7.1}% {:>12} {:>12} {:>12}\n",
                name,
                a,
                c,
                p.contention_ratio() * 100.0,
                wait.quantile(0.5),
                hold.quantile(0.5),
                hold.max(),
            ));
        }
        out
    }

    /// Joins the lockstat-style view with a trace-plane contention
    /// analysis: for each profiled lock that appears in the analysis
    /// (matched by registered name), renders the analyzer's measured
    /// wait, attribution fidelity, and the single most-blamed
    /// (tenant, policy) cell — the hook histograms and the timeline
    /// reconstruction answering the same question from two sides.
    pub fn contention_report(&self, analysis: &telemetry::Report) -> String {
        let mut out = String::new();
        for (name, _) in &self.profiles {
            let Some(l) = analysis.locks.values().find(|l| &l.name == name) else {
                continue;
            };
            let fidelity = if analysis.exact() { "exact" } else { "lower-bound" };
            match l
                .caused
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            {
                Some(((tenant, policy), ns)) => {
                    let tenant = if *tenant == telemetry::analyze::HANDOFF_TENANT {
                        "handoff".to_string()
                    } else {
                        tenant.to_string()
                    };
                    let share = ns.saturating_mul(1000).checked_div(l.wait_ns).unwrap_or(0);
                    out.push_str(&format!(
                        "{name:<24} analyzed wait={}ns ({fidelity}) top blame: \
                         tenant={tenant} policy={policy} {ns}ns ({share}‰)\n",
                        l.wait_ns
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "{name:<24} analyzed wait={}ns ({fidelity}) no completed waits\n",
                        l.wait_ns
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locks::{RawLock, ShflLock};

    fn concord_with_lock(name: &str) -> (Concord, Arc<ShflLock>) {
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl(name, Arc::clone(&lock));
        (c, lock)
    }

    #[test]
    fn profiles_single_lock() {
        let (c, lock) = concord_with_lock("target");
        let mut prof = Profiler::attach(&c, &["target"]).unwrap();
        for _ in 0..100 {
            let _g = lock.lock();
        }
        let p = Arc::clone(prof.profile("target").unwrap());
        let (a, _, acq, rel) = p.counters();
        assert_eq!(a, 100);
        assert_eq!(acq, 100);
        assert_eq!(rel, 100);
        assert_eq!(p.hold_hist().count(), 100);
        let report = prof.report();
        assert!(report.contains("target"));
        prof.detach(&c).unwrap();
        assert!(c.live_patches().is_empty());
        // After detach the lock is unobserved again.
        {
            let _g = lock.lock();
        }
        assert_eq!(p.counters().0, 100);
    }

    #[test]
    fn selective_profiling_ignores_other_locks() {
        let c = Concord::new();
        let watched = Arc::new(ShflLock::new());
        let unwatched = Arc::new(ShflLock::new());
        c.registry().register_shfl("watched", Arc::clone(&watched));
        c.registry()
            .register_shfl("unwatched", Arc::clone(&unwatched));
        let mut prof = Profiler::attach(&c, &["watched"]).unwrap();
        for _ in 0..10 {
            let _g = watched.lock();
            let _h = unwatched.lock();
        }
        assert_eq!(prof.profile("watched").unwrap().counters().0, 10);
        assert!(prof.profile("unwatched").is_none());
        prof.detach(&c).unwrap();
    }

    #[test]
    fn class_and_all_granularity() {
        use crate::registry::{LockClass, LockHandle};
        let c = Concord::new();
        for (name, class) in [("a1", "alpha"), ("a2", "alpha"), ("b1", "beta")] {
            c.registry().register(
                name,
                LockHandle::Shfl(Arc::new(ShflLock::new())),
                LockClass(class.into()),
            );
        }
        let mut prof = Profiler::attach_class(&c, "alpha").unwrap();
        assert_eq!(prof.locks(), vec!["a1", "a2"]);
        prof.detach(&c).unwrap();
        let mut prof = Profiler::attach_all(&c).unwrap();
        assert_eq!(prof.locks().len(), 3);
        prof.detach(&c).unwrap();
    }

    #[test]
    fn attach_failure_rolls_back() {
        let (c, _lock) = concord_with_lock("ok");
        let err = match Profiler::attach(&c, &["ok", "missing"]) {
            Err(e) => e,
            Ok(_) => panic!("attach should fail on a missing lock"),
        };
        assert!(matches!(err, ConcordError::UnknownLock(_)));
        assert!(c.live_patches().is_empty(), "partial attach must roll back");
    }

    #[test]
    fn contention_recorded_under_load() {
        let (c, lock) = concord_with_lock("hot");
        let mut prof = Profiler::attach(&c, &["hot"]).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let _g = l.lock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let p = prof.profile("hot").unwrap();
        let (a, _, acq, rel) = p.counters();
        assert_eq!(a, 2_000);
        assert_eq!(acq, 2_000);
        assert_eq!(rel, 2_000);
        assert_eq!(p.wait_hist().count(), 2_000);
        prof.detach(&c).unwrap();
    }
}
