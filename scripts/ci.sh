#!/usr/bin/env bash
# Full CI pass: release build, the whole test suite, clippy with warnings
# denied, then the smoke run (one sweep point per figure, including the
# containment-overhead ablation and the table1 watchdog column, both of
# which assert their budgets).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== scripts/smoke.sh =="
./scripts/smoke.sh

echo "ci ok"
