#!/usr/bin/env bash
# Full CI pass: release build, the whole test suite, clippy with warnings
# denied, then the smoke run (one sweep point per figure, including the
# containment-overhead ablation and the table1 watchdog column, both of
# which assert their budgets).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

# Data-plane regression gate: asserts the prepared map_mix speedup stays
# above its floor. Skip on noisy builders with C3_BENCH_GATE=0.
echo "== bench_gate (C3_BENCH_GATE=${C3_BENCH_GATE:-1}) =="
C3_BENCH_GATE="${C3_BENCH_GATE:-1}" cargo run -p c3-bench --release --bin bench_gate

# Telemetry-overhead gate: the fig2c no-op worst case must stay >= 0.95
# normalized with the trace plane compiled in — and since armed emission
# charges zero virtual time, disarmed and armed runs must agree exactly
# (the committed figure CSVs stay byte-identical either way). Shares the
# C3_BENCH_GATE=0 skip knob.
echo "== telemetry_gate (C3_BENCH_GATE=${C3_BENCH_GATE:-1}) =="
C3_BENCH_GATE="${C3_BENCH_GATE:-1}" cargo run -p c3-bench --release --bin telemetry_gate

# Contention-analysis gate: blame conservation must hold exactly (and
# byte-identically run-to-run) on a lossless fixed-seed ksim trace, and
# arming the continuous analyzer must stay >= 0.95 normalized on the
# fig2c no-op worst case without moving virtual throughput at all.
# Shares the C3_BENCH_GATE=0 skip knob.
echo "== profile_gate (C3_BENCH_GATE=${C3_BENCH_GATE:-1}) =="
C3_BENCH_GATE="${C3_BENCH_GATE:-1}" cargo run -p c3-bench --release --bin profile_gate

# Rollout chaos gate: crash-sweeps a staged rollout over fixed seeds
# (override with C3_CHAOS_SEEDS=a,b,c), asserting every crash point
# converges and that replays are deterministic. Skip with
# C3_CHAOS_GATE=0.
echo "== chaos_gate (C3_CHAOS_GATE=${C3_CHAOS_GATE:-1}) =="
C3_CHAOS_GATE="${C3_CHAOS_GATE:-1}" C3_CHAOS_SEEDS="${C3_CHAOS_SEEDS:-}" \
    cargo run -p c3-bench --release --bin chaos_gate

# Schedule-exploration gate: every strategy must find all three planted
# bugs in simlocks::broken within a fixed schedule budget, shrink each to
# a minimal injection list, and replay it bit-identically — while the
# correct zoo stays violation-free under the same adversarial schedules.
# Override base seeds with C3_SCHED_SEEDS=a,b,c; skip with
# C3_SCHED_GATE=0.
echo "== schedule_gate (C3_SCHED_GATE=${C3_SCHED_GATE:-1}) =="
C3_SCHED_GATE="${C3_SCHED_GATE:-1}" C3_SCHED_SEEDS="${C3_SCHED_SEEDS:-}" \
    cargo run -p c3-bench --release --bin schedule_gate

# Fleet control-plane gate: crash-sweeps the simulated fleet over fixed
# seeds (override with C3_FLEET_SEEDS=a,b,c) — the daemon is killed at
# every protocol step on a lossy, partitioning network, and every run
# must converge all hosts to the store head with zero torn applies and
# bit-identical replays. Skip with C3_FLEET_GATE=0.
echo "== fleet_gate (C3_FLEET_GATE=${C3_FLEET_GATE:-1}) =="
C3_FLEET_GATE="${C3_FLEET_GATE:-1}" C3_FLEET_SEEDS="${C3_FLEET_SEEDS:-}" \
    cargo run -p c3-bench --release --bin fleet_gate

echo "== scripts/smoke.sh =="
./scripts/smoke.sh

echo "ci ok"
