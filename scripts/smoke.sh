#!/usr/bin/env bash
# Smoke pass: build, test, and regenerate one sweep point per figure in a
# few minutes. Uses the env knobs in crates/bench/src/lib.rs:
#   C3_BENCH_WINDOW_MS  virtual window per configuration (default 3)
#   C3_BENCH_THREADS    thread counts to sweep (default: the paper x-axis)
#   C3_BENCH_WORKERS    sweep worker threads (default: host parallelism)
# Smoke CSVs land in results/smoke/ so committed figure data is untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

export C3_BENCH_WINDOW_MS="${C3_BENCH_WINDOW_MS:-1}"
export C3_BENCH_THREADS="${C3_BENCH_THREADS:-8}"
export C3_RESULTS_DIR="${C3_RESULTS_DIR:-results/smoke}"

for bin in fig2a_page_fault2 fig2b_lock2 fig2c_hashtable lockzoo; do
    echo "== $bin (threads=$C3_BENCH_THREADS, window=${C3_BENCH_WINDOW_MS}ms) =="
    ./target/release/"$bin" >/dev/null
done
# The ablations binary asserts the armed-containment overhead budget
# (contained/no-op >= 0.95 on the Fig. 2(c) worst case) as it runs.
echo "== ablations incl. containment overhead (window=${C3_BENCH_WINDOW_MS}ms) =="
./target/release/ablations >/dev/null
echo "== table1_api_hazards incl. watchdog auto-revert =="
./target/release/table1_api_hazards >/dev/null

# Trace-plane smoke: arm via C3_TRACE, hammer a demo lock through c3ctl,
# and require the tail to surface at least one trace event.
echo "== c3ctl trace smoke (C3_TRACE=1) =="
trace_script="$(mktemp)"
trap 'rm -f "$trace_script"' EXIT
printf 'hammer mmap_sem 4 200\ntrace tail 8\ntrace status\nquit\n' > "$trace_script"
trace_out="$(C3_TRACE=1 ./target/release/c3ctl "$trace_script")"
if ! grep -q 'lock_acquire\|lock_acquired\|lock_release' <<< "$trace_out"; then
    echo "c3ctl trace smoke FAILED: no trace events in tail output:" >&2
    echo "$trace_out" >&2
    exit 1
fi
echo "c3ctl trace smoke ok"

# Rollout smoke: drive a staged rollout (canary → 50% → full) over the
# demo locks through c3ctl and require it to commit; then require a
# typed rollout error (unknown policy) to exit nonzero.
echo "== c3ctl rollout smoke =="
rollout_script="$(mktemp)"
rollout_fail_script="$(mktemp)"
trap 'rm -f "$trace_script" "$rollout_script" "$rollout_fail_script"' EXIT
printf '%s\n' \
    'loadsrc noop cmp_node return 1;' \
    'rollout start noop mmap_sem dcache inode_a inode_b' \
    'rollout promote' \
    'rollout promote' \
    'rollout status' \
    'quit' > "$rollout_script"
rollout_out="$(./target/release/c3ctl "$rollout_script")"
if ! grep -q 'rollout committed' <<< "$rollout_out"; then
    echo "c3ctl rollout smoke FAILED: staged rollout did not commit:" >&2
    echo "$rollout_out" >&2
    exit 1
fi
printf 'rollout start no_such_policy mmap_sem\nquit\n' > "$rollout_fail_script"
if ./target/release/c3ctl "$rollout_fail_script" >/dev/null 2>&1; then
    echo "c3ctl rollout smoke FAILED: unknown-policy rollout exited zero" >&2
    exit 1
fi
echo "c3ctl rollout smoke ok"

# Explore smoke: find a planted bug, save the shrunk repro artifact,
# replay it (the replay verifies the pinned trace hash); then require a
# typed explore error (unknown fixture) to exit nonzero.
echo "== c3ctl explore smoke =="
explore_script="$(mktemp)"
explore_fail_script="$(mktemp)"
explore_repro="$(mktemp)"
trap 'rm -f "$trace_script" "$rollout_script" "$rollout_fail_script" \
    "$explore_script" "$explore_fail_script" "$explore_repro"' EXIT
printf '%s\n' \
    "explore shrink broken_ticket random $explore_repro" \
    "explore replay $explore_repro" \
    'quit' > "$explore_script"
explore_out="$(./target/release/c3ctl "$explore_script")"
if ! grep -q 'reproduced' <<< "$explore_out"; then
    echo "c3ctl explore smoke FAILED: repro did not replay:" >&2
    echo "$explore_out" >&2
    exit 1
fi
printf 'explore run no_such_fixture random\nquit\n' > "$explore_fail_script"
if ./target/release/c3ctl "$explore_fail_script" >/dev/null 2>&1; then
    echo "c3ctl explore smoke FAILED: unknown-fixture explore exited zero" >&2
    exit 1
fi
echo "c3ctl explore smoke ok"

# Wire-format smoke: compile a policy to a sealed artifact, load it back
# through the wire path (checksum + digest + re-verify), attach it; then
# require a tampered artifact to be rejected with a nonzero exit.
echo "== c3ctl policy wire smoke =="
policy_src="$(mktemp --suffix=.c)"
policy_art="$(mktemp)"
policy_script="$(mktemp)"
policy_fail_script="$(mktemp)"
trap 'rm -f "$trace_script" "$rollout_script" "$rollout_fail_script" \
    "$explore_script" "$explore_fail_script" "$explore_repro" \
    "$policy_src" "$policy_art" "$policy_script" "$policy_fail_script"' EXIT
printf 'return 1;\n' > "$policy_src"
printf '%s\n' \
    "policy compile cmp_node $policy_src $policy_art" \
    "policy load wired cmp_node $policy_art" \
    'attach mmap_sem wired' \
    'detach' \
    'quit' > "$policy_script"
policy_out="$(./target/release/c3ctl "$policy_script")"
if ! grep -q 'verified and pinned policies/wired' <<< "$policy_out"; then
    echo "c3ctl policy wire smoke FAILED: sealed artifact did not load:" >&2
    echo "$policy_out" >&2
    exit 1
fi
# Corrupt one header byte (version LSB, always 0x01 when sealed): the
# load must fail the whole-artifact checksum and exit nonzero.
printf '\x09' | dd of="$policy_art" bs=1 seek=4 count=1 conv=notrunc status=none
printf '%s\n' \
    "policy load tampered cmp_node $policy_art" \
    'quit' > "$policy_fail_script"
if ./target/release/c3ctl "$policy_fail_script" >/dev/null 2>&1; then
    echo "c3ctl policy wire smoke FAILED: tampered artifact exited zero" >&2
    exit 1
fi
echo "c3ctl policy wire smoke ok"

# Contention-analysis smoke: arm the plane, hammer a demo lock, save the
# raw trace, analyze it from the file, and walk the derived views (blame
# table, blocking chains, flamegraph export); then require a truncated
# trace file to fail analysis with a nonzero exit.
echo "== c3ctl contention analysis smoke =="
analyze_trace="$(mktemp)"
analyze_flame="$(mktemp)"
analyze_script="$(mktemp)"
analyze_fail_script="$(mktemp)"
trap 'rm -f "$trace_script" "$rollout_script" "$rollout_fail_script" \
    "$explore_script" "$explore_fail_script" "$explore_repro" \
    "$policy_src" "$policy_art" "$policy_script" "$policy_fail_script" \
    "$analyze_trace" "$analyze_flame" "$analyze_script" "$analyze_fail_script"' EXIT
# 50µs spins inside the critical section force queueing (contended
# waits) on any core count, while 4×100 acquisitions keep the whole
# trace inside the ring capacity of the four pinned CPUs.
printf '%s\n' \
    'hammer mmap_sem 4 100 50' \
    "trace save $analyze_trace" \
    "analyze $analyze_trace" \
    'blame' \
    'chains' \
    "flame $analyze_flame" \
    'quit' > "$analyze_script"
analyze_out="$(C3_TRACE=1 ./target/release/c3ctl "$analyze_script")"
if ! grep -q 'contention analysis:' <<< "$analyze_out"; then
    echo "c3ctl analyze smoke FAILED: no analysis report:" >&2
    echo "$analyze_out" >&2
    exit 1
fi
if ! grep -q 'conservation: holds' <<< "$analyze_out"; then
    echo "c3ctl analyze smoke FAILED: blame conservation did not hold:" >&2
    echo "$analyze_out" >&2
    exit 1
fi
if ! [ -s "$analyze_flame" ]; then
    echo "c3ctl analyze smoke FAILED: flamegraph export is empty" >&2
    exit 1
fi
# Truncate the saved trace mid-record: the typed analyze error must
# surface and flip the scripted exit code.
head -c 100 "$analyze_trace" > "${analyze_trace}.bad"
printf 'analyze %s.bad\nquit\n' "$analyze_trace" > "$analyze_fail_script"
if ./target/release/c3ctl "$analyze_fail_script" >/dev/null 2>&1; then
    rm -f "${analyze_trace}.bad"
    echo "c3ctl analyze smoke FAILED: truncated trace exited zero" >&2
    exit 1
fi
rm -f "${analyze_trace}.bad"
echo "c3ctl contention analysis smoke ok"

# Fleet smoke: open a fleet session, publish a sealed version to a few
# tenants, reconcile the hosts to the head, and require every host to
# report current; then require a conditional publish against a stale
# head (the store has already moved past it) to fail typed and nonzero.
echo "== c3ctl fleet smoke =="
fleet_script="$(mktemp)"
fleet_fail_script="$(mktemp)"
trap 'rm -f "$trace_script" "$rollout_script" "$rollout_fail_script" \
    "$explore_script" "$explore_fail_script" "$explore_repro" \
    "$policy_src" "$policy_art" "$policy_script" "$policy_fail_script" \
    "$analyze_trace" "$analyze_flame" "$analyze_script" "$analyze_fail_script" \
    "$fleet_script" "$fleet_fail_script"' EXIT
printf '%s\n' \
    'fleet start 3' \
    'loadsrc fleetpol cmp_node return 1;' \
    'fleet publish fleetpol 1 2 3' \
    'fleet reconcile' \
    'fleet status' \
    'fleet hosts' \
    'quit' > "$fleet_script"
fleet_out="$(./target/release/c3ctl "$fleet_script")"
if ! grep -q '0 behind head' <<< "$fleet_out"; then
    echo "c3ctl fleet smoke FAILED: hosts did not converge to the head:" >&2
    echo "$fleet_out" >&2
    exit 1
fi
# Publish v1, then a conditional publish still expecting head 0: the
# CAS must refuse with the typed stale-head error and exit nonzero.
printf '%s\n' \
    'fleet start 2' \
    'loadsrc fleetpol cmp_node return 1;' \
    'fleet publish fleetpol 1' \
    'fleet publish fleetpol 2 expect 0' \
    'quit' > "$fleet_fail_script"
if ./target/release/c3ctl "$fleet_fail_script" >/dev/null 2>&1; then
    echo "c3ctl fleet smoke FAILED: stale-head publish exited zero" >&2
    exit 1
fi
echo "c3ctl fleet smoke ok"

echo "smoke ok: csvs in $C3_RESULTS_DIR"
